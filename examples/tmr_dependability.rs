//! The triple-modular-redundant system of the evaluation chapter:
//! dependability queries with resource-consumption bounds.
//!
//! Run with `cargo run --release --example tmr_dependability`.

use mrmc::witness::most_probable_witness;
use mrmc::{CheckOptions, ModelChecker, UntilEngine};
use mrmc_models::tmr::{tmr, TmrConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = TmrConfig::classic();
    let mrm = tmr(&config);
    println!(
        "TMR system: {} modules + voter, {} states",
        config.modules,
        mrm.num_states()
    );

    let checker = ModelChecker::new(
        mrm,
        CheckOptions::new().with_engine(UntilEngine::uniformization(1e-11)),
    );

    // The evaluation formula at a few mission times.
    println!("\nP[Sup U[0,t][0,3000] failed] from the fully-operational state:");
    for t in [50, 100, 200, 400] {
        let out = checker.check_str(&format!("P(> 0.1) [Sup U[0,{t}][0,3000] failed]"))?;
        let p = out.probabilities().expect("probabilistic formula");
        let e = out.error_bounds().expect("uniformization ran");
        let s = config.state_with_working(3);
        println!("  t = {t:>3}: P = {:.9}  (error bound {:.2e})", p[s], e[s]);
    }

    // Long-run availability.
    let out = checker.check_str("S(< 0.01) (failed)")?;
    let p = out.probabilities().expect("steady-state formula");
    println!(
        "\nlong-run unavailability = {:.6e}  (S(<0.01)(failed) holds: {})",
        p[config.state_with_working(3)],
        out.holds_in(config.state_with_working(3))
    );

    // Diagnostics: the most probable way the system fails.
    let m2 = tmr(&config);
    let phi = m2.labeling().states_with("Sup");
    let psi = m2.labeling().states_with("failed");
    if let Some(w) = most_probable_witness(&m2, &phi, &psi, config.state_with_working(3))? {
        println!(
            "\nmost probable failure trajectory: states {:?} (branching probability {:.4});",
            w.states, w.probability
        );
        println!(
            "expected time to failure along it: {:.1} h, resources consumed: {:.1}",
            w.time_at_goal, w.reward_at_goal
        );
    }

    // The 11-module variant: probability of returning to full operation.
    let big = TmrConfig::with_modules(11);
    let checker = ModelChecker::new(
        tmr(&big),
        CheckOptions::new().with_engine(UntilEngine::uniformization(1e-8)),
    );
    println!("\n11-module system, P[TT U[0,100][0,2000] allUp] per starting state:");
    let out = checker.check_str("P(> 0.1) [TT U[0,100][0,2000] allUp]")?;
    let p = out.probabilities().expect("probabilistic formula");
    for n in (0..=10).step_by(2) {
        let s = big.state_with_working(n);
        println!(
            "  {n:>2} modules up: P = {:.6}  (bound >0.1 holds: {})",
            p[s],
            out.holds_in(s)
        );
    }
    Ok(())
}
