//! Quickstart: build a small Markov reward model with impulse rewards,
//! check a handful of CSRL formulas, and read the results.
//!
//! Run with `cargo run --example quickstart`.

use mrmc::{CheckOptions, ModelChecker};
use mrmc_ctmc::CtmcBuilder;
use mrmc_mrm::{ImpulseRewards, Mrm, StateRewards};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny job-processing system:
    //   idle --(2.0)--> busy    (accepting a job costs 1 unit instantly)
    //   busy --(1.5)--> idle
    //   busy --(0.1)--> down    (crash)
    //   down --(0.8)--> idle    (repair costs 5 units instantly)
    let mut b = CtmcBuilder::new(3);
    b.transition(0, 1, 2.0)
        .transition(1, 0, 1.5)
        .transition(1, 2, 0.1)
        .transition(2, 0, 0.8);
    b.label(0, "idle").label(1, "busy").label(2, "down");
    let ctmc = b.build()?;

    // Running costs per hour: idle 1, busy 4, down 0 (powered off).
    let rho = StateRewards::new(vec![1.0, 4.0, 0.0])?;
    let mut iota = ImpulseRewards::new();
    iota.set(0, 1, 1.0)?;
    iota.set(2, 0, 5.0)?;
    let mrm = Mrm::new(ctmc, rho, iota)?;

    let checker = ModelChecker::new(mrm, CheckOptions::new());

    let formulas = [
        // Is the long-run probability of being down below 10%?
        "S(< 0.1) (down)",
        // Starting anywhere, do we crash within 10 hours while spending at
        // most 30 cost units, with probability below 10%?
        "P(< 0.1) [!down U[0,10][0,30] down]",
        // Is the next transition a crash with probability below 10%?
        "P(< 0.1) [X down]",
        // Unbounded: the system eventually goes down almost surely.
        "P(> 0.999) [TT U down]",
    ];
    for f in formulas {
        let outcome = checker.check_str(f)?;
        let states: Vec<usize> = outcome.satisfying_states().collect();
        println!("{f}");
        println!("  satisfied by states {states:?}");
        if let Some(probs) = outcome.probabilities() {
            for (s, p) in probs.iter().enumerate() {
                println!("  state {s}: P = {p:.6}");
            }
        }
    }
    Ok(())
}
