//! A small CSRL read–eval–print loop over the built-in evaluation models.
//!
//! Run with `cargo run --example csrl_repl -- [wavelan|tmr|phone]` and type
//! formulas, one per line (Ctrl-D to exit):
//!
//! ```text
//! > S(< 0.05) (failed)
//! > P(> 0.1) [Sup U[0,100][0,3000] failed]
//! ```

use std::io::{BufRead, Write};

use mrmc::{CheckOptions, ModelChecker};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_models::{phone, wavelan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "wavelan".into());
    let mrm = match which.as_str() {
        "wavelan" => wavelan(),
        "tmr" => tmr(&TmrConfig::classic()),
        "phone" => phone::phone_with_impulses(),
        other => {
            eprintln!("unknown model `{other}`; pick wavelan, tmr, or phone");
            std::process::exit(1);
        }
    };
    println!(
        "model `{which}`: {} states; atomic propositions: {}",
        mrm.num_states(),
        mrm.labeling().all_propositions().join(", ")
    );
    let checker = ModelChecker::new(mrm, CheckOptions::new());

    let stdin = std::io::stdin();
    print!("> ");
    std::io::stdout().flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        let text = line.trim();
        if !text.is_empty() {
            match checker.check_str(text) {
                Ok(out) => {
                    let states: Vec<usize> = out.satisfying_states().collect();
                    println!("satisfied by {states:?}");
                    if let Some(p) = out.probabilities() {
                        for (s, v) in p.iter().enumerate() {
                            println!("  state {s}: {v:.9}");
                        }
                    }
                }
                Err(e) => println!("error: {e}"),
            }
        }
        print!("> ");
        std::io::stdout().flush()?;
    }
    println!();
    Ok(())
}
