//! Cost/revenue analysis of an M/M/1/K queue with server breakdowns —
//! a performability workload beyond the thesis' own case studies,
//! exercising state rewards (holding + downtime costs) and impulse rewards
//! (per-job revenue, per-repair cost) together.
//!
//! Run with `cargo run --release --example queue_costs`.

use mrmc::{CheckOptions, ModelChecker, UntilEngine};
use mrmc_models::queue::{queue, QueueConfig};
use mrmc_numerics::expected::expected_accumulated_reward_from;
use mrmc_numerics::monte_carlo::{estimate_expected_reward, SimulationOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = QueueConfig::new(5);
    let mrm = queue(&config);
    println!(
        "breakdown queue: K = {}, λ = {}, μ = {}, {} states",
        config.capacity,
        config.arrival_rate,
        config.service_rate,
        mrm.num_states()
    );

    // Expected accumulated cost over a shift of 8 hours, from empty+up:
    // uniformization vs simulation.
    let start = config.up_state(0);
    let exact = expected_accumulated_reward_from(&mrm, start, 8.0, 1e-10)?;
    let sim = estimate_expected_reward(&mrm, 8.0, start, SimulationOptions::with_samples(20_000))?;
    println!("\nE[accumulated cost over 8h] = {exact:.4}");
    println!("  simulation check: {:.4} ± {:.4}", sim.mean, sim.std_error);

    // CSRL queries.
    let checker = ModelChecker::new(
        mrm,
        CheckOptions::new().with_engine(UntilEngine::uniformization(1e-9)),
    );
    let queries = [
        // Long-run: the queue is rarely full.
        "S(< 0.2) (full)",
        // The buffer fills within 10 hours while spending at most 40 cost
        // units, with probability below one half.
        "P(< 0.5) [TT U[0,10][0,40] full]",
        // From up-states, the next event is a breakdown with low probability.
        "P(< 0.05) [X down]",
    ];
    println!();
    for q in queries {
        let out = checker.check_str(q)?;
        println!("{q}");
        println!(
            "  holds in {} of {} states; P(start) = {:.6}",
            out.count(),
            out.sat().len(),
            out.probabilities().map_or(f64::NAN, |p| p[start])
        );
    }
    Ok(())
}
