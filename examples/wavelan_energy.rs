//! The WaveLAN modem case study (Chapters 2–4 of the thesis): energy-aware
//! model checking with impulse rewards on mode switches.
//!
//! Run with `cargo run --release --example wavelan_energy`.

use mrmc::{CheckOptions, ModelChecker, UntilEngine};
use mrmc_models::wavelan;
use mrmc_numerics::uniformization::{performability, UniformOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mrm = wavelan();
    println!("WaveLAN modem: {} states", mrm.num_states());
    println!("  power draw (mW): off=0 sleep=80 idle=1319 receive=1675 transmit=1425");
    println!("  switch costs (mJ): off→sleep 0.02, sleep→idle 0.32975,");
    println!("                     idle→receive 0.42545, idle→transmit 0.36195");
    println!();

    // Example 3.6: from idle, reach a busy mode within 2 hours while
    // consuming at most 2000 mJ (closed form: 0.15789…).
    let engine = UntilEngine::Uniformization(
        UniformOptions::new()
            .with_truncation(1e-10)
            .with_improved_pruning(),
    );
    let checker = ModelChecker::new(mrm.clone(), CheckOptions::new().with_engine(engine));
    let out = checker.check_str("P(> 0.1) [idle U[0,2][0,2000] busy]")?;
    let p = out.probabilities().expect("probabilistic formula");
    println!(
        "P(idle U[0,2][0,2000] busy) from idle = {:.6} (thesis: 0.15789)",
        p[2]
    );

    // Long-run mode occupancy.
    let out = checker.check_str("S(>= 0) (busy)")?;
    let p = out.probabilities().expect("steady-state formula");
    println!("long-run P(busy) = {:.6}", p[0]);

    // The energy distribution Pr{Y(0.2h) ≤ r} from the sleep state — the
    // performability measure of Definition 3.4.
    println!("\nenergy consumed within 12 minutes from sleep:");
    let opts = UniformOptions::new().with_truncation(1e-7);
    for r in [5.0, 20.0, 80.0, 320.0, 1280.0] {
        let res = performability(&mrm, 0.2, r, 1, opts)?;
        println!(
            "  Pr{{Y <= {r:>6.0} mW·h}} = {:.6}  (error bound {:.2e})",
            res.probability, res.error_bound
        );
    }
    Ok(())
}
