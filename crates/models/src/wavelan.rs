//! The WaveLAN modem MRM (Figures 2.2 and 3.1 of the thesis).
//!
//! States (0-indexed; the thesis numbers them 1–5):
//!
//! | state | label(s)          | power (mW) |
//! |-------|-------------------|------------|
//! | 0     | `off`             | 0          |
//! | 1     | `sleep`           | 80         |
//! | 2     | `idle`            | 1319       |
//! | 3     | `receive`, `busy` | 1675       |
//! | 4     | `transmit`, `busy`| 1425       |
//!
//! Rates are those of Example 4.2 (per hour); impulse rewards (mJ) model the
//! energy cost of mode switches (Example 3.1).

use mrmc_ctmc::CtmcBuilder;
use mrmc_mrm::{ImpulseRewards, Mrm, StateRewards};

/// Build the WaveLAN modem MRM with the thesis' rates and rewards.
pub fn wavelan() -> Mrm {
    let mut b = CtmcBuilder::new(5);
    b.transition(0, 1, 0.1);
    b.transition(1, 0, 0.05).transition(1, 2, 5.0);
    b.transition(2, 1, 12.0)
        .transition(2, 3, 1.5)
        .transition(2, 4, 0.75);
    b.transition(3, 2, 10.0);
    b.transition(4, 2, 15.0);
    b.label(0, "off");
    b.label(1, "sleep");
    b.label(2, "idle");
    b.label(3, "receive").label(3, "busy");
    b.label(4, "transmit").label(4, "busy");
    let ctmc = b.build().expect("the WaveLAN model is well-formed");

    let rho = StateRewards::new(vec![0.0, 80.0, 1319.0, 1675.0, 1425.0])
        .expect("rewards are non-negative");
    let mut iota = ImpulseRewards::new();
    iota.set(0, 1, 0.02).expect("valid impulse");
    iota.set(1, 2, 0.32975).expect("valid impulse");
    iota.set(2, 3, 0.42545).expect("valid impulse");
    iota.set(2, 4, 0.36195).expect("valid impulse");
    Mrm::new(ctmc, rho, iota).expect("the WaveLAN MRM is well-formed")
}

/// State index of the `off` state.
pub const OFF: usize = 0;
/// State index of the `sleep` state.
pub const SLEEP: usize = 1;
/// State index of the `idle` state.
pub const IDLE: usize = 2;
/// State index of the `receive` state.
pub const RECEIVE: usize = 3;
/// State index of the `transmit` state.
pub const TRANSMIT: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_the_thesis() {
        let m = wavelan();
        assert_eq!(m.num_states(), 5);
        assert_eq!(m.ctmc().exit_rate(IDLE), 14.25);
        assert_eq!(m.state_reward(RECEIVE), 1675.0);
        assert_eq!(m.impulse_reward(IDLE, RECEIVE), 0.42545);
        assert_eq!(m.impulse_reward(RECEIVE, IDLE), 0.0);
        assert!(m.labeling().has(TRANSMIT, "busy"));
        assert!(m.labeling().has(OFF, "off"));
    }

    #[test]
    fn busy_states_are_exactly_receive_and_transmit() {
        let m = wavelan();
        assert_eq!(
            m.labeling().states_with("busy"),
            vec![false, false, false, true, true]
        );
    }
}
