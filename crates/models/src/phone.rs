//! A wireless-phone performability model standing in for the `[Hav02]` case
//! study used in Table 5.1 (results *without* impulse rewards).
//!
//! The thesis reuses the model of *Model Checking Performability Properties*
//! (Haverkort et al., DSN 2002) without reproducing its generator matrix;
//! this module provides a structurally equivalent substitute (see
//! `DESIGN.md`, substitution 1): after making the `(¬(Call_Idle ∨ Doze) ∨
//! Call_Initiated)`-states absorbing the chain has exactly three transient
//! and two absorbing states, as the thesis reports, and the checked
//! probability for `P(>0.5)[(Call_Idle || Doze) U[0,24][0,600]
//! Call_Initiated]` lands near the reference value ≈ 0.495.
//!
//! States (0-indexed):
//!
//! | state | label            | power reward |
//! |-------|------------------|--------------|
//! | 0     | `Doze`           | 10           |
//! | 1     | `Call_Idle`      | 50           |
//! | 2     | `Deep_Doze` (labeled `Doze`) | 2 |
//! | 3     | `Call_Initiated` | 40           |
//! | 4     | `Off`            | 0            |
//!
//! All state rewards are integers, so the model exercises the
//! discretization engine without scaling. The `with_impulses` variant adds
//! wake-up and call-setup impulse costs for experiments that need them.

use mrmc_ctmc::CtmcBuilder;
use mrmc_mrm::{ImpulseRewards, Mrm, StateRewards};

/// State index of the `Doze` state (the initial state of Table 5.1).
pub const DOZE: usize = 0;
/// State index of the `Call_Idle` state.
pub const CALL_IDLE: usize = 1;
/// State index of the deep-doze state (also labeled `Doze`).
pub const DEEP_DOZE: usize = 2;
/// State index of the `Call_Initiated` state.
pub const CALL_INITIATED: usize = 3;
/// State index of the `Off` state.
pub const OFF: usize = 4;

fn base(impulses: ImpulseRewards) -> Mrm {
    let mut b = CtmcBuilder::new(5);
    b.transition(DOZE, CALL_IDLE, 0.2)
        .transition(DOZE, DEEP_DOZE, 0.05)
        .transition(DOZE, OFF, 0.001);
    b.transition(CALL_IDLE, DOZE, 0.3)
        .transition(CALL_IDLE, CALL_INITIATED, 0.04)
        .transition(CALL_IDLE, OFF, 0.002);
    b.transition(DEEP_DOZE, DOZE, 0.1);
    b.transition(CALL_INITIATED, CALL_IDLE, 2.0);
    b.label(DOZE, "Doze");
    b.label(CALL_IDLE, "Call_Idle");
    b.label(DEEP_DOZE, "Doze").label(DEEP_DOZE, "Deep_Doze");
    b.label(CALL_INITIATED, "Call_Initiated");
    b.label(OFF, "Off");
    let ctmc = b.build().expect("the phone model is well-formed");

    let rho =
        StateRewards::new(vec![10.0, 50.0, 2.0, 40.0, 0.0]).expect("rewards are non-negative");
    Mrm::new(ctmc, rho, impulses).expect("the phone MRM is well-formed")
}

/// The phone model with state rewards only (the Table 5.1 setting: the
/// generic algorithm applied to a model whose impulse rewards are all
/// zero).
pub fn phone() -> Mrm {
    base(ImpulseRewards::new())
}

/// The phone model with impulse rewards on mode changes (wake-up and call
/// setup), for experiments that exercise both reward kinds.
pub fn phone_with_impulses() -> Mrm {
    let mut iota = ImpulseRewards::new();
    iota.set(DOZE, CALL_IDLE, 1.0).expect("valid impulse");
    iota.set(CALL_IDLE, CALL_INITIATED, 5.0)
        .expect("valid impulse");
    base(iota)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_mrm::transform::make_absorbing;

    #[test]
    fn absorbed_model_has_three_transient_two_absorbing_states() {
        // The shape the thesis reports for the Table 5.1 computation.
        let m = phone();
        let phi_states: Vec<bool> = (0..5)
            .map(|s| m.labeling().has(s, "Call_Idle") || m.labeling().has(s, "Doze"))
            .collect();
        let psi_states = m.labeling().states_with("Call_Initiated");
        let absorb: Vec<bool> = phi_states
            .iter()
            .zip(&psi_states)
            .map(|(&p, &q)| !p || q)
            .collect();
        let a = make_absorbing(&m, &absorb).unwrap();
        let absorbing: Vec<usize> = (0..5).filter(|&s| a.ctmc().is_absorbing(s)).collect();
        assert_eq!(absorbing, vec![CALL_INITIATED, OFF]);
    }

    #[test]
    fn rewards_are_integers_for_discretization() {
        let m = phone();
        assert!(m.state_rewards().all_integer());
        assert!(m.impulse_rewards().is_empty());
    }

    #[test]
    fn impulse_variant_adds_costs() {
        let m = phone_with_impulses();
        assert_eq!(m.impulse_reward(DOZE, CALL_IDLE), 1.0);
        assert_eq!(m.impulse_reward(CALL_IDLE, CALL_INITIATED), 5.0);
        assert_eq!(m.impulse_reward(CALL_IDLE, DOZE), 0.0);
    }

    #[test]
    fn doze_labels_cover_two_states() {
        let m = phone();
        assert_eq!(
            m.labeling().states_with("Doze"),
            vec![true, false, true, false, false]
        );
    }
}
