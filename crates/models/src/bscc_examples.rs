//! The reducible CTMC of Figure 3.2 (Example 3.5), used to exercise
//! BSCC-based steady-state analysis.

use mrmc_ctmc::{Ctmc, CtmcBuilder};
use mrmc_mrm::Mrm;

/// Build the CTMC of Figure 3.2 (states 0..=4 for the thesis' s1..=s5).
///
/// Two BSCCs: `B1 = {s3, s4}` and `B2 = {s5}`; the `b`-state is `s4`.
/// Checking `S(≥0.3)(b)` from `s1` yields `π(s1, Sat(b)) = 8/21`.
pub fn figure_3_2() -> Ctmc {
    let mut b = CtmcBuilder::new(5);
    b.transition(0, 1, 2.0).transition(0, 4, 1.0);
    b.transition(1, 0, 1.0).transition(1, 2, 2.0);
    b.transition(2, 3, 2.0);
    b.transition(3, 2, 1.0);
    b.label(3, "b");
    b.label(4, "sink");
    b.build().expect("the Figure 3.2 CTMC is well-formed")
}

/// The same chain wrapped as a reward-free MRM (for checker-level tests).
pub fn figure_3_2_mrm() -> Mrm {
    Mrm::without_rewards(figure_3_2())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_ctmc::bscc::SccDecomposition;
    use mrmc_ctmc::steady::SteadyStateAnalysis;
    use mrmc_sparse::solver::SolverOptions;

    #[test]
    fn has_the_two_bsccs_of_the_figure() {
        let c = figure_3_2();
        let d = SccDecomposition::new(c.rates());
        let bsccs: Vec<Vec<usize>> = d.bsccs().map(|(_, s)| s.to_vec()).collect();
        assert_eq!(bsccs.len(), 2);
        assert!(bsccs.contains(&vec![2, 3]));
        assert!(bsccs.contains(&vec![4]));
    }

    #[test]
    fn example_3_5_value() {
        let c = figure_3_2();
        let a = SteadyStateAnalysis::new(&c, SolverOptions::new()).unwrap();
        let p = a.probability_from(0, &c.labeling().states_with("b"));
        assert!((p - 8.0 / 21.0).abs() < 1e-9);
        // 8/21 ≥ 0.3, so s1 ⊨ S(≥0.3)(b).
        assert!(p >= 0.3);
    }
}
