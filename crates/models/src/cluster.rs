//! A dependable cluster of workstations — the classic CSL benchmarking
//! model (two sub-clusters of `N` workstations joined by a switched
//! backbone), here as a Markov reward model with repair costs.
//!
//! This is beyond the thesis' own case studies; it provides a
//! parameterizable state space of `(N+1)² × 8` states for scaling tests
//! and benches.
//!
//! # State space
//!
//! `(left, right, l_switch, r_switch, backbone)` with `left/right ∈ 0..=N`
//! working workstations per side and three binary component conditions,
//! encoded into a single index.
//!
//! # Parameters and rewards
//!
//! Workstations fail per-unit (`ws_failure_rate · working`), switches and
//! the backbone fail at their own rates; one shared repair unit fixes one
//! broken thing at a time with priority backbone → switches → workstations.
//! State rewards model operational cost (higher in degraded states);
//! repairs carry impulse costs.
//!
//! # Labels
//!
//! * `premium` — at least `3N/4` workstations connected and operational;
//! * `minimum` — at least `N/4` connected;
//! * `down` — below minimum;
//! * `backbone_up`, and `{k}left`/`{k}right` per working count.

use mrmc_ctmc::CtmcBuilder;
use mrmc_mrm::{ImpulseRewards, Mrm, StateRewards};

/// Parameters of the cluster model.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Workstations per sub-cluster (`N ≥ 1`).
    pub workstations: usize,
    /// Per-workstation failure rate.
    pub ws_failure_rate: f64,
    /// Switch failure rate.
    pub switch_failure_rate: f64,
    /// Backbone failure rate.
    pub backbone_failure_rate: f64,
    /// Repair rate of the single repair unit.
    pub repair_rate: f64,
    /// Base operational cost rate.
    pub base_cost: f64,
    /// Extra cost rate per failed workstation.
    pub per_failed_ws_cost: f64,
    /// Impulse cost per repair action.
    pub repair_impulse: f64,
}

impl ClusterConfig {
    /// The traditional parameterization (failure rates per hour) scaled to
    /// a given cluster size.
    pub fn new(workstations: usize) -> Self {
        ClusterConfig {
            workstations,
            ws_failure_rate: 0.002,
            switch_failure_rate: 0.00025,
            backbone_failure_rate: 0.0002,
            repair_rate: 0.5,
            base_cost: 2.0,
            per_failed_ws_cost: 1.0,
            repair_impulse: 4.0,
        }
    }

    /// Number of states: `(N+1)² · 8`.
    pub fn num_states(&self) -> usize {
        (self.workstations + 1) * (self.workstations + 1) * 8
    }

    /// Encode a configuration into a state index.
    ///
    /// # Panics
    ///
    /// Panics if `left` or `right` exceeds the workstation count.
    pub fn state(
        &self,
        left: usize,
        right: usize,
        l_switch_up: bool,
        r_switch_up: bool,
        backbone_up: bool,
    ) -> usize {
        assert!(left <= self.workstations && right <= self.workstations);
        let n1 = self.workstations + 1;
        let flags = usize::from(l_switch_up)
            | (usize::from(r_switch_up) << 1)
            | (usize::from(backbone_up) << 2);
        (left * n1 + right) * 8 + flags
    }

    /// The fully-operational start state.
    pub fn all_up(&self) -> usize {
        self.state(self.workstations, self.workstations, true, true, true)
    }

    fn decode(&self, state: usize) -> (usize, usize, bool, bool, bool) {
        let n1 = self.workstations + 1;
        let flags = state % 8;
        let lr = state / 8;
        (
            lr / n1,
            lr % n1,
            flags & 1 != 0,
            flags & 2 != 0,
            flags & 4 != 0,
        )
    }

    /// Number of workstations currently *connected* (a side counts only
    /// when its switch is up; the two sides see each other through the
    /// backbone, but local service needs only the local switch).
    fn connected(&self, left: usize, right: usize, ls: bool, rs: bool, bb: bool) -> usize {
        let l = if ls { left } else { 0 };
        let r = if rs { right } else { 0 };
        if bb {
            l + r
        } else {
            // Without the backbone only the larger working side serves.
            l.max(r)
        }
    }
}

/// Build the cluster MRM.
///
/// # Panics
///
/// Panics if `workstations` is zero.
pub fn cluster(config: &ClusterConfig) -> Mrm {
    assert!(config.workstations >= 1, "need at least one workstation");
    let n = config.num_states();
    let n_ws = config.workstations;
    let mut b = CtmcBuilder::new(n);
    let mut iota = ImpulseRewards::new();
    let mut rewards = vec![0.0; n];

    #[allow(clippy::needless_range_loop)] // state is decoded, not just an index
    for state in 0..n {
        let (left, right, ls, rs, bb) = config.decode(state);

        // Failures.
        if left > 0 {
            b.transition(
                state,
                config.state(left - 1, right, ls, rs, bb),
                left as f64 * config.ws_failure_rate,
            );
        }
        if right > 0 {
            b.transition(
                state,
                config.state(left, right - 1, ls, rs, bb),
                right as f64 * config.ws_failure_rate,
            );
        }
        if ls {
            b.transition(
                state,
                config.state(left, right, false, rs, bb),
                config.switch_failure_rate,
            );
        }
        if rs {
            b.transition(
                state,
                config.state(left, right, ls, false, bb),
                config.switch_failure_rate,
            );
        }
        if bb {
            b.transition(
                state,
                config.state(left, right, ls, rs, false),
                config.backbone_failure_rate,
            );
        }

        // One repair unit, priority backbone → switches → workstations.
        let repair_target = if !bb {
            Some(config.state(left, right, ls, rs, true))
        } else if !ls {
            Some(config.state(left, right, true, rs, bb))
        } else if !rs {
            Some(config.state(left, right, ls, true, bb))
        } else if left < n_ws {
            Some(config.state(left + 1, right, ls, rs, bb))
        } else if right < n_ws {
            Some(config.state(left, right + 1, ls, rs, bb))
        } else {
            None
        };
        if let Some(target) = repair_target {
            b.transition(state, target, config.repair_rate);
            iota.set(state, target, config.repair_impulse)
                .expect("valid impulse");
        }

        // Labels and rewards.
        let connected = config.connected(left, right, ls, rs, bb);
        let total = 2 * n_ws;
        if 4 * connected >= 3 * total {
            b.label(state, "premium");
        }
        if 4 * connected >= total {
            b.label(state, "minimum");
        } else {
            b.label(state, "down");
        }
        if bb {
            b.label(state, "backbone_up");
        }
        b.label(state, format!("{left}left"));
        b.label(state, format!("{right}right"));

        let failed = (n_ws - left) + (n_ws - right);
        rewards[state] = config.base_cost + config.per_failed_ws_cost * failed as f64;
    }

    let ctmc = b.build().expect("the cluster model is well-formed");
    let rho = StateRewards::new(rewards).expect("costs are non-negative");
    Mrm::new(ctmc, rho, iota).expect("the cluster MRM is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_ctmc::steady::SteadyStateAnalysis;
    use mrmc_sparse::solver::SolverOptions;

    #[test]
    fn encode_decode_roundtrip() {
        let c = ClusterConfig::new(3);
        for left in 0..=3 {
            for right in 0..=3 {
                for flags in 0..8usize {
                    let (ls, rs, bb) = (flags & 1 != 0, flags & 2 != 0, flags & 4 != 0);
                    let s = c.state(left, right, ls, rs, bb);
                    assert!(s < c.num_states());
                    assert_eq!(c.decode(s), (left, right, ls, rs, bb));
                }
            }
        }
    }

    #[test]
    fn structure_of_the_small_cluster() {
        let c = ClusterConfig::new(2);
        let m = cluster(&c);
        assert_eq!(m.num_states(), 72);
        let all_up = c.all_up();
        assert!(m.labeling().has(all_up, "premium"));
        assert!(m.labeling().has(all_up, "minimum"));
        // From all-up: 2 ws failures per side, 2 switch failures, backbone.
        assert_eq!(m.ctmc().rates().row(all_up).count(), 5);
        // All-down state repairs the backbone first.
        let all_down = c.state(0, 0, false, false, false);
        let repaired = c.state(0, 0, false, false, true);
        assert!(m.ctmc().rates().get(all_down, repaired) > 0.0);
        assert_eq!(m.impulse_reward(all_down, repaired), 4.0);
    }

    #[test]
    fn premium_requires_three_quarters() {
        let c = ClusterConfig::new(2);
        let m = cluster(&c);
        // 3 of 4 connected: premium.
        let s = c.state(2, 1, true, true, true);
        assert!(m.labeling().has(s, "premium"));
        // 2 of 4: minimum but not premium.
        let s = c.state(1, 1, true, true, true);
        assert!(!m.labeling().has(s, "premium"));
        assert!(m.labeling().has(s, "minimum"));
        // Dead switch disconnects a whole side.
        let s = c.state(2, 2, false, true, true);
        assert!(!m.labeling().has(s, "premium"));
        // Dead backbone: only the larger side serves.
        let s = c.state(2, 2, true, true, false);
        assert!(!m.labeling().has(s, "premium"));
        assert!(m.labeling().has(s, "minimum"));
    }

    #[test]
    fn long_run_availability_is_high() {
        let c = ClusterConfig::new(2);
        let m = cluster(&c);
        let analysis = SteadyStateAnalysis::new(m.ctmc(), SolverOptions::new()).unwrap();
        let p = analysis.probability_from(c.all_up(), &m.labeling().states_with("minimum"));
        assert!(p > 0.99, "long-run minimum-QoS availability = {p}");
    }

    #[test]
    fn rewards_track_failures() {
        let c = ClusterConfig::new(2);
        let m = cluster(&c);
        assert_eq!(m.state_reward(c.all_up()), 2.0);
        assert_eq!(m.state_reward(c.state(1, 0, true, true, true)), 5.0);
    }

    #[test]
    fn scales_to_bigger_clusters() {
        let c = ClusterConfig::new(8);
        let m = cluster(&c);
        assert_eq!(m.num_states(), 81 * 8);
        // Spot-check stochastic sanity: all exit rates finite and positive
        // except none (every state has a repair or failure available).
        for s in 0..m.num_states() {
            assert!(m.ctmc().exit_rate(s) > 0.0, "state {s} is absorbing");
        }
    }
}
