//! The triple-modular-redundant (TMR) system of the evaluation chapter
//! (Figure 5.2), generalized to `M` identical modules plus a voter.
//!
//! # State space
//!
//! * states `0..=M` — `m` modules working, voter up (state index = `m`);
//! * state `M + 1` — voter down (`vdown`).
//!
//! # Transitions (rates of Tables 5.2/5.6)
//!
//! * module failure `m → m − 1`: `module_failure_rate`, multiplied by `m`
//!   when `variable_failure` is set (Table 5.6);
//! * module repair `m → m + 1`: `module_repair_rate` (one repair facility,
//!   repairs start immediately);
//! * voter failure `m → vdown`: `voter_failure_rate`;
//! * voter repair `vdown → M`: `voter_repair_rate` — after a voter repair
//!   the system starts "as new" with all modules working.
//!
//! # Labels
//!
//! `Sup` (≥ 2 modules and voter up — the voter needs two agreeing modules),
//! `failed` (its complement), `allUp` (`m = M`), `vdown`, and `{m}up` for
//! every module count.
//!
//! # Rewards
//!
//! The thesis assigns resource-consumption rewards without giving explicit
//! units; this crate fixes a documented structure (see `DESIGN.md`,
//! substitution 2): state reward `base + per_failed · (M − m)` (repairs
//! consume resources), an elevated `vdown` reward, and impulse rewards on
//! repair transitions ("to start such repairs substantial effort is
//! required").

use mrmc_ctmc::CtmcBuilder;
use mrmc_mrm::{ImpulseRewards, Mrm, StateRewards};

/// Parameters of the TMR model family.
#[derive(Debug, Clone, PartialEq)]
pub struct TmrConfig {
    /// Number of identical modules `M` (≥ 1).
    pub modules: usize,
    /// Module failure rate (per hour). Table 5.2: `0.0004`.
    pub module_failure_rate: f64,
    /// Multiply the failure rate by the number of working modules
    /// (Table 5.6's variable law).
    pub variable_failure: bool,
    /// Module repair rate. Table 5.2: `0.05`.
    pub module_repair_rate: f64,
    /// Voter failure rate. Table 5.2: `0.0001`.
    pub voter_failure_rate: f64,
    /// Voter repair rate. Table 5.2: `0.06`.
    pub voter_repair_rate: f64,
    /// Resource-consumption rate with all modules working.
    pub base_state_reward: f64,
    /// Additional consumption per failed module (repair activity).
    pub per_failed_module_reward: f64,
    /// Consumption rate while the voter is down.
    pub vdown_state_reward: f64,
    /// Impulse cost of starting a module repair (on `m → m + 1`).
    pub module_repair_impulse: f64,
    /// Impulse cost of the voter repair (on `vdown → M`).
    pub voter_repair_impulse: f64,
}

impl TmrConfig {
    /// The classic 3-module TMR with the constant rates of Table 5.2 and
    /// this crate's documented reward calibration.
    pub fn classic() -> Self {
        TmrConfig {
            modules: 3,
            module_failure_rate: 0.0004,
            variable_failure: false,
            module_repair_rate: 0.05,
            voter_failure_rate: 0.0001,
            voter_repair_rate: 0.06,
            base_state_reward: 8.0,
            per_failed_module_reward: 1.0,
            vdown_state_reward: 25.0,
            module_repair_impulse: 10.0,
            voter_repair_impulse: 20.0,
        }
    }

    /// The classic configuration with a different module count (the
    /// 11-module system of Tables 5.5/5.7).
    pub fn with_modules(modules: usize) -> Self {
        TmrConfig {
            modules,
            ..TmrConfig::classic()
        }
    }

    /// Switch to the variable (per-working-module) failure law of
    /// Table 5.6.
    pub fn variable(mut self) -> Self {
        self.variable_failure = true;
        self
    }

    /// State index for `m` working modules (voter up).
    ///
    /// # Panics
    ///
    /// Panics if `m > modules`.
    pub fn state_with_working(&self, m: usize) -> usize {
        assert!(m <= self.modules, "at most {} modules", self.modules);
        m
    }

    /// State index of the voter-down state.
    pub fn vdown_state(&self) -> usize {
        self.modules + 1
    }

    /// Total number of states (`M + 2`).
    pub fn num_states(&self) -> usize {
        self.modules + 2
    }
}

impl Default for TmrConfig {
    fn default() -> Self {
        TmrConfig::classic()
    }
}

/// Build the TMR Markov reward model for `config`.
///
/// # Panics
///
/// Panics if `config.modules` is zero or any rate/reward is negative (the
/// configuration is developer-provided; invalid values are programming
/// errors).
pub fn tmr(config: &TmrConfig) -> Mrm {
    assert!(config.modules >= 1, "need at least one module");
    let m_max = config.modules;
    let n = config.num_states();
    let vdown = config.vdown_state();

    let mut b = CtmcBuilder::new(n);
    for m in 0..=m_max {
        if m >= 1 {
            let rate = if config.variable_failure {
                m as f64 * config.module_failure_rate
            } else {
                config.module_failure_rate
            };
            b.transition(m, m - 1, rate);
        }
        if m < m_max {
            b.transition(m, m + 1, config.module_repair_rate);
        }
        b.transition(m, vdown, config.voter_failure_rate);
    }
    b.transition(vdown, m_max, config.voter_repair_rate);

    for m in 0..=m_max {
        b.label(m, format!("{m}up"));
        if m >= 2 {
            b.label(m, "Sup");
        } else {
            b.label(m, "failed");
        }
        if m == m_max {
            b.label(m, "allUp");
        }
    }
    b.label(vdown, "vdown").label(vdown, "failed");
    let ctmc = b.build().expect("the TMR model is well-formed");

    let mut rewards = Vec::with_capacity(n);
    for m in 0..=m_max {
        rewards
            .push(config.base_state_reward + config.per_failed_module_reward * (m_max - m) as f64);
    }
    rewards.push(config.vdown_state_reward);
    let rho = StateRewards::new(rewards).expect("rewards are non-negative");

    let mut iota = ImpulseRewards::new();
    for m in 0..m_max {
        iota.set(m, m + 1, config.module_repair_impulse)
            .expect("valid impulse");
    }
    iota.set(vdown, m_max, config.voter_repair_impulse)
        .expect("valid impulse");
    Mrm::new(ctmc, rho, iota).expect("the TMR MRM is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_structure() {
        let c = TmrConfig::classic();
        let m = tmr(&c);
        assert_eq!(m.num_states(), 5);
        // allUp state: failure 0.0004, voter failure 0.0001, no repair.
        assert_eq!(m.ctmc().rates().get(3, 2), 0.0004);
        assert_eq!(m.ctmc().rates().get(3, 4), 0.0001);
        assert_eq!(m.ctmc().rates().get(3, 3), 0.0);
        // Repairs climb the chain.
        assert_eq!(m.ctmc().rates().get(0, 1), 0.05);
        assert_eq!(m.ctmc().rates().get(2, 3), 0.05);
        // Voter repair returns to "as new".
        assert_eq!(m.ctmc().rates().get(4, 3), 0.06);
    }

    #[test]
    fn labels_follow_the_operation_rule() {
        let c = TmrConfig::classic();
        let m = tmr(&c);
        assert!(m.labeling().has(3, "Sup"));
        assert!(m.labeling().has(3, "allUp"));
        assert!(m.labeling().has(3, "3up"));
        assert!(m.labeling().has(2, "Sup"));
        assert!(!m.labeling().has(2, "allUp"));
        assert!(m.labeling().has(1, "failed"));
        assert!(m.labeling().has(0, "failed"));
        assert!(m.labeling().has(4, "vdown"));
        assert!(m.labeling().has(4, "failed"));
    }

    #[test]
    fn variable_rates_scale_with_working_modules() {
        let c = TmrConfig::with_modules(11).variable();
        let m = tmr(&c);
        assert_eq!(m.num_states(), 13);
        assert!((m.ctmc().rates().get(11, 10) - 11.0 * 0.0004).abs() < 1e-15);
        assert!((m.ctmc().rates().get(1, 0) - 0.0004).abs() < 1e-15);
    }

    #[test]
    fn rewards_grow_with_failures() {
        let c = TmrConfig::classic();
        let m = tmr(&c);
        assert_eq!(m.state_reward(3), 8.0);
        assert_eq!(m.state_reward(2), 9.0);
        assert_eq!(m.state_reward(0), 11.0);
        assert_eq!(m.state_reward(4), 25.0);
        assert_eq!(m.impulse_reward(0, 1), 10.0);
        assert_eq!(m.impulse_reward(4, 3), 20.0);
        assert_eq!(m.impulse_reward(3, 2), 0.0);
    }

    #[test]
    fn state_helpers() {
        let c = TmrConfig::with_modules(11);
        assert_eq!(c.state_with_working(0), 0);
        assert_eq!(c.state_with_working(11), 11);
        assert_eq!(c.vdown_state(), 12);
        assert_eq!(c.num_states(), 13);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_working_modules_panics() {
        TmrConfig::classic().state_with_working(4);
    }

    #[test]
    fn single_module_system() {
        let c = TmrConfig::with_modules(1);
        let m = tmr(&c);
        // With one module the system can never be operational (needs 2).
        assert_eq!(m.labeling().states_with("Sup"), vec![false, false, false]);
        assert_eq!(m.num_states(), 3);
    }
}
