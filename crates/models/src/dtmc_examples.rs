//! The three-state DTMC of Figure 2.1 (Examples 2.1–2.3).

use mrmc_ctmc::{Dtmc, Labeling};
use mrmc_sparse::CooBuilder;

/// Build the DTMC of Figure 2.1.
///
/// Its transient distribution after three steps from state 0 is
/// `(0.325, 0.4125, 0.2625)` (Example 2.2) and its steady-state vector is
/// `(14/45, 16/45, 1/3)` (Example 2.3).
pub fn figure_2_1() -> Dtmc {
    let mut b = CooBuilder::new(3, 3);
    b.push(0, 0, 0.5).push(0, 1, 0.5);
    b.push(1, 0, 0.25).push(1, 2, 0.75);
    b.push(2, 0, 0.2).push(2, 1, 0.6).push(2, 2, 0.2);
    Dtmc::new(b.build().expect("well-formed"), Labeling::new(3))
        .expect("the Figure 2.1 DTMC is stochastic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_sparse::solver::SolverOptions;

    #[test]
    fn example_2_2_transient() {
        let d = figure_2_1();
        let p = d.transient(&[1.0, 0.0, 0.0], 3);
        assert!((p[0] - 0.325).abs() < 1e-12);
        assert!((p[1] - 0.4125).abs() < 1e-12);
        assert!((p[2] - 0.2625).abs() < 1e-12);
        let p15 = d.transient(&[1.0, 0.0, 0.0], 15);
        assert!((p15[0] - 0.3111).abs() < 5e-5);
        assert!((p15[1] - 0.35567).abs() < 5e-5);
        assert!((p15[2] - 0.33323).abs() < 5e-5);
    }

    #[test]
    fn example_2_3_steady_state() {
        let d = figure_2_1();
        let v = d
            .steady_state(&[1.0, 0.0, 0.0], SolverOptions::new())
            .unwrap();
        assert!((v[0] - 14.0 / 45.0).abs() < 1e-9);
        assert!((v[1] - 16.0 / 45.0).abs() < 1e-9);
        assert!((v[2] - 1.0 / 3.0).abs() < 1e-9);
    }
}
