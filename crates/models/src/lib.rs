//! Example and benchmark models from *Model Checking Markov Reward Models
//! with Impulse Rewards*.
//!
//! * [`wavelan`](wavelan()) — the WaveLAN modem MRM (Figures 2.2/3.1, Examples 2.4,
//!   3.1, 4.1, 4.2);
//! * [`tmr`](tmr()) — the triple-modular-redundant system of the evaluation
//!   chapter (Figure 5.2, Tables 5.2–5.8), parameterizable in the number of
//!   modules and the failure-rate law;
//! * [`phone`] — a wireless-phone performability model standing in for the
//!   `[Hav02]` case study of Table 5.1 (see `DESIGN.md`, substitution 1);
//! * [`dtmc_examples`] — the three-state DTMC of Figure 2.1;
//! * [`bscc_examples`] — the reducible chain of Figure 3.2;
//! * [`random`] — seeded random MRM generation for property tests and
//!   stress benches;
//! * [`queue`] — an M/M/1/K queue with server breakdowns (beyond the
//!   paper: a classic performability workload for stress tests and scaling
//!   benches);
//! * [`cluster`] — the fault-tolerant cluster-of-workstations benchmark
//!   (beyond the paper), with a parameterizable `(N+1)²·8`-state space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bscc_examples;
pub mod cluster;
pub mod dtmc_examples;
pub mod phone;
pub mod queue;
pub mod random;
pub mod tmr;
pub mod wavelan;

pub use tmr::{tmr, TmrConfig};
pub use wavelan::wavelan;
