//! An M/M/1/K queue with server breakdowns as a Markov reward model — the
//! classic performability workload (beyond the thesis' own case studies;
//! used for stress tests and scaling benches).
//!
//! # State space
//!
//! `(j, up)` for `j ∈ 0..=K` jobs in the system and a binary server
//! condition: state index `j` when the server is up, `K + 1 + j` when it is
//! down (`2·(K+1)` states total).
//!
//! # Transitions
//!
//! * arrivals `j → j+1` at `arrival_rate` (in both server conditions;
//!   arrivals to a full queue are lost);
//! * services `j → j−1` at `service_rate`, **impulse** `service_reward`
//!   per completed job (revenue);
//! * breakdowns `up → down` at `failure_rate`;
//! * repairs `down → up` at `repair_rate`, **impulse** `repair_cost`.
//!
//! # Rewards
//!
//! State reward `holding_cost · j`, plus `downtime_cost` while the server
//! is down. Labels: `empty`, `full`, `up`, `down`, and `jobs{j}`.

use mrmc_ctmc::CtmcBuilder;
use mrmc_mrm::{ImpulseRewards, Mrm, StateRewards};

/// Parameters of the breakdown queue.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueConfig {
    /// Buffer capacity `K` (≥ 1).
    pub capacity: usize,
    /// Poisson arrival rate `λ`.
    pub arrival_rate: f64,
    /// Service rate `μ` (only while the server is up).
    pub service_rate: f64,
    /// Server breakdown rate.
    pub failure_rate: f64,
    /// Server repair rate.
    pub repair_rate: f64,
    /// Holding cost per job per time unit.
    pub holding_cost: f64,
    /// Extra cost rate while the server is down.
    pub downtime_cost: f64,
    /// Impulse earned per service completion.
    pub service_reward: f64,
    /// Impulse cost per repair.
    pub repair_cost: f64,
}

impl QueueConfig {
    /// A moderately loaded default: `K = 5`, `λ = 0.8`, `μ = 1.0`,
    /// breakdowns at `0.02`, repairs at `0.5`.
    pub fn new(capacity: usize) -> Self {
        QueueConfig {
            capacity,
            arrival_rate: 0.8,
            service_rate: 1.0,
            failure_rate: 0.02,
            repair_rate: 0.5,
            holding_cost: 1.0,
            downtime_cost: 5.0,
            service_reward: 2.0,
            repair_cost: 10.0,
        }
    }

    /// Disable breakdowns (a plain M/M/1/K), for closed-form checks.
    pub fn reliable(mut self) -> Self {
        self.failure_rate = 0.0;
        self
    }

    /// State index for `jobs` in the system with the server up.
    ///
    /// # Panics
    ///
    /// Panics if `jobs > capacity`.
    pub fn up_state(&self, jobs: usize) -> usize {
        assert!(jobs <= self.capacity, "at most {} jobs", self.capacity);
        jobs
    }

    /// State index for `jobs` in the system with the server down.
    ///
    /// # Panics
    ///
    /// Panics if `jobs > capacity`.
    pub fn down_state(&self, jobs: usize) -> usize {
        assert!(jobs <= self.capacity, "at most {} jobs", self.capacity);
        self.capacity + 1 + jobs
    }

    /// Total number of states (`2·(K+1)`).
    pub fn num_states(&self) -> usize {
        2 * (self.capacity + 1)
    }
}

/// Build the breakdown-queue MRM.
///
/// # Panics
///
/// Panics if `capacity` is zero or any rate/cost is negative (developer
/// inputs).
pub fn queue(config: &QueueConfig) -> Mrm {
    assert!(config.capacity >= 1, "capacity must be at least 1");
    let k = config.capacity;
    let mut b = CtmcBuilder::new(config.num_states());

    for j in 0..=k {
        let up = config.up_state(j);
        let down = config.down_state(j);
        if j < k {
            b.transition(up, config.up_state(j + 1), config.arrival_rate);
            b.transition(down, config.down_state(j + 1), config.arrival_rate);
        }
        if j > 0 {
            b.transition(up, config.up_state(j - 1), config.service_rate);
        }
        if config.failure_rate > 0.0 {
            b.transition(up, down, config.failure_rate);
        }
        b.transition(down, up, config.repair_rate);

        for s in [up, down] {
            b.label(s, format!("jobs{j}"));
            if j == 0 {
                b.label(s, "empty");
            }
            if j == k {
                b.label(s, "full");
            }
        }
        b.label(up, "up");
        b.label(down, "down");
    }
    let ctmc = b.build().expect("the queue model is well-formed");

    let mut rewards = vec![0.0; config.num_states()];
    for j in 0..=k {
        rewards[config.up_state(j)] = config.holding_cost * j as f64;
        rewards[config.down_state(j)] = config.holding_cost * j as f64 + config.downtime_cost;
    }
    let rho = StateRewards::new(rewards).expect("costs are non-negative");

    let mut iota = ImpulseRewards::new();
    for j in 1..=k {
        iota.set(
            config.up_state(j),
            config.up_state(j - 1),
            config.service_reward,
        )
        .expect("valid impulse");
    }
    for j in 0..=k {
        iota.set(config.down_state(j), config.up_state(j), config.repair_cost)
            .expect("valid impulse");
    }
    Mrm::new(ctmc, rho, iota).expect("the queue MRM is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_ctmc::steady::SteadyStateAnalysis;
    use mrmc_sparse::solver::SolverOptions;

    #[test]
    fn structure() {
        let c = QueueConfig::new(3);
        let m = queue(&c);
        assert_eq!(m.num_states(), 8);
        assert_eq!(m.ctmc().rates().get(c.up_state(0), c.up_state(1)), 0.8);
        assert_eq!(m.ctmc().rates().get(c.up_state(2), c.up_state(1)), 1.0);
        assert_eq!(m.ctmc().rates().get(c.down_state(1), c.up_state(1)), 0.5);
        // No service while down.
        assert_eq!(m.ctmc().rates().get(c.down_state(2), c.down_state(1)), 0.0);
        // No arrival past capacity.
        assert_eq!(m.ctmc().rates().get(c.up_state(3), c.up_state(3)), 0.0);
        assert!(m.labeling().has(c.up_state(3), "full"));
        assert!(m.labeling().has(c.down_state(0), "empty"));
    }

    #[test]
    fn rewards_and_impulses() {
        let c = QueueConfig::new(3);
        let m = queue(&c);
        assert_eq!(m.state_reward(c.up_state(2)), 2.0);
        assert_eq!(m.state_reward(c.down_state(2)), 7.0);
        assert_eq!(m.impulse_reward(c.up_state(2), c.up_state(1)), 2.0);
        assert_eq!(m.impulse_reward(c.down_state(1), c.up_state(1)), 10.0);
        assert_eq!(m.impulse_reward(c.up_state(1), c.up_state(2)), 0.0);
    }

    #[test]
    fn reliable_queue_matches_birth_death_steady_state() {
        // M/M/1/K: π_j ∝ ρ^j with ρ = λ/μ.
        let c = QueueConfig::new(4).reliable();
        let m = queue(&c);
        let analysis = SteadyStateAnalysis::new(m.ctmc(), SolverOptions::new()).unwrap();
        let rho = c.arrival_rate / c.service_rate;
        let norm: f64 = (0..=4).map(|j| rho.powi(j)).sum();
        for j in 0..=4usize {
            let mut target = vec![false; m.num_states()];
            target[c.up_state(j)] = true;
            let p = analysis.probability_from(c.up_state(0), &target);
            let exact = rho.powi(j as i32) / norm;
            assert!((p - exact).abs() < 1e-8, "j = {j}: {p} vs {exact}");
        }
    }

    #[test]
    fn down_states_unreachable_in_reliable_queue() {
        let c = QueueConfig::new(2).reliable();
        let m = queue(&c);
        let analysis = SteadyStateAnalysis::new(m.ctmc(), SolverOptions::new()).unwrap();
        let down = m.labeling().states_with("down");
        assert_eq!(analysis.probability_from(c.up_state(0), &down), 0.0);
    }

    #[test]
    fn breakdowns_create_down_time() {
        let c = QueueConfig::new(2);
        let m = queue(&c);
        let analysis = SteadyStateAnalysis::new(m.ctmc(), SolverOptions::new()).unwrap();
        let down = m.labeling().states_with("down");
        let p = analysis.probability_from(c.up_state(0), &down);
        // Roughly failure/(failure+repair) = 0.02/0.52 ≈ 0.038.
        assert!(p > 0.01 && p < 0.1, "P(down) = {p}");
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn job_index_overflow_panics() {
        QueueConfig::new(2).up_state(3);
    }
}
