//! Seeded random MRM generation for property tests and stress benches.
//!
//! The generator produces *valid* models by construction: non-negative
//! rates, rewards drawn from a small set of levels (so reward classes stay
//! meaningful), impulse rewards only on actual transitions and never on
//! self-loops, and every state reachable from state 0 (a spanning chain is
//! always included, keeping until-probabilities non-trivial).

use mrmc_sparse::rng::Xoshiro256StarStar;

use mrmc_ctmc::CtmcBuilder;
use mrmc_mrm::{ImpulseRewards, Mrm, StateRewards};

/// Parameters for [`random_mrm`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomMrmConfig {
    /// Number of states (≥ 2).
    pub states: usize,
    /// Expected number of extra transitions per state beyond the spanning
    /// chain.
    pub extra_transitions_per_state: f64,
    /// Rates are drawn uniformly from `(0, max_rate]`.
    pub max_rate: f64,
    /// State rewards are drawn from this set of levels.
    pub reward_levels: Vec<f64>,
    /// Impulse rewards are drawn from this set (zero means "no impulse").
    pub impulse_levels: Vec<f64>,
    /// Fraction of states labeled `goal`.
    pub goal_fraction: f64,
}

impl Default for RandomMrmConfig {
    fn default() -> Self {
        RandomMrmConfig {
            states: 6,
            extra_transitions_per_state: 1.5,
            max_rate: 3.0,
            reward_levels: vec![0.0, 1.0, 4.0],
            impulse_levels: vec![0.0, 0.5, 2.0],
            goal_fraction: 0.25,
        }
    }
}

/// Generate a random but valid MRM, deterministically from `seed`.
///
/// Every state carries the label `s{i}`; roughly `goal_fraction` of the
/// states (at least one, never state 0) also carry `goal`.
///
/// # Panics
///
/// Panics if `config.states < 2` or the level sets are empty.
pub fn random_mrm(seed: u64, config: &RandomMrmConfig) -> Mrm {
    assert!(config.states >= 2, "need at least two states");
    assert!(!config.reward_levels.is_empty(), "need reward levels");
    assert!(!config.impulse_levels.is_empty(), "need impulse levels");
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let n = config.states;

    let mut b = CtmcBuilder::new(n);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Spanning chain 0 → 1 → … → n−1 keeps everything reachable.
    for s in 0..n - 1 {
        let rate = rng.range_f64(0.05, config.max_rate);
        b.transition(s, s + 1, rate);
        edges.push((s, s + 1));
    }
    // Extra random transitions (self-loops allowed).
    let extra = (config.extra_transitions_per_state * n as f64).round() as usize;
    for _ in 0..extra {
        let from = rng.range_usize(n);
        let to = rng.range_usize(n);
        if edges.contains(&(from, to)) {
            continue;
        }
        let rate = rng.range_f64(0.05, config.max_rate);
        b.transition(from, to, rate);
        edges.push((from, to));
    }

    for s in 0..n {
        b.label(s, format!("s{s}"));
    }
    // Goal states: never state 0, at least one.
    let mut goals = 0usize;
    for s in 1..n {
        if rng.bool_with(config.goal_fraction) {
            b.label(s, "goal");
            goals += 1;
        }
    }
    if goals == 0 {
        b.label(n - 1, "goal");
    }
    let ctmc = b.build().expect("generated chain is well-formed");

    let rewards: Vec<f64> = (0..n)
        .map(|_| config.reward_levels[rng.range_usize(config.reward_levels.len())])
        .collect();
    let rho = StateRewards::new(rewards).expect("levels are non-negative");

    let mut iota = ImpulseRewards::new();
    for &(from, to) in &edges {
        if from == to {
            continue; // Definition 3.1: no impulse on self-loops.
        }
        let level = config.impulse_levels[rng.range_usize(config.impulse_levels.len())];
        if level > 0.0 {
            iota.set(from, to, level).expect("levels are non-negative");
        }
    }
    Mrm::new(ctmc, rho, iota).expect("generated MRM is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomMrmConfig::default();
        let a = random_mrm(42, &cfg);
        let b = random_mrm(42, &cfg);
        assert_eq!(a, b);
        let c = random_mrm(43, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_models_are_valid_and_connected() {
        let cfg = RandomMrmConfig::default();
        for seed in 0..25 {
            let m = random_mrm(seed, &cfg);
            assert_eq!(m.num_states(), cfg.states);
            // Spanning chain: every state is reachable from 0.
            for s in 0..cfg.states - 1 {
                assert!(m.ctmc().rates().get(s, s + 1) > 0.0);
            }
            // At least one goal state, never state 0.
            let goals = m.labeling().states_with("goal");
            assert!(goals.iter().any(|&g| g));
            assert!(!goals[0]);
            // No impulse on self-loops.
            for (f, t, v) in m.impulse_rewards().iter() {
                assert!(f != t);
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn reward_levels_are_respected() {
        let cfg = RandomMrmConfig {
            reward_levels: vec![2.0],
            impulse_levels: vec![0.0],
            ..RandomMrmConfig::default()
        };
        let m = random_mrm(7, &cfg);
        for s in 0..m.num_states() {
            assert_eq!(m.state_reward(s), 2.0);
        }
        assert!(m.impulse_rewards().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_model_rejected() {
        random_mrm(
            0,
            &RandomMrmConfig {
                states: 1,
                ..RandomMrmConfig::default()
            },
        );
    }
}
