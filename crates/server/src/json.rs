//! A minimal JSON reader/writer for the server's request protocol.
//!
//! The implementation lives in [`mrmc_obs::json`] so that the bench harness
//! (`mrmc bench diff`) and the server share one JSON codec; this module
//! re-exports it under the historical `mrmc_server::json` path used by the
//! conformance, soak and snapshot tests.

pub use mrmc_obs::json::{parse, ParseError, Value};
