//! Checker-as-a-service: a JSONL batch server over a shared
//! [`CheckSession`].
//!
//! `mrmc serve` turns the one-shot CLI into a long-lived daemon: clients
//! connect over TCP (loopback by default), stream newline-delimited JSON
//! requests, and receive one JSON response line per request. All
//! connections share one [`CheckSession`], so models are loaded once per
//! distinct content and memoized `Sat` sub-results, verified lumping
//! certificates, and Omega-term tables accumulate across requests,
//! clients, and models. Checks execute on a scoped worker pool; the
//! per-request result objects are exactly the CLI's `--json` objects
//! (rendered by [`mrmc::report`]), so a server-mode batch is bit-for-bit
//! comparable to one-shot runs.
//!
//! # Wire protocol
//!
//! Requests, one JSON object per line:
//!
//! * `{"load": {"model": "m1", "tra": P, "lab": P, "rewr": P, "rewi": P}}` —
//!   register the model files under the ref `"m1"`. Answered in line
//!   order with `{"loaded": "m1", "states": N, "transitions": T,
//!   "model_hash": "…"}`. Reloading re-reads the files: unchanged bytes
//!   reuse the session entry, changed bytes get a fresh one (stale cached
//!   results can never be served).
//! * `{"check": {"model": "m1", "formula": F, "options": {…}}, "id": X}` —
//!   check formula `F` against the model registered as `"m1"`. Dispatched
//!   to the worker pool; the response is the CLI `--json` outcome (or
//!   error) object with `"id"` (echoed verbatim) and `"model"` prepended.
//!   Responses arrive in *completion* order — use `"id"` to correlate.
//!   `options` accepts `engine` (`"u=1e-8"` / `"d=0.05"` / `"s=10000"`),
//!   `threads`, `solver` (`"gs"`/`"colored"`), `tolerance`,
//!   `no_reduction`, and `metrics` (embed the per-request metrics object).
//! * `{"stats": true}` — answered in line order with the session's
//!   cumulative cache counters (`sat_cache_hits`, `sat_cache_misses`,
//!   `cert_cache_hits`, `models_loaded`, `omega_cache_hits`, …), each
//!   monotone over the server's lifetime, followed by the latency
//!   observability fields: `uptime_s`, `sat_hit_ratio`, and a `latency`
//!   object holding one log2-bucketed wall-time histogram per request
//!   kind (`check`, `load`, `stats`, `metrics`).
//! * `{"metrics": true}` — answered in line order with
//!   `{"metrics": "<text>"}` where `<text>` is a Prometheus-style text
//!   exposition of the same counters and latency histograms
//!   (`mrmc_sat_cache_hits`, `mrmc_uptime_seconds`,
//!   `mrmc_request_seconds_bucket{kind="check",le="…"}`, …).
//!
//! Every `check` response carries an `elapsed_s` field in its correlation
//! prefix (wall seconds the check spent in a worker); the result object
//! that follows is still byte-identical to the one-shot CLI line.
//! Requests slower than [`ServerConfig::slow_request_s`] are logged to
//! stderr. All timing is observation-only: results never depend on it.
//!
//! Malformed lines are answered with `{"error": …, "error_kind":
//! "request"}` and counted as failures. When the client closes its write
//! half, the server drains that connection's in-flight checks and ends
//! the response stream with `{"kind": "run_summary", "formulas": N,
//! "failures": M, "elapsed_s": S}` — the terminal record a `--trace`
//! stream ends with, plus the connection's wall time — then closes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
// devlint::allow(D002): request latency and uptime are observability-only; no checking result reads the clock
use std::time::Instant;

use mrmc::report;
use mrmc::{
    CheckError, CheckOptions, CheckSession, ModelHandle, Reduction, SessionStats, UntilEngine,
};
use mrmc_obs::{Histogram, MetricsRecorder, Recorder};
use mrmc_sparse::solver::SolverMethod;

use json::Value;

/// How many checks may run concurrently across all connections, and when
/// a request counts as slow.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads executing check requests (at least 1).
    pub workers: usize,
    /// Requests slower than this many wall-clock seconds are logged to
    /// stderr (the slow-request log). Non-positive disables the log.
    pub slow_request_s: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            slow_request_s: 1.0,
        }
    }
}

/// Cross-connection latency observability: the server start time (for
/// `uptime_s`), the slow-request threshold, and one log2-bucketed
/// wall-time histogram per request kind, shared by every connection and
/// worker. Purely additive — nothing here feeds back into results.
#[derive(Debug)]
struct ServerObs {
    // devlint::allow(D002): uptime anchor for the stats reply; observability-only
    start: Instant,
    slow_request_s: f64,
    latency: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl ServerObs {
    fn new(slow_request_s: f64) -> Self {
        ServerObs {
            // devlint::allow(D002): uptime anchor for the stats reply; observability-only
            start: Instant::now(),
            slow_request_s,
            latency: Mutex::new(BTreeMap::new()),
        }
    }

    /// Seconds since the server was bound.
    fn uptime_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Fold one serviced request into its kind's latency histogram and
    /// log it to stderr when it breached the slow-request threshold.
    fn observe(&self, kind: &'static str, seconds: f64, detail: &str) {
        if self.slow_request_s > 0.0 && seconds >= self.slow_request_s {
            if detail.is_empty() {
                eprintln!("mrmc serve: slow request: {kind} took {seconds:.3}s");
            } else {
                eprintln!("mrmc serve: slow request: {kind} `{detail}` took {seconds:.3}s");
            }
        }
        // devlint::allow(D005): poisoned only if a holder panicked; no recovery short of dropping the connection
        let mut latency = self.latency.lock().expect("latency poisoned");
        latency.entry(kind).or_default().observe_seconds(seconds);
    }

    /// The per-kind latency map as a JSON object; BTreeMap keeps the kind
    /// order fixed, and each histogram renders in its documented shape.
    fn latency_json(&self) -> String {
        // devlint::allow(D005): poisoned only if a holder panicked; no recovery short of dropping the connection
        let latency = self.latency.lock().expect("latency poisoned");
        let mut out = String::from("{");
        for (i, (kind, hist)) in latency.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{kind}\":{}", hist.to_json()));
        }
        out.push('}');
        out
    }

    /// The Prometheus-style text exposition for the `metrics` request:
    /// session counters (named after `mrmc_obs::counters`), the uptime
    /// gauge, and the per-kind request-latency histograms.
    fn exposition(&self, stats: &SessionStats) -> String {
        use mrmc_obs::counters;
        fn push_counter(out: &mut String, name: &str, value: u64) {
            out.push_str(&format!(
                "# TYPE mrmc_{name} counter\nmrmc_{name} {value}\n"
            ));
        }
        let mut out = String::new();
        push_counter(&mut out, "requests", stats.requests);
        push_counter(&mut out, counters::MODELS_LOADED, stats.models_loaded);
        push_counter(&mut out, counters::SAT_CACHE_HITS, stats.sat_cache_hits);
        push_counter(&mut out, counters::SAT_CACHE_MISSES, stats.sat_cache_misses);
        push_counter(&mut out, counters::CERT_CACHE_HITS, stats.cert_cache_hits);
        push_counter(&mut out, "omega_cache_entries", stats.omega_cache_entries);
        push_counter(&mut out, counters::OMEGA_CACHE_HITS, stats.omega_cache_hits);
        push_counter(&mut out, "scc_cache_hits", stats.scc_cache_hits);
        out.push_str(&format!(
            "# TYPE mrmc_uptime_seconds gauge\nmrmc_uptime_seconds {:e}\n",
            self.uptime_s()
        ));
        out.push_str("# TYPE mrmc_request_seconds histogram\n");
        // devlint::allow(D005): poisoned only if a holder panicked; no recovery short of dropping the connection
        let latency = self.latency.lock().expect("latency poisoned");
        for (kind, hist) in latency.iter() {
            hist.write_prometheus(&mut out, "mrmc_request_seconds", &[("kind", kind)]);
        }
        out
    }
}

/// A bound, not-yet-running batch server. See the crate docs for the
/// wire protocol.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    session: Arc<CheckSession>,
    workers: usize,
    obs: Arc<ServerObs>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) with a fresh
    /// session.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            session: Arc::new(CheckSession::new()),
            workers: config.workers.max(1),
            obs: Arc::new(ServerObs::new(config.slow_request_s)),
        })
    }

    /// The address actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared session (for in-process inspection in tests).
    pub fn session(&self) -> &Arc<CheckSession> {
        &self.session
    }

    /// Serve connections until `connections` have been accepted and fully
    /// drained (`None`: forever). Workers and per-connection readers run
    /// on a scoped pool; the call returns only when every response,
    /// including each connection's `run_summary`, has been written.
    ///
    /// # Errors
    ///
    /// Propagates `accept` failures; per-connection I/O errors only
    /// terminate that connection.
    pub fn run(&self, connections: Option<usize>) -> std::io::Result<()> {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let rx = rx.clone();
                scope.spawn(move || worker_loop(&rx));
            }
            let mut accepted = 0usize;
            let result = loop {
                if connections == Some(accepted) {
                    break Ok(());
                }
                let stream = match self.listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(e) => break Err(e),
                };
                accepted += 1;
                let session = self.session.clone();
                let obs = self.obs.clone();
                let tx = tx.clone();
                scope.spawn(move || {
                    // A connection dropping mid-stream is the client's
                    // problem, not the server's.
                    let _ = serve_connection(&session, &obs, &tx, stream);
                });
            };
            // Readers hold their own sender clones; once they finish and
            // this one drops, the workers' `recv` fails and they exit.
            drop(tx);
            result
        })
    }
}

/// One check dispatched to the worker pool.
struct Job {
    session: Arc<CheckSession>,
    model: ModelHandle,
    model_ref: String,
    /// The request's `id`, re-rendered verbatim into the response.
    id: Option<Value>,
    formula: String,
    options: CheckOptions,
    metrics: bool,
    conn: Arc<ConnState>,
    obs: Arc<ServerObs>,
}

/// Per-connection shared state: the response writer plus in-flight
/// accounting for the end-of-stream `run_summary`.
struct ConnState {
    writer: Mutex<TcpStream>,
    pending: Mutex<usize>,
    idle: Condvar,
    formulas: AtomicU64,
    failures: AtomicU64,
    // devlint::allow(D002): feeds the run_summary `elapsed_s` field only
    started: Instant,
}

impl ConnState {
    fn new(stream: TcpStream) -> Self {
        ConnState {
            writer: Mutex::new(stream),
            pending: Mutex::new(0),
            idle: Condvar::new(),
            formulas: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            // devlint::allow(D002): feeds the run_summary `elapsed_s` field only
            started: Instant::now(),
        }
    }

    /// Write one response line atomically (line-buffered, flushed).
    fn write_line(&self, line: &str) {
        // devlint::allow(D005): poisoned only if a holder panicked; no recovery short of dropping the connection
        let mut w = self.writer.lock().expect("writer poisoned");
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
        let _ = w.flush();
    }

    fn job_queued(&self) {
        // devlint::allow(D005): poisoned only if a holder panicked; no recovery short of dropping the connection
        *self.pending.lock().expect("pending poisoned") += 1;
    }

    fn job_done(&self) {
        // devlint::allow(D005): poisoned only if a holder panicked; no recovery short of dropping the connection
        let mut pending = self.pending.lock().expect("pending poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.idle.notify_all();
        }
    }

    /// Block until every dispatched job for this connection completed.
    fn wait_idle(&self) {
        // devlint::allow(D005): poisoned only if a holder panicked; no recovery short of dropping the connection
        let mut pending = self.pending.lock().expect("pending poisoned");
        while *pending > 0 {
            // devlint::allow(D005): same poisoning caveat as the lock above
            pending = self.idle.wait(pending).expect("pending poisoned");
        }
    }
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<Job>>) {
    loop {
        // Hold the lock only while receiving, not while checking.
        // devlint::allow(D005): poisoned only if a holder panicked; no recovery short of dropping the connection
        let Ok(job) = rx.lock().expect("queue poisoned").recv() else {
            return;
        };
        let line = execute(&job);
        job.conn.write_line(&line);
        job.conn.job_done();
    }
}

/// Run one check and render its response line. The wall time the check
/// spends here becomes the response's `elapsed_s` correlation field and
/// a `check` latency observation; it never influences the result object.
fn execute(job: &Job) -> String {
    // devlint::allow(D002): wall time feeds the latency histogram and the `elapsed_s` field, never the result
    let started = Instant::now();
    let metrics = job.metrics.then(|| Arc::new(MetricsRecorder::new()));
    let check = || {
        job.session
            .check_str(&job.model, &job.formula, &job.options)
    };
    let result = match &metrics {
        Some(m) => {
            let recorder: Arc<dyn Recorder> = m.clone();
            mrmc_obs::with_recorder(recorder, check)
        }
        None => check(),
    };
    let snapshot = metrics.as_deref().map(MetricsRecorder::take);
    let body = match &result {
        Ok(outcome) => report::json_outcome(&job.formula, outcome, snapshot.as_ref()),
        Err(e) => {
            job.conn.failures.fetch_add(1, Ordering::Relaxed);
            report::json_error(&job.formula, e)
        }
    };
    let elapsed_s = started.elapsed().as_secs_f64();
    job.obs.observe("check", elapsed_s, &job.formula);
    // Prepend the correlation fields (including the wall time the check
    // took); the rest of the object is exactly the CLI's `--json` line.
    let id = job.id.as_ref().map(Value::render);
    let elapsed = report::json_f64(elapsed_s);
    match id {
        Some(id) => format!(
            "{{\"id\":{id},\"model\":\"{}\",\"elapsed_s\":{elapsed},{}",
            report::json_escape(&job.model_ref),
            &body[1..]
        ),
        None => format!(
            "{{\"model\":\"{}\",\"elapsed_s\":{elapsed},{}",
            report::json_escape(&job.model_ref),
            &body[1..]
        ),
    }
}

/// Read one connection's request lines, dispatch its checks, and finish
/// with the `run_summary` record.
fn serve_connection(
    session: &Arc<CheckSession>,
    obs: &Arc<ServerObs>,
    tx: &mpsc::Sender<Job>,
    stream: TcpStream,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let conn = Arc::new(ConnState::new(stream));
    // BTreeMap: any reply or summary that walks the loaded models must
    // come out in ref order, never hash order.
    let mut models: BTreeMap<String, ModelHandle> = BTreeMap::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if let Err(reply) = handle_request(session, obs, tx, &conn, &mut models, &line) {
            conn.failures.fetch_add(1, Ordering::Relaxed);
            conn.write_line(&format!(
                "{{\"error\":\"{}\",\"error_kind\":\"request\"}}",
                report::json_escape(&reply)
            ));
        }
    }
    // Client closed its write half: drain in-flight checks, then seal the
    // stream with the same terminal record a `--trace` file ends with
    // (plus the connection's wall time).
    conn.wait_idle();
    conn.write_line(&format!(
        "{{\"kind\":\"run_summary\",\"formulas\":{},\"failures\":{},\"elapsed_s\":{}}}",
        conn.formulas.load(Ordering::Relaxed),
        conn.failures.load(Ordering::Relaxed),
        report::json_f64(conn.started.elapsed().as_secs_f64())
    ));
    Ok(())
}

/// Dispatch one request line; `Err` is the human-readable reply for a
/// malformed or unserviceable request.
fn handle_request(
    session: &Arc<CheckSession>,
    obs: &Arc<ServerObs>,
    tx: &mpsc::Sender<Job>,
    conn: &Arc<ConnState>,
    models: &mut BTreeMap<String, ModelHandle>,
    line: &str,
) -> Result<(), String> {
    // devlint::allow(D002): synchronous requests are timed for the latency histograms only
    let started = Instant::now();
    let request = json::parse(line).map_err(|e| e.to_string())?;
    if let Some(load) = request.get("load") {
        let field = |name: &str| -> Result<&str, String> {
            load.get(name)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("load request needs a string `{name}` field"))
        };
        let model_ref = field("model")?.to_string();
        let handle = session
            .load_files(field("tra")?, field("lab")?, field("rewr")?, field("rewi")?)
            .map_err(|e| e.to_string())?;
        conn.write_line(&format!(
            "{{\"loaded\":\"{}\",\"states\":{},\"transitions\":{},\"model_hash\":\"{:016x}\"}}",
            report::json_escape(&model_ref),
            handle.mrm().num_states(),
            handle.mrm().ctmc().rates().nnz(),
            handle.content_hash()
        ));
        obs.observe("load", started.elapsed().as_secs_f64(), &model_ref);
        models.insert(model_ref, handle);
        return Ok(());
    }
    if let Some(check) = request.get("check") {
        let model_ref = check
            .get("model")
            .and_then(Value::as_str)
            .ok_or("check request needs a string `model` field")?
            .to_string();
        let model = models
            .get(&model_ref)
            .ok_or_else(|| format!("no model loaded under the ref `{model_ref}`"))?
            .clone();
        let formula = check
            .get("formula")
            .and_then(Value::as_str)
            .ok_or("check request needs a string `formula` field")?
            .to_string();
        let (options, metrics) = parse_options(check.get("options"))?;
        conn.formulas.fetch_add(1, Ordering::Relaxed);
        conn.job_queued();
        let sent = tx.send(Job {
            session: session.clone(),
            model,
            model_ref,
            id: request.get("id").cloned(),
            formula,
            options,
            metrics,
            conn: conn.clone(),
            obs: obs.clone(),
        });
        if sent.is_err() {
            conn.job_done();
            return Err("server is shutting down".to_string());
        }
        return Ok(());
    }
    if request.get("stats").is_some() {
        conn.write_line(&render_stats(
            &session.stats(),
            obs.uptime_s(),
            &obs.latency_json(),
        ));
        obs.observe("stats", started.elapsed().as_secs_f64(), "");
        return Ok(());
    }
    if request.get("metrics").is_some() {
        let text = obs.exposition(&session.stats());
        conn.write_line(&format!(
            "{{\"metrics\":\"{}\"}}",
            report::json_escape(&text)
        ));
        obs.observe("metrics", started.elapsed().as_secs_f64(), "");
        return Ok(());
    }
    Err("request must contain `load`, `check`, `stats`, or `metrics`".to_string())
}

/// Build [`CheckOptions`] from a request's `options` object. Returns the
/// options plus whether per-request metrics were asked for.
fn parse_options(options: Option<&Value>) -> Result<(CheckOptions, bool), String> {
    let mut out = CheckOptions::new();
    let mut metrics = false;
    let Some(options) = options else {
        return Ok((out, metrics));
    };
    let Value::Obj(members) = options else {
        return Err("`options` must be an object".to_string());
    };
    for (key, value) in members {
        match key.as_str() {
            "engine" => {
                let text = value.as_str().ok_or("`engine` must be a string")?;
                out = out.with_engine(parse_engine(text)?);
            }
            "threads" => {
                let n = value
                    .as_u64()
                    .ok_or("`threads` must be a non-negative integer")?;
                out = out.with_threads(n as usize);
            }
            "solver" => {
                let method = match value.as_str() {
                    Some("gs") => SolverMethod::GaussSeidel,
                    Some("colored") => SolverMethod::ColoredGaussSeidel,
                    _ => return Err("`solver` must be \"gs\" or \"colored\"".to_string()),
                };
                out = out.with_solver_method(method);
            }
            "tolerance" => {
                let e = value.as_f64().ok_or("`tolerance` must be a number")?;
                if !(e > 0.0 && e < 1.0) {
                    return Err(format!("tolerance must be in (0, 1), got {e}"));
                }
                out = out.with_tolerance(e);
            }
            "no_reduction" => {
                if value.as_bool().ok_or("`no_reduction` must be a boolean")? {
                    out = out.with_reduction(Reduction::Off);
                }
            }
            "metrics" => {
                metrics = value.as_bool().ok_or("`metrics` must be a boolean")?;
            }
            other => return Err(format!("unrecognized option `{other}`")),
        }
    }
    // `threads` must be applied after the engine switch so it reaches the
    // engine actually configured — BTreeMap iteration already visits
    // `engine` before `threads`, which the conformance tests pin.
    Ok((out, metrics))
}

/// Parse a `u=`/`d=`/`s=` engine switch, the CLI's engine grammar.
///
/// # Errors
///
/// A human-readable message for unknown switches or bad numbers.
pub fn parse_engine(text: &str) -> Result<UntilEngine, String> {
    if let Some(w) = text.strip_prefix("u=") {
        w.parse()
            .map(UntilEngine::uniformization)
            .map_err(|_| format!("invalid truncation probability `{w}`"))
    } else if let Some(d) = text.strip_prefix("d=") {
        d.parse()
            .map(UntilEngine::discretization)
            .map_err(|_| format!("invalid discretization step `{d}`"))
    } else if let Some(n) = text.strip_prefix("s=") {
        n.parse()
            .map(UntilEngine::simulation)
            .map_err(|_| format!("invalid sample count `{n}`"))
    } else {
        Err(format!(
            "unrecognized engine `{text}` (expected u=, d=, or s=)"
        ))
    }
}

/// Classify a batch's worst outcome for exit-code selection; shared by
/// `mrmc check` and `mrmc batch`. Precedence (worst first): operational
/// error > pre-flight rejection > missed tolerance > unknown verdict.
#[derive(Debug, Default, Clone, Copy)]
pub struct RunTotals {
    /// A formula failed operationally (parse, model, numerics).
    pub any_error: bool,
    /// The pre-flight lint rejected a formula.
    pub any_preflight: bool,
    /// A formula missed its requested tolerance.
    pub any_tolerance_miss: bool,
    /// A formula completed with at least one Unknown verdict.
    pub any_unknown: bool,
}

impl RunTotals {
    /// Fold one failed check into the totals.
    pub fn record_error(&mut self, e: &CheckError) {
        match e {
            CheckError::ToleranceNotMet { .. } => self.any_tolerance_miss = true,
            CheckError::Preflight(_) => self.any_preflight = true,
            _ => self.any_error = true,
        }
    }

    /// The process exit code reflecting the worst outcome across the
    /// batch: `1` operational error, `2` pre-flight rejection, `3`
    /// missed tolerance, `4` unknown verdicts, `0` all formulas decided.
    pub fn exit_code(&self) -> u8 {
        if self.any_error {
            1
        } else if self.any_preflight {
            2
        } else if self.any_tolerance_miss {
            3
        } else if self.any_unknown {
            4
        } else {
            0
        }
    }
}

/// Connect to a running server, retrying briefly while it starts up.
///
/// # Errors
///
/// The last connect failure once the retry budget is exhausted.
pub fn connect_with_retry(addr: &str, attempts: u32) -> std::io::Result<TcpStream> {
    let mut last = None;
    for _ in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    // devlint::allow(D005): attempts.max(1) guarantees the loop ran and set `last`
    Err(last.expect("at least one attempt"))
}

/// Render the `stats` reply line. The field order is part of the wire
/// contract — conformance clients and CI greps match on it — so it is
/// pinned here (and by a regression test below): first the session
/// counters in the exact order the fields leave [`CheckSession::stats`],
/// then the latency observability suffix (`uptime_s`, `sat_hit_ratio`,
/// `latency`) appended behind them.
fn render_stats(stats: &SessionStats, uptime_s: f64, latency_json: &str) -> String {
    let lookups = stats.sat_cache_hits + stats.sat_cache_misses;
    let sat_hit_ratio = if lookups == 0 {
        0.0
    } else {
        stats.sat_cache_hits as f64 / lookups as f64
    };
    format!(
        "{{\"stats\":{{\"requests\":{},\"models_loaded\":{},\"sat_cache_hits\":{},\
         \"sat_cache_misses\":{},\"cert_cache_hits\":{},\"omega_cache_entries\":{},\
         \"omega_cache_hits\":{},\"uptime_s\":{},\"sat_hit_ratio\":{},\"latency\":{}}}}}",
        stats.requests,
        stats.models_loaded,
        stats.sat_cache_hits,
        stats.sat_cache_misses,
        stats.cert_cache_hits,
        stats.omega_cache_entries,
        stats.omega_cache_hits,
        report::json_f64(uptime_s),
        report::json_f64(sat_hit_ratio),
        latency_json
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_reply_field_order_is_pinned() {
        let stats = SessionStats {
            requests: 1,
            models_loaded: 2,
            sat_cache_hits: 3,
            sat_cache_misses: 1,
            cert_cache_hits: 5,
            omega_cache_entries: 6,
            omega_cache_hits: 7,
            scc_cache_hits: 8,
        };
        // Byte-exact wire contract: conformance clients and CI greps
        // parse this line positionally. Any reordering is a breaking
        // protocol change and must fail here first. The latency suffix
        // is part of the pinned order too (3 hits / 1 miss = 0.75).
        assert_eq!(
            render_stats(&stats, 0.5, "{}"),
            "{\"stats\":{\"requests\":1,\"models_loaded\":2,\"sat_cache_hits\":3,\
             \"sat_cache_misses\":1,\"cert_cache_hits\":5,\"omega_cache_entries\":6,\
             \"omega_cache_hits\":7,\"uptime_s\":5e-1,\"sat_hit_ratio\":7.5e-1,\
             \"latency\":{}}}"
        );
    }

    #[test]
    fn server_obs_feeds_histograms_stats_and_exposition() {
        let obs = ServerObs::new(0.0);
        obs.observe("check", 0.5e-3, "S(> 0.5) (up)");
        obs.observe("check", 1.5e-3, "S(> 0.5) (up)");
        obs.observe("stats", 1e-6, "");
        let latency = obs.latency_json();
        assert!(latency.starts_with("{\"check\":{\"count\":2,"), "{latency}");
        assert!(latency.contains("\"stats\":{\"count\":1,"), "{latency}");

        let stats = SessionStats {
            requests: 4,
            models_loaded: 1,
            sat_cache_hits: 0,
            sat_cache_misses: 0,
            cert_cache_hits: 0,
            omega_cache_entries: 0,
            omega_cache_hits: 0,
            scc_cache_hits: 0,
        };
        // Zero lookups must not divide by zero.
        let line = render_stats(&stats, 1.0, &latency);
        assert!(line.contains("\"sat_hit_ratio\":0e0"), "{line}");
        json::parse(&line).expect("stats reply parses");

        let text = obs.exposition(&stats);
        assert!(text.contains("# TYPE mrmc_requests counter\nmrmc_requests 4\n"));
        assert!(text.contains("# TYPE mrmc_sat_cache_hits counter\n"));
        assert!(text.contains("# TYPE mrmc_uptime_seconds gauge\n"));
        assert!(text.contains("# TYPE mrmc_request_seconds histogram\n"));
        assert!(
            text.contains("mrmc_request_seconds_bucket{kind=\"check\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("mrmc_request_seconds_count{kind=\"check\"} 2"));
        assert!(text.contains("mrmc_request_seconds_count{kind=\"stats\"} 1"));
    }

    #[test]
    fn totals_rank_worst_outcome() {
        let mut t = RunTotals::default();
        assert_eq!(t.exit_code(), 0);
        t.any_unknown = true;
        assert_eq!(t.exit_code(), 4);
        t.any_tolerance_miss = true;
        assert_eq!(t.exit_code(), 3);
        t.any_preflight = true;
        assert_eq!(t.exit_code(), 2);
        t.any_error = true;
        assert_eq!(t.exit_code(), 1);
    }

    #[test]
    fn engine_grammar_matches_the_cli() {
        assert!(matches!(
            parse_engine("u=1e-10"),
            Ok(UntilEngine::Uniformization(_))
        ));
        assert!(matches!(
            parse_engine("d=0.5"),
            Ok(UntilEngine::Discretization(_))
        ));
        assert!(matches!(
            parse_engine("s=1000"),
            Ok(UntilEngine::Simulation(_))
        ));
        assert!(parse_engine("x=1").is_err());
        assert!(parse_engine("u=potato").is_err());
    }

    #[test]
    fn option_objects_parse() {
        let v = json::parse(
            r#"{"engine":"d=0.1","threads":4,"solver":"colored","tolerance":1e-4,"no_reduction":true,"metrics":true}"#,
        )
        .unwrap();
        let (options, metrics) = parse_options(Some(&v)).unwrap();
        assert!(metrics);
        assert!(matches!(
            options.until_engine,
            UntilEngine::Discretization(_)
        ));
        assert_eq!(options.tolerance, Some(1e-4));
        assert_eq!(options.reduction, Reduction::Off);
        assert_eq!(options.solver.method, SolverMethod::ColoredGaussSeidel);
        assert_eq!(options.solver.threads, 4);
        // Defaults with no options at all.
        let (options, metrics) = parse_options(None).unwrap();
        assert_eq!(options, CheckOptions::new());
        assert!(!metrics);
        // Unknown keys are rejected, not ignored.
        let v = json::parse(r#"{"frobnicate":1}"#).unwrap();
        assert!(parse_options(Some(&v)).is_err());
    }
}
