//! The `mrmc` command-line model checker, mirroring the thesis tool's
//! interface (Appendix: Usage Manual):
//!
//! ```text
//! mrmc <model.tra> <model.lab> <model.rewr> <model.rewi> [u=<w>|d=<d>] [NP]
//! ```
//!
//! * `u=<w>` — use uniformization with truncation probability `w` for
//!   reward-bounded until formulas (default: `u=1e-8`);
//! * `d=<d>` — use discretization with step `d` instead;
//! * `s=<n>` — use Monte-Carlo simulation with `n` samples (statistical
//!   estimate, no deterministic error bound);
//! * `--tolerance E` (or `--tolerance=E`) — request accuracy `E` on every
//!   computed probability: engines run under the adaptive driver, and a
//!   formula whose error budget cannot be driven below `E` fails with
//!   *tolerance not met* (process exit code 3);
//! * `--json` — machine-readable output: one JSON object per formula with
//!   the satisfied/unknown state sets and per-state probability, verdict
//!   and error-budget breakdown;
//! * `--threads N` (or `--threads=N`) — run the uniformization path
//!   exploration, the discretization grid sweep, and the colored linear
//!   solver on `N` worker threads (`0` = auto-detect). Results are
//!   bit-identical to the serial run at any thread count;
//! * `--solver M` (or `--solver=M`) — iteration scheme for the
//!   reachability linear systems (unbounded until, and the per-BSCC
//!   reachability solves inside steady-state analysis): `gs` (plain
//!   Gauss–Seidel, the default) or `colored` (multicolor Gauss–Seidel,
//!   which honors `--threads`);
//! * `--no-reduction` — always check on the full model; by default, the
//!   checker runs on a certified lumping quotient when one exists for the
//!   formula (the reduction is exact, so results are unchanged);
//! * `--metrics` — report the run metrics per formula: a human-readable
//!   table, or a `metrics` object inside the `--json` output (paths
//!   generated/pruned, Poisson truncation points, solver iterations, grid
//!   cells, adaptive attempts, per-phase wall-clock, …);
//! * `--trace <file>` (or `--trace=<file>`) — stream every telemetry
//!   event as one JSON line to `<file>`; the last line is always a
//!   `run_summary` event;
//! * `--progress` — print throttled progress lines to stderr while the
//!   engines run;
//! * `--profile` (or `--profile=FILE`) — fold the span telemetry into a
//!   hierarchical self/total wall-time tree, printed as a flame table on
//!   stderr after the batch; with `=FILE`, the profile (span tree plus
//!   per-phase latency histograms) is also written to `FILE` as one JSON
//!   object. Observation-only, like `--metrics`;
//! * `NP` — print only the satisfying states, not the computed
//!   probabilities.
//!
//! The word `check` may be given as an explicit leading subcommand
//! (`mrmc check <model.tra> …`); it is equivalent to omitting it.
//!
//! Telemetry is observation-only: verdicts, probabilities and error
//! budgets are bit-for-bit identical whether `--metrics`/`--trace` are
//! given or not (see the `mrmc-obs` crate). Wall-clock readings appear
//! only in `span` events and the `phases` map of the metrics.
//!
//! Formulas are read from standard input, one per line; empty lines and
//! `%`-comments are skipped. States are printed 1-indexed, matching the
//! model file format.
//!
//! There is also a standalone lint subcommand that runs the static
//! analysis without starting any numerical engine:
//!
//! ```text
//! mrmc lint <model.tra> <model.lab> <model.rewr> <model.rewi> [u=<w>|d=<d>|s=<n>] [--lumping] [--json] [--deny warnings]
//! ```
//!
//! It lints the model, every formula read from stdin (model-only when
//! stdin is a terminal), and the predicted engine cost, then prints the
//! diagnostics (human-readable, or one JSON object with `--json`).
//! `--lumping` additionally runs the lumpability analysis per formula
//! (`R0xx`/`R1xx` codes); `--deny warnings` promotes Warning-grade
//! findings to Errors.
//!
//! Exit codes reflect the *worst* outcome across the whole batch: `0` all
//! formulas checked and decided (or lint found no errors), `1` a formula
//! or the model failed operationally, `2` the pre-flight lint (or
//! `mrmc lint`) found Error-grade diagnostics — no engine was started —
//! `3` a tolerance was missed (the model and formulas are fine — only
//! more work, a smaller `d`/`w`, or a looser `E` is needed), and `4`
//! every formula completed but at least one verdict is Unknown (the
//! error budget straddles the probability bound).
//!
//! Checking runs on a [`CheckSession`], so a multi-formula batch shares
//! memoized `Sat` sub-results, lumping certificates, and Omega tables
//! across formulas — `--metrics` surfaces the `sat_cache_hits` /
//! `sat_cache_misses` counters.
//!
//! Two further subcommands expose the checker as a service (see the
//! `mrmc-server` crate docs for the JSONL wire protocol):
//!
//! ```text
//! mrmc serve [--listen ADDR] [--workers N] [--connections N]
//! mrmc batch <ADDR>
//! ```
//!
//! `serve` binds a TCP listener (default `127.0.0.1:0`), prints one
//! `{"listening":"HOST:PORT"}` line to stdout, and then answers JSONL
//! batches from any number of concurrent clients over one shared session.
//! `batch` is the matching client: it streams stdin (JSONL requests) to a
//! running server and prints the response lines, exiting `0` when the
//! terminal `run_summary` reports no failures.
//!
//! Finally, `mrmc bench diff <snapshot> <baseline>` is the
//! perf-regression sentinel over the committed `BENCH_<group>.json`
//! snapshot pairs (see the `mrmc-bench` crate): noise-aware median
//! comparison plus hard work-counter checks, exit code 1 on regression.

use std::io::{BufRead, IsTerminal, Write};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
// devlint::allow(D002): the CLI reports per-formula wall time; results never branch on it
use std::time::Instant;

use mrmc::report::json_outcome;
use mrmc::{
    diagnose_load_error, lumping, Analyzer, CheckError, CheckOptions, CheckOutcome, CheckSession,
    Diagnostic, ModelHandle, Reduction, Report, Severity, UntilEngine, Verdict,
};
use mrmc_obs::{
    Event, JsonlTraceRecorder, MetricsRecorder, MultiRecorder, ProfileRecorder, ProgressRecorder,
    Recorder, RunMetrics,
};
use mrmc_server::{connect_with_retry, RunTotals, Server, ServerConfig};
use mrmc_sparse::solver::SolverMethod;

#[derive(Debug)]
struct Cli {
    tra: String,
    lab: String,
    rewr: String,
    rewi: String,
    engine: UntilEngine,
    threads: usize,
    solver: SolverMethod,
    tolerance: Option<f64>,
    json: bool,
    print_probabilities: bool,
    no_reduction: bool,
    no_slicing: bool,
    metrics: bool,
    trace: Option<String>,
    progress: bool,
    /// `None` = off, `Some(None)` = flame table only, `Some(Some(path))`
    /// = flame table plus the JSON profile written to `path`.
    profile: Option<Option<String>>,
}

fn usage() -> &'static str {
    "usage: mrmc [check] <model.tra> <model.lab> <model.rewr> <model.rewi> [u=<w>|d=<d>] [--tolerance E] [--json] [--threads N] [--solver M] [--no-reduction] [--no-slicing] [--metrics] [--trace FILE] [--progress] [--profile[=FILE]] [NP]\n\
     \x20      mrmc lint <model.tra> <model.lab> <model.rewr> <model.rewi> [u=<w>|d=<d>|s=<n>] [--lumping] [--dataflow] [--verbose] [--json] [--deny warnings]\n\
     \x20      mrmc serve [--listen ADDR] [--workers N] [--connections N]\n\
     \x20      mrmc batch <ADDR>\n\
     \x20      mrmc bench diff <snapshot.json> <baseline.json> [--json] [--max-ratio R]\n\
     \x20      mrmc devlint [--json] [ROOT]\n\
     \n\
     Reads CSRL formulas from stdin, one per line, e.g.\n\
     \x20 P(>= 0.3) [a U[0,3][0,23] b]\n\
     \x20 S(> 0.5) (up)\n\
     \n\
     u=<w>          uniformization with path truncation probability w (default u=1e-8)\n\
     d=<d>          discretization with step size d\n\
     s=<n>          Monte-Carlo simulation with n samples (statistical estimate)\n\
     --tolerance E  adaptively refine the engine until the reported error\n\
     \x20              budget is <= E; exit code 3 if that cannot be achieved\n\
     --json         one JSON object per formula (states, probabilities,\n\
     \x20              verdicts, error-budget breakdown)\n\
     --threads N    worker threads for the uniformization engine, the\n\
     \x20              discretization grid sweep, and the colored linear\n\
     \x20              solver (0 = auto, default 1); results are\n\
     \x20              bit-identical at any thread count\n\
     --solver M     iteration scheme for the reachability linear systems\n\
     \x20              (unbounded until, per-BSCC reachability of steady\n\
     \x20              state): gs (plain Gauss-Seidel, default) or colored\n\
     \x20              (multicolor Gauss-Seidel, honors --threads)\n\
     --no-reduction always check on the full model; by default the checker\n\
     \x20              runs on a certified lumping quotient when one exists\n\
     \x20              (exact, results unchanged)\n\
     --no-slicing   disable qualitative precomputation: until engines solve\n\
     \x20              the full state space instead of pre-assigning the\n\
     \x20              certified certain-0/1 states and solving the rest\n\
     --metrics      report per-formula run metrics (human table, or a\n\
     \x20              `metrics` object with --json); observation-only, the\n\
     \x20              results are bit-identical with or without it\n\
     --trace FILE   stream every telemetry event as one JSON line to FILE;\n\
     \x20              the final line is a run_summary event\n\
     --progress     print throttled progress lines to stderr\n\
     --profile      print a hierarchical wall-time flame table (phase,\n\
     \x20              count, total s, self s) to stderr after the batch;\n\
     \x20              --profile=FILE additionally writes the profile as\n\
     \x20              one JSON object (span tree + per-phase latency\n\
     \x20              histograms) to FILE. Observation-only: results are\n\
     \x20              bit-identical with or without it\n\
     NP             suppress the computed probabilities\n\
     \n\
     The lint subcommand statically analyzes the model, the formulas on\n\
     stdin (model-only when stdin is a terminal), and the predicted engine\n\
     cost, without running any engine. --lumping additionally reports the\n\
     per-formula lumpability analysis (R codes). --dataflow additionally\n\
     reports the qualitative dataflow view (X codes): the SCC condensation,\n\
     per-until certain-0/1 sets, and the slicing opportunities the checker\n\
     would exploit. --verbose expands aggregated diagnostics (e.g. M101\n\
     unreachable SCCs) to their flat per-state form. --deny warnings\n\
     promotes warnings to errors. Exit code 2 when error-grade diagnostics\n\
     are present.\n\
     \n\
     The serve subcommand runs the checker as a JSONL batch server on a\n\
     shared check session (models load once, Sat sub-results, lumping\n\
     certificates and Omega tables are cached across requests); it prints\n\
     a {\"listening\":\"HOST:PORT\"} line, then serves until interrupted\n\
     (or for --connections N clients). batch streams stdin requests to a\n\
     running server and prints the responses.\n\
     \n\
     The bench diff subcommand compares a BENCH_<group>.json perf snapshot\n\
     against a baseline with noise-aware thresholds: a benchmark fails the\n\
     gate when its median slows by more than --max-ratio (default 1.5) by\n\
     more than an absolute slack, or when any work counter in its metrics\n\
     drifts (hard check, no tolerance). Exit code 1 on regression.\n\
     \n\
     The devlint subcommand statically analyzes the mrmc workspace source\n\
     tree itself (default ROOT: the current directory) for determinism and\n\
     hermeticity hazards, reporting stable D codes (D000-D008): hash-order\n\
     iteration in result paths, wall-clock reads, unscoped threads,\n\
     unordered float reductions, panics in server request paths,\n\
     non-workspace dependencies, telemetry-registry drift, and lint-gate\n\
     gaps. Suppressions require an inline reason. Exit code 2 when\n\
     findings are present.\n\
     \n\
     Exit codes reflect the worst outcome across the batch: 0 all decided,\n\
     1 operational error, 2 pre-flight rejection, 3 tolerance not met,\n\
     4 unknown verdicts."
}

/// Parse a `u=`/`d=`/`s=` engine switch; `None` when `arg` is not one.
fn parse_engine_switch(arg: &str) -> Option<Result<UntilEngine, String>> {
    if let Some(w) = arg.strip_prefix("u=") {
        Some(
            w.parse()
                .map(UntilEngine::uniformization)
                .map_err(|_| format!("invalid truncation probability `{w}`")),
        )
    } else if let Some(d) = arg.strip_prefix("d=") {
        Some(
            d.parse()
                .map(UntilEngine::discretization)
                .map_err(|_| format!("invalid discretization step `{d}`")),
        )
    } else {
        arg.strip_prefix("s=").map(|n| {
            n.parse()
                .map(UntilEngine::simulation)
                .map_err(|_| format!("invalid sample count `{n}`"))
        })
    }
}

/// Strip a `%` comment and surrounding whitespace from a formula line.
fn formula_text(line: &str) -> &str {
    match line.find('%') {
        Some(i) => line[..i].trim(),
        None => line.trim(),
    }
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    if args.len() < 4 {
        return Err(usage().to_string());
    }
    let mut cli = Cli {
        tra: args[0].clone(),
        lab: args[1].clone(),
        rewr: args[2].clone(),
        rewi: args[3].clone(),
        engine: UntilEngine::default(),
        threads: 1,
        solver: SolverMethod::default(),
        tolerance: None,
        json: false,
        print_probabilities: true,
        no_reduction: false,
        no_slicing: false,
        metrics: false,
        trace: None,
        progress: false,
        profile: None,
    };
    let mut rest = args[4..].iter();
    while let Some(arg) = rest.next() {
        if arg == "NP" {
            cli.print_probabilities = false;
        } else if arg == "--json" {
            cli.json = true;
        } else if arg == "--no-reduction" {
            cli.no_reduction = true;
        } else if arg == "--no-slicing" {
            cli.no_slicing = true;
        } else if arg == "--metrics" {
            cli.metrics = true;
        } else if arg == "--progress" {
            cli.progress = true;
        } else if arg == "--profile" {
            cli.profile = Some(None);
        } else if let Some(path) = arg.strip_prefix("--profile=") {
            if path.is_empty() {
                return Err("--profile= requires a non-empty file path".to_string());
            }
            cli.profile = Some(Some(path.to_string()));
        } else if arg == "--trace" || arg.starts_with("--trace=") {
            let value = match arg.strip_prefix("--trace=") {
                Some(v) => v.to_string(),
                None => rest
                    .next()
                    .ok_or_else(|| "--trace requires a file path".to_string())?
                    .clone(),
            };
            if value.is_empty() {
                return Err("--trace requires a non-empty file path".to_string());
            }
            cli.trace = Some(value);
        } else if arg == "--threads" || arg.starts_with("--threads=") {
            let value = match arg.strip_prefix("--threads=") {
                Some(v) => v.to_string(),
                None => rest
                    .next()
                    .ok_or_else(|| "--threads requires a value".to_string())?
                    .clone(),
            };
            cli.threads = value
                .parse()
                .map_err(|_| format!("invalid thread count `{value}`"))?;
        } else if arg == "--solver" || arg.starts_with("--solver=") {
            let value = match arg.strip_prefix("--solver=") {
                Some(v) => v.to_string(),
                None => rest
                    .next()
                    .ok_or_else(|| "--solver requires a value (`gs` or `colored`)".to_string())?
                    .clone(),
            };
            cli.solver = match value.as_str() {
                "gs" => SolverMethod::GaussSeidel,
                "colored" => SolverMethod::ColoredGaussSeidel,
                other => {
                    return Err(format!(
                        "--solver only supports `gs` or `colored`, got `{other}`"
                    ))
                }
            };
        } else if arg == "--tolerance" || arg.starts_with("--tolerance=") {
            let value = match arg.strip_prefix("--tolerance=") {
                Some(v) => v.to_string(),
                None => rest
                    .next()
                    .ok_or_else(|| "--tolerance requires a value".to_string())?
                    .clone(),
            };
            let e: f64 = value
                .parse()
                .map_err(|_| format!("invalid tolerance `{value}`"))?;
            if !(e > 0.0 && e < 1.0) {
                return Err(format!("tolerance must be in (0, 1), got `{value}`"));
            }
            cli.tolerance = Some(e);
        } else if let Some(engine) = parse_engine_switch(arg) {
            cli.engine = engine?;
        } else {
            return Err(format!("unrecognized argument `{arg}`\n\n{}", usage()));
        }
    }
    Ok(cli)
}

#[derive(Debug)]
struct LintCli {
    tra: String,
    lab: String,
    rewr: String,
    rewi: String,
    engine: UntilEngine,
    json: bool,
    deny_warnings: bool,
    lumping: bool,
    dataflow: bool,
    verbose: bool,
}

fn parse_lint_args(args: &[String]) -> Result<LintCli, String> {
    if args.len() < 4 {
        return Err(usage().to_string());
    }
    let mut cli = LintCli {
        tra: args[0].clone(),
        lab: args[1].clone(),
        rewr: args[2].clone(),
        rewi: args[3].clone(),
        engine: UntilEngine::default(),
        json: false,
        deny_warnings: false,
        lumping: false,
        dataflow: false,
        verbose: false,
    };
    let mut rest = args[4..].iter();
    while let Some(arg) = rest.next() {
        if arg == "--json" {
            cli.json = true;
        } else if arg == "--lumping" {
            cli.lumping = true;
        } else if arg == "--dataflow" {
            cli.dataflow = true;
        } else if arg == "--verbose" {
            cli.verbose = true;
        } else if arg == "--deny" || arg == "--deny=warnings" {
            if arg == "--deny" {
                let value = rest
                    .next()
                    .ok_or_else(|| "--deny requires a value (only `warnings`)".to_string())?;
                if value != "warnings" {
                    return Err(format!("--deny only supports `warnings`, got `{value}`"));
                }
            }
            cli.deny_warnings = true;
        } else if let Some(engine) = parse_engine_switch(arg) {
            cli.engine = engine?;
        } else {
            return Err(format!("unrecognized argument `{arg}`\n\n{}", usage()));
        }
    }
    Ok(cli)
}

/// The `mrmc lint` subcommand: run every static-analysis pass over the
/// model, the formulas on stdin, and the predicted engine cost, then
/// print the report. Never starts a numerical engine.
fn run_lint(args: &[String]) -> Result<ExitCode, String> {
    let cli = parse_lint_args(args)?;
    let mut analyzer = Analyzer::new();
    analyzer.set_verbose(cli.verbose);
    if cli.lumping {
        analyzer.register(lumping::PASS);
    }
    if cli.dataflow {
        analyzer.register(mrmc::dataflow::CONDENSATION_PASS);
        analyzer.register(mrmc::dataflow::PASS);
    }
    let hint = CheckOptions::new().with_engine(cli.engine).engine_hint();
    let mut report = Report::new();
    match mrmc_mrm::io::load_model(&cli.tra, &cli.lab, &cli.rewr, &cli.rewi) {
        Ok(mrm) => {
            report.extend(analyzer.check_model(&mrm));
            // Formulas come from stdin like the check mode; an interactive
            // invocation lints the model only.
            if !std::io::stdin().is_terminal() {
                let stdin = std::io::stdin();
                for line in stdin.lock().lines() {
                    let line = line.map_err(|e| e.to_string())?;
                    let text = formula_text(&line);
                    if text.is_empty() {
                        continue;
                    }
                    match mrmc_csrl::parse(text) {
                        Ok(f) => report.extend(analyzer.check_formula(&mrm, &f, hint)),
                        Err(e) => report.push(Diagnostic::new(
                            "F003",
                            Severity::Error,
                            format!("formula `{text}` does not parse: {e}"),
                        )),
                    }
                }
            }
        }
        Err(e) => report.push(diagnose_load_error(&e)),
    }
    if cli.deny_warnings {
        report.deny_warnings();
    }
    if cli.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    Ok(if report.has_errors() {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

fn print_human(outcome: &CheckOutcome, print_probabilities: bool) {
    if let Some(engine) = outcome.engine() {
        println!("  engine: {engine}");
    }
    if let Some(r) = outcome.reduction() {
        println!(
            "  checked on a verified quotient: {} -> {} states",
            r.original_states, r.reduced_states
        );
    }
    if let Some(d) = outcome.dataflow() {
        println!(
            "  dataflow: {} SCCs, {} certain-0 / {} certain-1 states, {} sliced (certificate {:016x})",
            d.scc_count, d.qual_zero_states, d.qual_one_states, d.slice_states_removed,
            d.certificate_hash
        );
    }
    let states: Vec<String> = outcome
        .satisfying_states()
        .map(|s| (s + 1).to_string())
        .collect();
    if states.is_empty() {
        println!("  satisfied by: (no states)");
    } else {
        println!("  satisfied by: {}", states.join(" "));
    }
    if outcome.has_unknown() {
        let undecided: Vec<String> = outcome
            .unknown_states()
            .map(|s| (s + 1).to_string())
            .collect();
        println!(
            "  undecided (error budget straddles the bound): {}",
            undecided.join(" ")
        );
    }
    if !print_probabilities {
        return;
    }
    let Some(probs) = outcome.probabilities() else {
        return;
    };
    for (s, p) in probs.iter().enumerate() {
        let mut line = format!("  state {}: P = {:.12}", s + 1, p);
        if let Some(errs) = outcome.error_bounds() {
            line.push_str(&format!(" (error bound {:.3e})", errs[s]));
        }
        if let Some(budgets) = outcome.budgets() {
            let b = &budgets[s];
            let (name, value) = b.dominant();
            line.push_str(&format!(
                " [total error {:.3e}, dominant: {} {:.3e}]",
                b.total(),
                name,
                value
            ));
        }
        if outcome.verdict(s) == Verdict::Unknown {
            line.push_str(" -- unknown");
        }
        println!("{line}");
    }
}

/// The timing prefix of a `--json` output line: `{"elapsed_s":E,` plus,
/// when `--metrics` captured per-phase wall times, a
/// `"phase_times":{"<phase>":<seconds>,…},` object. The remainder of the
/// line is the unchanged one-shot JSON body, so consumers that key on
/// `formula` and later fields are unaffected.
fn timing_prefix(elapsed_s: f64, snapshot: Option<&RunMetrics>) -> String {
    let mut p = String::from("{\"elapsed_s\":");
    mrmc_obs::json::push_f64(&mut p, elapsed_s);
    if let Some(m) = snapshot {
        p.push_str(",\"phase_times\":{");
        for (i, (name, (_count, seconds))) in m.phases.iter().enumerate() {
            if i > 0 {
                p.push(',');
            }
            mrmc_obs::json::push_str(&mut p, name);
            p.push(':');
            mrmc_obs::json::push_f64(&mut p, *seconds);
        }
        p.push('}');
    }
    p.push(',');
    p
}

/// Read formulas from stdin and check each one on `session`, printing the
/// outcomes.
///
/// Runs under whatever recorder the caller installed; per-formula metrics
/// are scoped by draining `metrics` (when `--metrics` was given) after
/// each check. Because the whole batch shares the session, repeated (sub-)
/// formulas are served from its caches — visible as `sat_cache_hits` in
/// the metrics. Ends by emitting the `run_summary` event and flushing the
/// sinks, so a `--trace` file always terminates with that line.
fn check_formulas(
    cli: &Cli,
    session: &CheckSession,
    model: &ModelHandle,
    options: &CheckOptions,
    metrics: Option<&MetricsRecorder>,
) -> Result<RunTotals, String> {
    let stdin = std::io::stdin();
    let mut totals = RunTotals::default();
    let mut formulas = 0u64;
    let mut failures = 0u64;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let text = formula_text(&line);
        if text.is_empty() {
            continue;
        }
        formulas += 1;
        if !cli.json {
            println!("formula: {text}");
        }
        // devlint::allow(D002): reported as elapsed_s, never branched on
        let started = Instant::now();
        let result = match mrmc_csrl::parse(text) {
            Ok(f) => {
                if !cli.json {
                    // Surface Warning/Note pre-flight findings on stderr;
                    // Error-grade ones abort `check` below.
                    for d in session.preflight(model, &f, options).diagnostics() {
                        if d.severity != Severity::Error {
                            eprintln!("  {d}");
                        }
                    }
                }
                session.check(model, &f, options)
            }
            Err(e) => Err(CheckError::Parse(e)),
        };
        let elapsed_s = started.elapsed().as_secs_f64();
        // Drain the aggregator even on failure so the next formula's
        // snapshot starts from zero.
        let snapshot = metrics.map(MetricsRecorder::take);
        match result {
            Ok(outcome) => {
                if outcome.has_unknown() {
                    totals.any_unknown = true;
                }
                if cli.json {
                    println!(
                        "{}{}",
                        timing_prefix(elapsed_s, snapshot.as_ref()),
                        &json_outcome(text, &outcome, snapshot.as_ref())[1..]
                    );
                } else {
                    print_human(&outcome, cli.print_probabilities);
                    if let Some(m) = &snapshot {
                        println!("  metrics:");
                        for (label, value) in m.table_rows() {
                            println!("    {label}: {value}");
                        }
                    }
                }
            }
            Err(e) => {
                failures += 1;
                if cli.json {
                    println!(
                        "{}{}",
                        timing_prefix(elapsed_s, snapshot.as_ref()),
                        &mrmc::report::json_error(text, &e)[1..]
                    );
                } else {
                    println!("  error: {e}");
                }
                totals.record_error(&e);
            }
        }
    }
    mrmc_obs::record(|| Event::RunSummary { formulas, failures });
    mrmc_obs::flush();
    Ok(totals)
}

/// Arguments of the `serve` subcommand.
#[derive(Debug, PartialEq)]
struct ServeCli {
    listen: String,
    workers: usize,
    connections: Option<usize>,
}

fn parse_serve_args(args: &[String]) -> Result<ServeCli, String> {
    let mut cli = ServeCli {
        listen: "127.0.0.1:0".to_string(),
        workers: ServerConfig::default().workers,
        connections: None,
    };
    let mut rest = args.iter();
    while let Some(arg) = rest.next() {
        let mut value_of = |name: &str| -> Result<String, String> {
            match arg.strip_prefix(&format!("{name}=")) {
                Some(v) if !v.is_empty() => Ok(v.to_string()),
                Some(_) => Err(format!("{name} requires a value")),
                None => rest
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value")),
            }
        };
        if arg == "--listen" || arg.starts_with("--listen=") {
            cli.listen = value_of("--listen")?;
        } else if arg == "--workers" || arg.starts_with("--workers=") {
            let v = value_of("--workers")?;
            cli.workers = v
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("invalid worker count `{v}`"))?;
        } else if arg == "--connections" || arg.starts_with("--connections=") {
            let v = value_of("--connections")?;
            cli.connections = Some(
                v.parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("invalid connection count `{v}`"))?,
            );
        } else {
            return Err(format!("unrecognized argument `{arg}`\n\n{}", usage()));
        }
    }
    Ok(cli)
}

/// The `mrmc serve` subcommand: run the JSONL batch server.
fn run_serve(args: &[String]) -> Result<ExitCode, String> {
    let cli = parse_serve_args(args)?;
    let server = Server::bind(
        &cli.listen,
        ServerConfig {
            workers: cli.workers,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("cannot bind `{}`: {e}", cli.listen))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // One machine-readable line so scripts can pick up an ephemeral port.
    println!("{{\"listening\":\"{addr}\"}}");
    std::io::stdout().flush().ok();
    server
        .run(cli.connections)
        .map_err(|e| format!("server failed: {e}"))?;
    Ok(ExitCode::SUCCESS)
}

/// The `mrmc batch` subcommand: stream stdin JSONL requests to a running
/// server and print the response lines.
fn run_batch(args: &[String]) -> Result<ExitCode, String> {
    let [addr] = args else {
        return Err(format!(
            "batch takes exactly one server address\n\n{}",
            usage()
        ));
    };
    let stream =
        connect_with_retry(addr, 50).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let read_half = stream.try_clone().map_err(|e| e.to_string())?;
    // Feed stdin to the server on a scoped thread, then close the write
    // half so the server drains the batch and emits its run_summary. The
    // scope joins the feeder structurally before we inspect the summary.
    let mut summary_failures: Option<u64> = None;
    let feeder_result = std::thread::scope(|scope| {
        let feeder = scope.spawn(move || -> std::io::Result<()> {
            let mut writer = stream;
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                writer.write_all(line?.as_bytes())?;
                writer.write_all(b"\n")?;
            }
            writer.flush()?;
            writer.shutdown(std::net::Shutdown::Write)
        });
        let reader = std::io::BufReader::new(read_half);
        for line in reader.lines() {
            let line = line.map_err(|e| e.to_string())?;
            println!("{line}");
            if let Some(rest) = line.strip_prefix("{\"kind\":\"run_summary\"") {
                // The summary may carry fields after `failures` (e.g.
                // `elapsed_s`), so parse just the leading digit run.
                summary_failures = rest
                    .split("\"failures\":")
                    .nth(1)
                    .and_then(|v| v.split(|c: char| !c.is_ascii_digit()).next())
                    .and_then(|v| v.parse().ok());
            }
        }
        feeder
            .join()
            .map_err(|_| "stdin feeder panicked".to_string())
    });
    feeder_result?.map_err(|e| format!("sending requests failed: {e}"))?;
    match summary_failures {
        Some(0) => Ok(ExitCode::SUCCESS),
        Some(_) => {
            eprintln!("one or more requests failed");
            Ok(ExitCode::FAILURE)
        }
        None => Err("connection closed without a run_summary".to_string()),
    }
}

/// The `mrmc bench diff` subcommand: the perf-regression sentinel.
/// Compares a `BENCH_<group>.json` snapshot against its committed
/// baseline with noise-aware thresholds and exits nonzero when a
/// benchmark regressed or its work counters drifted.
fn run_bench(args: &[String]) -> Result<ExitCode, String> {
    let Some(("diff", rest)) = args
        .split_first()
        .map(|(first, rest)| (first.as_str(), rest))
    else {
        return Err(format!("bench only supports `diff`\n\n{}", usage()));
    };
    let mut json = false;
    let mut options = mrmc_bench::diff::DiffOptions::default();
    let mut files: Vec<&str> = Vec::new();
    let mut rest = rest.iter();
    while let Some(arg) = rest.next() {
        if arg == "--json" {
            json = true;
        } else if arg == "--max-ratio" || arg.starts_with("--max-ratio=") {
            let v = match arg.strip_prefix("--max-ratio=") {
                Some(v) => v.to_string(),
                None => rest
                    .next()
                    .ok_or_else(|| "--max-ratio requires a value".to_string())?
                    .clone(),
            };
            options.max_ratio = v
                .parse()
                .ok()
                .filter(|&r: &f64| r >= 1.0)
                .ok_or_else(|| format!("invalid --max-ratio `{v}` (must be >= 1)"))?;
        } else if arg.starts_with('-') {
            return Err(format!("unrecognized argument `{arg}`\n\n{}", usage()));
        } else {
            files.push(arg);
        }
    }
    let [snapshot, baseline] = files[..] else {
        return Err(format!(
            "bench diff takes exactly two files: <snapshot> <baseline>\n\n{}",
            usage()
        ));
    };
    let report = mrmc_bench::diff::diff_files(Path::new(snapshot), Path::new(baseline), options)?;
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    Ok(if report.has_regressions() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// The `mrmc devlint` subcommand: run the workspace determinism &
/// hermeticity analyzer (same engine as the standalone `mrmc-devlint`
/// binary).
fn run_devlint(args: &[String]) -> Result<ExitCode, String> {
    let mut json = false;
    let mut root: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if other.starts_with('-') => {
                return Err(format!("unrecognized argument `{other}`\n\n{}", usage()));
            }
            other => {
                if root.replace(other.to_string()).is_some() {
                    return Err(format!("devlint takes at most one ROOT\n\n{}", usage()));
                }
            }
        }
    }
    let root = root.unwrap_or_else(|| ".".to_string());
    let report = mrmc_devlint::lint_workspace(Path::new(&root))
        .map_err(|e| format!("devlint failed reading `{root}`: {e}"))?;
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    Ok(if report.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return Ok(ExitCode::SUCCESS);
    }
    match args.first().map(String::as_str) {
        Some("lint") => return run_lint(&args[1..]),
        Some("serve") => return run_serve(&args[1..]),
        Some("batch") => return run_batch(&args[1..]),
        Some("bench") => return run_bench(&args[1..]),
        Some("devlint") => return run_devlint(&args[1..]),
        _ => {}
    }
    // `check` is an optional explicit subcommand for the default mode.
    let args = if args.first().map(String::as_str) == Some("check") {
        &args[1..]
    } else {
        &args[..]
    };
    let cli = parse_args(args)?;

    // The whole batch runs on one session: formulas read from stdin share
    // memoized Sat sub-results, lumping certificates, and Omega tables.
    let session = CheckSession::new();
    let model = session
        .load_files(&cli.tra, &cli.lab, &cli.rewr, &cli.rewi)
        .map_err(|e| e.to_string())?;
    if !cli.json {
        let mrm = model.mrm();
        println!(
            "loaded model: {} states, {} transitions, {} impulse rewards",
            mrm.num_states(),
            mrm.ctmc().rates().nnz(),
            mrm.impulse_rewards().len()
        );
    }

    let mut options = CheckOptions::new()
        .with_engine(cli.engine)
        .with_threads(cli.threads)
        .with_solver_method(cli.solver);
    if let Some(e) = cli.tolerance {
        options = options.with_tolerance(e);
    }
    if cli.no_reduction {
        options = options.with_reduction(Reduction::Off);
    }
    if cli.no_slicing {
        options = options.without_slicing();
    }

    // Compose the requested telemetry sinks. With none requested, the
    // checking loop runs with no recorder installed at all — the engines'
    // emission sites stay on the free no-op path.
    let metrics = cli.metrics.then(|| Arc::new(MetricsRecorder::new()));
    let mut sinks: Vec<Arc<dyn Recorder>> = Vec::new();
    if let Some(m) = &metrics {
        sinks.push(m.clone());
    }
    if let Some(path) = &cli.trace {
        let trace = JsonlTraceRecorder::create(Path::new(path))
            .map_err(|e| format!("cannot create trace file `{path}`: {e}"))?;
        sinks.push(Arc::new(trace));
    }
    if cli.progress {
        sinks.push(Arc::new(ProgressRecorder::new()));
    }
    let profile = cli
        .profile
        .as_ref()
        .map(|_| Arc::new(ProfileRecorder::new()));
    if let Some(p) = &profile {
        sinks.push(p.clone());
    }
    let totals = if sinks.is_empty() {
        check_formulas(&cli, &session, &model, &options, None)?
    } else {
        let recorder: Arc<dyn Recorder> = Arc::new(MultiRecorder::new(sinks));
        mrmc_obs::with_recorder(recorder, || {
            check_formulas(&cli, &session, &model, &options, metrics.as_deref())
        })?
    };
    if let (Some(recorder), Some(dest)) = (&profile, &cli.profile) {
        let report = recorder.report();
        // The flame table goes to stderr so --json stdout stays a clean
        // JSONL stream.
        eprintln!("wall-time profile:");
        eprint!("{}", report.table());
        if let Some(path) = dest {
            std::fs::write(path, report.to_json())
                .map_err(|e| format!("cannot write profile file `{path}`: {e}"))?;
        }
    }
    match totals.exit_code() {
        0 => Ok(ExitCode::SUCCESS),
        1 => Err("one or more formulas failed".to_string()),
        2 => {
            eprintln!("pre-flight lint rejected one or more formulas");
            Ok(ExitCode::from(2))
        }
        3 => {
            eprintln!("tolerance not met for one or more formulas");
            Ok(ExitCode::from(3))
        }
        code => {
            eprintln!("one or more verdicts are unknown (error budget straddles the bound)");
            Ok(ExitCode::from(code))
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn minimal_invocation_defaults_to_uniformization() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi"])).unwrap();
        assert_eq!(cli.tra, "a.tra");
        assert_eq!(cli.rewi, "a.rewi");
        assert!(cli.print_probabilities);
        assert_eq!(cli.tolerance, None);
        assert!(!cli.json);
        match cli.engine {
            UntilEngine::Uniformization(u) => assert_eq!(u.truncation, 1e-8),
            _ => panic!("expected uniformization"),
        }
    }

    #[test]
    fn engine_switches_parse() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi", "u=1e-11"])).unwrap();
        match cli.engine {
            UntilEngine::Uniformization(u) => assert_eq!(u.truncation, 1e-11),
            _ => panic!("expected uniformization"),
        }
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi", "d=0.25"])).unwrap();
        match cli.engine {
            UntilEngine::Discretization(d) => assert_eq!(d.step, 0.25),
            _ => panic!("expected discretization"),
        }
    }

    #[test]
    fn simulation_switch_parses() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi", "s=5000"])).unwrap();
        match cli.engine {
            UntilEngine::Simulation(s) => assert_eq!(s.samples, 5000),
            _ => panic!("expected simulation"),
        }
        assert!(parse_args(&args(&["a", "b", "c", "d", "s=-3"])).is_err());
    }

    #[test]
    fn tolerance_flag_parses_in_both_spellings() {
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--tolerance",
            "1e-6",
        ]))
        .unwrap();
        assert_eq!(cli.tolerance, Some(1e-6));
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--tolerance=0.001",
        ]))
        .unwrap();
        assert_eq!(cli.tolerance, Some(1e-3));
    }

    #[test]
    fn bad_tolerance_values_are_rejected() {
        assert!(parse_args(&args(&["a", "b", "c", "d", "--tolerance"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "--tolerance", "x"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "--tolerance=0"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "--tolerance=1.5"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "--tolerance=-1e-6"])).is_err());
    }

    #[test]
    fn json_flag_parses() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi", "--json"])).unwrap();
        assert!(cli.json);
    }

    #[test]
    fn threads_flag_parses_in_both_spellings() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi"])).unwrap();
        assert_eq!(cli.threads, 1);
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(cli.threads, 4);
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--threads=0",
        ]))
        .unwrap();
        assert_eq!(cli.threads, 0);
        // Composes with an engine switch and NP.
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "u=1e-10",
            "--threads=2",
            "NP",
        ]))
        .unwrap();
        assert_eq!(cli.threads, 2);
        assert!(!cli.print_probabilities);
    }

    #[test]
    fn solver_flag_parses_in_both_spellings() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi"])).unwrap();
        assert_eq!(cli.solver, SolverMethod::GaussSeidel);
        let cli = parse_args(&args(&[
            "a.tra", "a.lab", "a.rewr", "a.rewi", "--solver", "colored",
        ]))
        .unwrap();
        assert_eq!(cli.solver, SolverMethod::ColoredGaussSeidel);
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--solver=gs",
        ]))
        .unwrap();
        assert_eq!(cli.solver, SolverMethod::GaussSeidel);
        // Composes with --threads.
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--solver=colored",
            "--threads=4",
        ]))
        .unwrap();
        assert_eq!(cli.solver, SolverMethod::ColoredGaussSeidel);
        assert_eq!(cli.threads, 4);
    }

    #[test]
    fn bad_solver_values_are_rejected() {
        assert!(parse_args(&args(&["a", "b", "c", "d", "--solver"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "--solver", "jacobi"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "--solver="])).is_err());
        // --solver belongs to check mode, not lint.
        assert!(parse_lint_args(&args(&["a", "b", "c", "d", "--solver", "gs"])).is_err());
    }

    #[test]
    fn bad_threads_values_are_rejected() {
        assert!(parse_args(&args(&["a", "b", "c", "d", "--threads"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "--threads", "x"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "--threads=-2"])).is_err());
    }

    #[test]
    fn np_flag_suppresses_probabilities() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi", "NP"])).unwrap();
        assert!(!cli.print_probabilities);
    }

    #[test]
    fn no_reduction_flag_parses() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi"])).unwrap();
        assert!(!cli.no_reduction);
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--no-reduction",
        ]))
        .unwrap();
        assert!(cli.no_reduction);
        // Composes with the other switches.
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "u=1e-10",
            "--no-reduction",
            "--json",
            "NP",
        ]))
        .unwrap();
        assert!(cli.no_reduction);
        assert!(cli.json);
        assert!(!cli.print_probabilities);
    }

    #[test]
    fn no_slicing_flag_parses() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi"])).unwrap();
        assert!(!cli.no_slicing);
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--no-slicing",
        ]))
        .unwrap();
        assert!(cli.no_slicing);
        // Composes with the other switches.
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "u=1e-10",
            "--no-reduction",
            "--no-slicing",
            "--json",
        ]))
        .unwrap();
        assert!(cli.no_slicing);
        assert!(cli.no_reduction);
        // --no-slicing belongs to check mode, not lint.
        assert!(parse_lint_args(&args(&["a", "b", "c", "d", "--no-slicing"])).is_err());
    }

    #[test]
    fn dataflow_and_verbose_lint_flags_parse() {
        let cli = parse_lint_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi"])).unwrap();
        assert!(!cli.dataflow);
        assert!(!cli.verbose);
        let cli = parse_lint_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--dataflow",
            "--verbose",
            "--json",
        ]))
        .unwrap();
        assert!(cli.dataflow);
        assert!(cli.verbose);
        assert!(cli.json);
        // Both belong to the lint subcommand only.
        assert!(parse_args(&args(&["a", "b", "c", "d", "--dataflow"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "--verbose"])).is_err());
    }

    #[test]
    fn telemetry_flags_parse() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi"])).unwrap();
        assert!(!cli.metrics);
        assert!(!cli.progress);
        assert_eq!(cli.trace, None);
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--metrics",
            "--progress",
            "--trace",
            "run.jsonl",
        ]))
        .unwrap();
        assert!(cli.metrics);
        assert!(cli.progress);
        assert_eq!(cli.trace.as_deref(), Some("run.jsonl"));
        // The `=` spelling and composition with the other switches.
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "d=0.5",
            "--trace=/tmp/t.jsonl",
            "--json",
            "NP",
        ]))
        .unwrap();
        assert_eq!(cli.trace.as_deref(), Some("/tmp/t.jsonl"));
        assert!(cli.json);
    }

    #[test]
    fn profile_flag_parses_in_both_spellings() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi"])).unwrap();
        assert_eq!(cli.profile, None);
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi", "--profile"])).unwrap();
        assert_eq!(cli.profile, Some(None));
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--profile=prof.json",
            "--json",
        ]))
        .unwrap();
        assert_eq!(cli.profile, Some(Some("prof.json".to_string())));
        assert!(cli.json);
        assert!(parse_args(&args(&["a", "b", "c", "d", "--profile="])).is_err());
        // --profile belongs to check mode, not lint.
        assert!(parse_lint_args(&args(&["a", "b", "c", "d", "--profile"])).is_err());
    }

    #[test]
    fn timing_prefix_pins_the_elapsed_field_order() {
        // Without metrics: exactly `{"elapsed_s":E,`.
        let p = timing_prefix(0.5, None);
        assert_eq!(p, "{\"elapsed_s\":5e-1,");
        // With metrics: phase_times carries the per-phase wall seconds.
        let mut m = RunMetrics::default();
        m.phases.insert("engine", (2, 0.25));
        m.phases.insert("solver", (1, 0.125));
        let p = timing_prefix(1.0, Some(&m));
        assert_eq!(
            p,
            "{\"elapsed_s\":1e0,\"phase_times\":{\"engine\":2.5e-1,\"solver\":1.25e-1},"
        );
    }

    #[test]
    fn bad_trace_values_are_rejected() {
        assert!(parse_args(&args(&["a", "b", "c", "d", "--trace"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "--trace="])).is_err());
        // Telemetry flags belong to check mode, not lint.
        assert!(parse_lint_args(&args(&["a", "b", "c", "d", "--metrics"])).is_err());
        assert!(parse_lint_args(&args(&["a", "b", "c", "d", "--progress"])).is_err());
    }

    #[test]
    fn missing_files_show_usage() {
        let e = parse_args(&args(&["a.tra"])).unwrap_err();
        assert!(e.contains("usage:"));
    }

    #[test]
    fn bad_switches_are_rejected() {
        assert!(parse_args(&args(&["a", "b", "c", "d", "u=potato"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "d=x"])).is_err());
        let e = parse_args(&args(&["a", "b", "c", "d", "--frob"])).unwrap_err();
        assert!(e.contains("--frob"));
    }

    #[test]
    fn lint_args_parse() {
        let cli = parse_lint_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi"])).unwrap();
        assert!(!cli.json);
        assert!(!cli.deny_warnings);
        assert!(!cli.lumping);
        let cli = parse_lint_args(&args(&[
            "a.tra", "a.lab", "a.rewr", "a.rewi", "d=0.1", "--json", "--deny", "warnings",
        ]))
        .unwrap();
        assert!(cli.json);
        assert!(cli.deny_warnings);
        match cli.engine {
            UntilEngine::Discretization(d) => assert_eq!(d.step, 0.1),
            _ => panic!("expected discretization"),
        }
        let cli = parse_lint_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--deny=warnings",
        ]))
        .unwrap();
        assert!(cli.deny_warnings);
    }

    #[test]
    fn lumping_flag_parses() {
        let cli = parse_lint_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--lumping",
            "--json",
        ]))
        .unwrap();
        assert!(cli.lumping);
        assert!(cli.json);
    }

    #[test]
    fn bad_lint_args_are_rejected() {
        assert!(parse_lint_args(&args(&["a.tra"])).is_err());
        assert!(parse_lint_args(&args(&["a", "b", "c", "d", "--deny"])).is_err());
        assert!(parse_lint_args(&args(&["a", "b", "c", "d", "--deny", "notes"])).is_err());
        assert!(parse_lint_args(&args(&["a", "b", "c", "d", "NP"])).is_err());
        assert!(parse_lint_args(&args(&["a", "b", "c", "d", "--tolerance", "1e-6"])).is_err());
        // --lumping belongs to the lint subcommand only.
        assert!(parse_args(&args(&["a", "b", "c", "d", "--lumping"])).is_err());
        assert!(parse_lint_args(&args(&["a", "b", "c", "d", "--no-reduction"])).is_err());
    }

    #[test]
    fn formula_text_strips_comments() {
        assert_eq!(formula_text("  S(> 0.5) (up) % note"), "S(> 0.5) (up)");
        assert_eq!(formula_text("% all comment"), "");
        assert_eq!(formula_text("   "), "");
    }

    #[test]
    fn serve_args_parse() {
        let cli = parse_serve_args(&args(&[])).unwrap();
        assert_eq!(cli.listen, "127.0.0.1:0");
        assert_eq!(cli.connections, None);
        let cli = parse_serve_args(&args(&[
            "--listen",
            "127.0.0.1:7421",
            "--workers=2",
            "--connections",
            "3",
        ]))
        .unwrap();
        assert_eq!(cli.listen, "127.0.0.1:7421");
        assert_eq!(cli.workers, 2);
        assert_eq!(cli.connections, Some(3));
    }

    #[test]
    fn bad_serve_args_are_rejected() {
        assert!(parse_serve_args(&args(&["--workers"])).is_err());
        assert!(parse_serve_args(&args(&["--workers", "0"])).is_err());
        assert!(parse_serve_args(&args(&["--connections=x"])).is_err());
        assert!(parse_serve_args(&args(&["--listen="])).is_err());
        assert!(parse_serve_args(&args(&["--frob"])).is_err());
    }
}
