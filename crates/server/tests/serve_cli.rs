//! End-to-end tests of the `mrmc serve` / `mrmc batch` subcommands as
//! real processes over a loopback socket — the deployment shape the CI
//! serve-smoke job exercises.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mrmc-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn write_tmr_like_model(dir: &std::path::Path) -> [std::path::PathBuf; 4] {
    let tra = dir.join("m.tra");
    std::fs::write(
        &tra,
        "STATES 3\nTRANSITIONS 4\n1 2 0.1\n2 3 0.2\n2 1 1.0\n3 1 0.5\n",
    )
    .unwrap();
    let lab = dir.join("m.lab");
    std::fs::write(
        &lab,
        "#DECLARATION\nup degraded failed\n#END\n1 up\n2 degraded\n3 failed\n",
    )
    .unwrap();
    let rewr = dir.join("m.rewr");
    std::fs::write(&rewr, "1 1.0\n2 3.0\n3 0.0\n").unwrap();
    let rewi = dir.join("m.rewi");
    std::fs::write(&rewi, "TRANSITIONS 2\n2 1 5.0\n3 1 20.0\n").unwrap();
    [tra, lab, rewr, rewi]
}

/// Start `mrmc serve` on an ephemeral port and return the child plus the
/// address announced on its first stdout line.
fn spawn_server(connections: usize, workers: usize) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mrmc"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
            "--connections",
            &connections.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().unwrap())
        .read_line(&mut line)
        .expect("listening line");
    let addr = line
        .trim()
        .strip_prefix("{\"listening\":\"")
        .and_then(|l| l.strip_suffix("\"}"))
        .unwrap_or_else(|| panic!("unexpected announcement: {line}"))
        .to_string();
    (child, addr)
}

fn run_batch(addr: &str, stdin_text: &str) -> (Vec<String>, Option<i32>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mrmc"))
        .args(["batch", addr])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("batch starts");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin_text.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let lines = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_string)
        .collect();
    (lines, out.status.code())
}

#[test]
fn serve_then_batch_roundtrip_with_cache_hits() {
    let dir = temp_dir("roundtrip");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    // One worker serializes the two identical checks, so the second is
    // guaranteed to be served from the session's sat cache.
    let (mut server, addr) = spawn_server(2, 1);

    // Load once, check the same formula twice, and let EOF seal the batch
    // with a run_summary.
    let requests = format!(
        "{{\"load\":{{\"model\":\"m\",\"tra\":\"{}\",\"lab\":\"{}\",\"rewr\":\"{}\",\"rewi\":\"{}\"}}}}\n\
         {{\"check\":{{\"model\":\"m\",\"formula\":\"S(> 0.5) (up)\"}},\"id\":1}}\n\
         {{\"check\":{{\"model\":\"m\",\"formula\":\"S(> 0.5) (up)\"}},\"id\":2}}\n",
        tra.display(),
        lab.display(),
        rewr.display(),
        rewi.display()
    );
    let (lines, code) = run_batch(&addr, &requests);
    assert_eq!(code, Some(0), "batch failed: {lines:#?}");
    assert!(
        lines[0].starts_with("{\"loaded\":\"m\",\"states\":3,\"transitions\":4,"),
        "{lines:#?}"
    );
    assert!(
        lines.last().is_some_and(|l| l
            .starts_with("{\"kind\":\"run_summary\",\"formulas\":2,\"failures\":0,\"elapsed_s\":")),
        "{lines:#?}"
    );
    // Both checks answered, byte-identical apart from the correlation
    // prefix (id and per-request elapsed_s).
    let answer = |id: &str| {
        let line = lines
            .iter()
            .find(|l| l.starts_with(&format!("{{\"id\":{id},")))
            .unwrap_or_else(|| panic!("no answer for id {id}: {lines:#?}"));
        let idx = line
            .find("\"formula\":")
            .unwrap_or_else(|| panic!("unexpected framing: {line}"));
        line[idx..].to_string()
    };
    assert_eq!(answer("1"), answer("2"));
    assert!(answer("1").contains("\"formula\":\"S(> 0.5) (up)\""));

    // Second connection, after the first batch fully drained: the session
    // counters must show the repeated formula hitting the cache. (A probe
    // inside the first batch would race the check jobs — stats requests
    // are answered in line order, checks in completion order.)
    let (stats_lines, stats_code) = run_batch(&addr, "{\"stats\":true}\n");
    assert_eq!(stats_code, Some(0), "{stats_lines:#?}");
    let stats = stats_lines
        .iter()
        .find(|l| l.starts_with("{\"stats\":"))
        .expect("stats response");
    let hits: u64 = stats
        .split("\"sat_cache_hits\":")
        .nth(1)
        .and_then(|v| v.split(',').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no hit counter in {stats}"));
    assert!(hits > 0, "repeated formula did not hit the cache: {stats}");

    let status = server
        .wait()
        .expect("server exits after its last connection");
    assert!(status.success(), "serve exited nonzero");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_reports_failures_in_exit_code() {
    let dir = temp_dir("failures");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let (mut server, addr) = spawn_server(1, 2);

    let requests = format!(
        "{{\"load\":{{\"model\":\"m\",\"tra\":\"{}\",\"lab\":\"{}\",\"rewr\":\"{}\",\"rewi\":\"{}\"}}}}\n\
         {{\"check\":{{\"model\":\"m\",\"formula\":\"S(> 0.5) (up)\"}},\"id\":1}}\n\
         {{\"check\":{{\"model\":\"m\",\"formula\":\"this is not CSRL\"}},\"id\":2}}\n\
         {{\"check\":{{\"model\":\"absent\",\"formula\":\"up\"}},\"id\":3}}\n",
        tra.display(),
        lab.display(),
        rewr.display(),
        rewi.display()
    );
    let (lines, code) = run_batch(&addr, &requests);
    // The healthy check still answers; the two failures are reported in
    // the summary and surface as the batch's nonzero exit.
    assert_eq!(code, Some(1), "{lines:#?}");
    assert!(
        lines.iter().any(|l| l.starts_with("{\"id\":1,")),
        "{lines:#?}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("{\"id\":2,") && l.contains("\"error\"")),
        "{lines:#?}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains("no model loaded under the ref `absent`")),
        "{lines:#?}"
    );
    assert!(
        lines.last().is_some_and(|l| l
            .starts_with("{\"kind\":\"run_summary\",\"formulas\":2,\"failures\":2,\"elapsed_s\":")),
        "{lines:#?}"
    );
    assert!(server.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}
