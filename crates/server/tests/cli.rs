//! End-to-end tests of the `mrmc` binary: write model files, pipe formulas
//! through stdin, and check the printed verdicts — the workflow of the
//! thesis' usage manual.

use std::io::Write;
use std::process::{Command, Stdio};

fn write_tmr_like_model(dir: &std::path::Path) -> [std::path::PathBuf; 4] {
    // A 3-state repairable system: up(1) -> degraded(2) -> failed(3),
    // repairs back up; rewards on degraded operation, impulse on repair.
    let tra = dir.join("m.tra");
    std::fs::write(
        &tra,
        "STATES 3\nTRANSITIONS 4\n1 2 0.1\n2 3 0.2\n2 1 1.0\n3 1 0.5\n",
    )
    .unwrap();
    let lab = dir.join("m.lab");
    std::fs::write(
        &lab,
        "#DECLARATION\nup degraded failed\n#END\n1 up\n2 degraded\n3 failed\n",
    )
    .unwrap();
    let rewr = dir.join("m.rewr");
    std::fs::write(&rewr, "1 1.0\n2 3.0\n3 0.0\n").unwrap();
    let rewi = dir.join("m.rewi");
    std::fs::write(&rewi, "TRANSITIONS 2\n2 1 5.0\n3 1 20.0\n").unwrap();
    [tra, lab, rewr, rewi]
}

fn run_mrmc_code(args: &[&str], stdin_text: &str) -> (String, String, Option<i32>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mrmc"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin_text.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn run_mrmc(args: &[&str], stdin_text: &str) -> (String, String, bool) {
    let (stdout, stderr, code) = run_mrmc_code(args, stdin_text);
    (stdout, stderr, code == Some(0))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("mrmc-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn checks_formulas_from_stdin() {
    let dir = temp_dir("basic");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let (stdout, stderr, ok) = run_mrmc(
        &[
            tra.to_str().unwrap(),
            lab.to_str().unwrap(),
            rewr.to_str().unwrap(),
            rewi.to_str().unwrap(),
        ],
        "up || degraded\nS(> 0.5) (up)\nP(> 0.99) [TT U failed]\n",
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("loaded model: 3 states, 4 transitions, 2 impulse rewards"));
    // Boolean formula satisfied by states 1 and 2 (1-indexed).
    assert!(stdout.contains("satisfied by: 1 2"), "{stdout}");
    // The chain is irreducible and mostly up.
    assert!(stdout.contains("formula: S(> 0.5) (up)"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reward_bounded_until_with_both_engines() {
    let dir = temp_dir("engines");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let paths: Vec<&str> = vec![
        tra.to_str().unwrap(),
        lab.to_str().unwrap(),
        rewr.to_str().unwrap(),
        rewi.to_str().unwrap(),
    ];
    let formula = "P(> 0.001) [up U[0,10][0,50] degraded]\n";

    let (uni_out, _, ok) = run_mrmc(
        &[paths[0], paths[1], paths[2], paths[3], "u=1e-10"],
        formula,
    );
    assert!(ok);
    assert!(uni_out.contains("error bound"), "{uni_out}");

    let (disc_out, _, ok) = run_mrmc(&[paths[0], paths[1], paths[2], paths[3], "d=0.01"], formula);
    assert!(ok);

    // Extract the state-1 probability from both outputs and compare.
    let grab = |text: &str| -> f64 {
        text.lines()
            .find(|l| l.trim_start().starts_with("state 1: P = "))
            .and_then(|l| l.split("P = ").nth(1))
            .and_then(|v| v.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(f64::NAN)
    };
    let (pu, pd) = (grab(&uni_out), grab(&disc_out));
    assert!(
        (pu - pd).abs() < 5e-3,
        "uniformization {pu} vs discretization {pd}\n{uni_out}\n{disc_out}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn np_flag_hides_probabilities() {
    let dir = temp_dir("np");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let (stdout, _, ok) = run_mrmc(
        &[
            tra.to_str().unwrap(),
            lab.to_str().unwrap(),
            rewr.to_str().unwrap(),
            rewi.to_str().unwrap(),
            "NP",
        ],
        "S(> 0.5) (up)\n",
    );
    assert!(ok);
    assert!(!stdout.contains("state 1: P ="), "{stdout}");
    assert!(stdout.contains("satisfied by"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_formula_fails_with_message() {
    let dir = temp_dir("bad");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let (stdout, stderr, ok) = run_mrmc(
        &[
            tra.to_str().unwrap(),
            lab.to_str().unwrap(),
            rewr.to_str().unwrap(),
            rewi.to_str().unwrap(),
        ],
        "P(>= 2) [TT U failed]\nno_such_ap\n",
    );
    assert!(!ok);
    assert!(stdout.contains("error:"), "{stdout}");
    assert!(stdout.contains("no_such_ap"), "{stdout}");
    assert!(stderr.contains("one or more formulas failed"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_files_fail_cleanly() {
    let (_, stderr, ok) = run_mrmc(
        &[
            "/nonexistent/a.tra",
            "/nonexistent/a.lab",
            "/nonexistent/a.rewr",
            "/nonexistent/a.rewi",
        ],
        "",
    );
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = run_mrmc(&["--help"], "");
    assert!(ok);
    assert!(stdout.contains("usage: mrmc"));
    assert!(stdout.contains("u=<w>"));
    assert!(stdout.contains("--tolerance"));
    assert!(stdout.contains("--json"));
}

#[test]
fn tolerance_flag_drives_the_adaptive_engine() {
    let dir = temp_dir("tolerance");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let (stdout, stderr, code) = run_mrmc_code(
        &[
            tra.to_str().unwrap(),
            lab.to_str().unwrap(),
            rewr.to_str().unwrap(),
            rewi.to_str().unwrap(),
            "--tolerance",
            "1e-6",
        ],
        "P(> 0.001) [up U[0,10][0,50] degraded]\n",
    );
    assert_eq!(code, Some(0), "stderr: {stderr}\nstdout: {stdout}");
    // The achieved budget is printed and respects the tolerance.
    assert!(stdout.contains("total error"), "{stdout}");
    let total: f64 = stdout
        .lines()
        .find(|l| l.contains("state 1:"))
        .and_then(|l| l.split("total error ").nth(1))
        .and_then(|v| v.split(',').next())
        .and_then(|v| v.trim().parse().ok())
        .expect("budget total printed");
    assert!(total <= 1e-6, "achieved {total} > 1e-6\n{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unreachable_tolerance_exits_with_code_3() {
    // 1000 base samples can never certify 1e-6 (Hoeffding sizing exceeds
    // the simulation work cap): the run must fail with the dedicated exit
    // code, distinct from general errors (1).
    let dir = temp_dir("tolfail");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let (stdout, stderr, code) = run_mrmc_code(
        &[
            tra.to_str().unwrap(),
            lab.to_str().unwrap(),
            rewr.to_str().unwrap(),
            rewi.to_str().unwrap(),
            "s=1000",
            "--tolerance",
            "1e-6",
        ],
        "P(> 0.001) [up U[0,10][0,50] degraded]\n",
    );
    assert_eq!(code, Some(3), "stderr: {stderr}\nstdout: {stdout}");
    assert!(stdout.contains("tolerance not met"), "{stdout}");
    assert!(stderr.contains("tolerance not met"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_output_carries_budget_fields() {
    let dir = temp_dir("json");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let (stdout, stderr, code) = run_mrmc_code(
        &[
            tra.to_str().unwrap(),
            lab.to_str().unwrap(),
            rewr.to_str().unwrap(),
            rewi.to_str().unwrap(),
            "--json",
            "--tolerance",
            "1e-6",
        ],
        "P(> 0.001) [up U[0,10][0,50] degraded]\n",
    );
    assert_eq!(code, Some(0), "stderr: {stderr}\nstdout: {stdout}");
    // JSON mode suppresses the human banner; one object per formula.
    assert!(!stdout.contains("loaded model"), "{stdout}");
    let line = stdout.lines().next().expect("one JSON line");
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    for needle in [
        "\"formula\":\"P(> 0.001) [up U[0,10][0,50] degraded]\"",
        "\"satisfied\":[",
        "\"unknown\":[",
        "\"states\":[",
        "\"probability\":",
        "\"verdict\":\"",
        "\"budget\":{",
        "\"path_truncation\":",
        "\"poisson_tail\":",
        "\"float_accumulation\":",
        "\"discretization\":",
        "\"statistical\":",
        "\"propagation\":",
        "\"total\":",
        "\"dominant\":\"",
    ] {
        assert!(line.contains(needle), "missing {needle} in {line}");
    }

    // A missed tolerance in JSON mode is a structured error object.
    let (stdout, _, code) = run_mrmc_code(
        &[
            tra.to_str().unwrap(),
            lab.to_str().unwrap(),
            rewr.to_str().unwrap(),
            rewi.to_str().unwrap(),
            "s=1000",
            "--json",
            "--tolerance",
            "1e-6",
        ],
        "P(> 0.001) [up U[0,10][0,50] degraded]\n",
    );
    assert_eq!(code, Some(3));
    assert!(
        stdout.contains("\"error_kind\":\"tolerance_not_met\""),
        "{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The timing fields lead every `--json` line in a pinned order:
/// `{"elapsed_s":E,` bare, or `{"elapsed_s":E,"phase_times":{…},` under
/// `--metrics` — followed by the unchanged one-shot body starting at
/// `"formula"`. Scripts may rely on this prefix byte-for-byte.
#[test]
fn json_output_leads_with_the_pinned_timing_prefix() {
    let dir = temp_dir("elapsed");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let (stdout, stderr, code) = run_mrmc_code(
        &[
            tra.to_str().unwrap(),
            lab.to_str().unwrap(),
            rewr.to_str().unwrap(),
            rewi.to_str().unwrap(),
            "--json",
        ],
        "S(> 0.5) (up)\n",
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let line = stdout.lines().next().expect("one JSON line");
    assert!(line.starts_with("{\"elapsed_s\":"), "{line}");
    let elapsed: f64 = line["{\"elapsed_s\":".len()..]
        .split(',')
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("elapsed_s is not a number: {line}"));
    assert!(elapsed >= 0.0 && elapsed.is_finite(), "{line}");
    // The body after the prefix is the unchanged one-shot object.
    assert!(line.contains(",\"formula\":\"S(> 0.5) (up)\","), "{line}");

    // Under --metrics the prefix gains phase_times, before `formula`.
    let (stdout, _, code) = run_mrmc_code(
        &[
            tra.to_str().unwrap(),
            lab.to_str().unwrap(),
            rewr.to_str().unwrap(),
            rewi.to_str().unwrap(),
            "--json",
            "--metrics",
        ],
        "S(> 0.5) (up)\n",
    );
    assert_eq!(code, Some(0));
    let line = stdout.lines().next().expect("one JSON line");
    assert!(line.starts_with("{\"elapsed_s\":"), "{line}");
    let phase_idx = line
        .find(",\"phase_times\":{")
        .expect("phase_times present");
    let formula_idx = line.find(",\"formula\":").expect("formula present");
    assert!(phase_idx < formula_idx, "{line}");
    assert!(line.contains("\"phase_times\":{\"engine\":"), "{line}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `--profile` prints the flame table to stderr; `--profile=FILE` also
/// writes the JSON profile, whose span tree keeps children within their
/// parents' totals.
#[test]
fn profile_flag_writes_flame_table_and_json_tree() {
    let dir = temp_dir("profile");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let profile_path = dir.join("prof.json");
    let profile_arg = format!("--profile={}", profile_path.display());
    let (stdout, stderr, code) = run_mrmc_code(
        &[
            tra.to_str().unwrap(),
            lab.to_str().unwrap(),
            rewr.to_str().unwrap(),
            rewi.to_str().unwrap(),
            "--json",
            &profile_arg,
        ],
        "P(> 0.1) [TT U[0,1][0,10] failed]\nS(> 0.5) (up)\n",
    );
    assert_eq!(code, Some(0), "stderr: {stderr}\nstdout: {stdout}");
    // Flame table on stderr: header plus the top-level checker phases.
    assert!(stderr.contains("wall-time profile:"), "{stderr}");
    assert!(stderr.contains("phase"), "{stderr}");
    assert!(stderr.contains("engine"), "{stderr}");
    // stdout stays a clean JSONL stream.
    for line in stdout.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    // The JSON profile parses, has the pinned envelope, and never lets a
    // child total exceed its parent.
    let text = std::fs::read_to_string(&profile_path).expect("profile written");
    assert!(text.starts_with("{\"total_s\":"), "{text}");
    let doc = mrmc_server::json::parse(&text).expect("profile JSON parses");
    fn check_nodes(nodes: &[mrmc_server::json::Value]) {
        for node in nodes {
            let total = node
                .get("total_s")
                .and_then(mrmc_server::json::Value::as_f64)
                .expect("total_s");
            let self_s = node
                .get("self_s")
                .and_then(mrmc_server::json::Value::as_f64)
                .expect("self_s");
            assert!(self_s >= 0.0 && self_s <= total + 1e-9);
            let Some(mrmc_server::json::Value::Arr(children)) = node.get("children") else {
                panic!("no children array");
            };
            let child_total: f64 = children
                .iter()
                .map(|c| {
                    c.get("total_s")
                        .and_then(mrmc_server::json::Value::as_f64)
                        .unwrap()
                })
                .sum();
            assert!(child_total <= total + 1e-9, "children exceed parent");
            check_nodes(children);
        }
    }
    let Some(mrmc_server::json::Value::Arr(spans)) = doc.get("spans") else {
        panic!("no spans array: {text}");
    };
    assert!(!spans.is_empty(), "empty span tree: {text}");
    check_nodes(spans);
    assert!(
        doc.get("histograms")
            .and_then(|h| h.get("engine"))
            .and_then(|h| h.get("count"))
            .and_then(mrmc_server::json::Value::as_u64)
            .is_some_and(|n| n >= 2),
        "engine histogram missing: {text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_reduction_flag_disables_the_lumping_quotient() {
    // A diamond with twin mid states: lumpable 4 -> 3 for a steady-state
    // formula (the twins have identical aggregate rates) and 4 -> 2 for a
    // pure-AP one.
    let dir = temp_dir("reduction");
    let tra = dir.join("m.tra");
    std::fs::write(
        &tra,
        "STATES 4\nTRANSITIONS 5\n1 2 1.0\n1 3 1.0\n2 4 2.0\n3 4 2.0\n4 1 0.5\n",
    )
    .unwrap();
    let lab = dir.join("m.lab");
    std::fs::write(
        &lab,
        "#DECLARATION\nstart mid goal\n#END\n1 start\n2 mid\n3 mid\n4 goal\n",
    )
    .unwrap();
    let rewr = dir.join("m.rewr");
    std::fs::write(&rewr, "").unwrap();
    let rewi = dir.join("m.rewi");
    std::fs::write(&rewi, "TRANSITIONS 0\n").unwrap();
    let paths = [
        tra.to_str().unwrap().to_string(),
        lab.to_str().unwrap().to_string(),
        rewr.to_str().unwrap().to_string(),
        rewi.to_str().unwrap().to_string(),
    ];
    let p: Vec<&str> = paths.iter().map(String::as_str).collect();

    let formulas = "S(> 0.1) (goal)\ngoal\n";
    let (reduced, stderr, ok) = run_mrmc(&[p[0], p[1], p[2], p[3]], formulas);
    assert!(ok, "stderr: {stderr}");
    assert!(
        reduced.contains("checked on a verified quotient: 4 -> 3 states"),
        "{reduced}"
    );
    assert!(
        reduced.contains("checked on a verified quotient: 4 -> 2 states"),
        "{reduced}"
    );

    let (full, stderr, ok) = run_mrmc(&[p[0], p[1], p[2], p[3], "--no-reduction"], formulas);
    assert!(ok, "stderr: {stderr}");
    assert!(!full.contains("verified quotient"), "{full}");

    // The reduction is exact: same satisfying sets, same probabilities
    // (up to solver round-off on the different-sized systems).
    let grab = |text: &str, state: usize| -> f64 {
        text.lines()
            .find(|l| l.trim_start().starts_with(&format!("state {state}: P = ")))
            .and_then(|l| l.split("P = ").nth(1))
            .and_then(|v| v.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(f64::NAN)
    };
    for s in 1..=4 {
        let (pr, pf) = (grab(&reduced, s), grab(&full, s));
        assert!(
            (pr - pf).abs() <= 1e-9,
            "state {s}: reduced {pr} vs full {pf}\n{reduced}\n{full}"
        );
    }
    let sat_lines = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.contains("satisfied by:"))
            .map(ToString::to_string)
            .collect()
    };
    assert_eq!(sat_lines(&reduced), sat_lines(&full), "{reduced}\n{full}");

    // JSON mode records the original and reduced state counts.
    let (json, _, ok) = run_mrmc(&[p[0], p[1], p[2], p[3], "--json"], "S(> 0.1) (goal)\n");
    assert!(ok);
    assert!(
        json.contains("\"original_states\":4,\"reduced_states\":3"),
        "{json}"
    );
    let (json, _, ok) = run_mrmc(
        &[p[0], p[1], p[2], p[3], "--json", "--no-reduction"],
        "S(> 0.1) (goal)\n",
    );
    assert!(ok);
    assert!(!json.contains("original_states"), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_field_reports_the_engine_actually_run() {
    // `--json` must name the engine that *actually* computed the outermost
    // operator — which the bound shape can override away from the
    // configured one. In particular, a time-only bound always runs the
    // exact baseline method, even when `d=`/`u=` selected an engine.
    let dir = temp_dir("engine-field");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let p = [
        tra.to_str().unwrap(),
        lab.to_str().unwrap(),
        rewr.to_str().unwrap(),
        rewi.to_str().unwrap(),
    ];

    let engine_of = |extra: &[&str], formula: &str| -> String {
        let mut args = p.to_vec();
        args.extend_from_slice(extra);
        args.push("--json");
        let (stdout, stderr, ok) = run_mrmc(&args, &format!("{formula}\n"));
        assert!(ok, "stderr: {stderr}\nstdout: {stdout}");
        let line = stdout.lines().next().expect("one JSON line").to_string();
        line.split("\"engine\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .unwrap_or_else(|| panic!("no engine field in {line}"))
            .to_string()
    };

    // The regression this pins: a time-only bound under a configured
    // discretization (or uniformization) engine falls back to the exact
    // baseline, and the JSON must say so.
    let time_only = "P(> 0.001) [up U[0,10] degraded]";
    assert_eq!(engine_of(&["d=0.01"], time_only), "baseline");
    assert_eq!(engine_of(&["u=1e-10"], time_only), "baseline");

    // Doubly-bounded untils run the configured engine.
    let bounded = "P(> 0.001) [up U[0,10][0,50] degraded]";
    assert_eq!(engine_of(&["u=1e-10"], bounded), "uniformization");
    assert_eq!(engine_of(&["d=0.01"], bounded), "discretization");

    // Unbounded until is plain reachability; steady-state is its own
    // engine.
    assert_eq!(engine_of(&[], "P(> 0.99) [TT U failed]"), "reachability");
    assert_eq!(engine_of(&[], "S(> 0.5) (up)"), "steady");

    // Human mode prints the same thing as a labeled line.
    let (stdout, _, ok) = run_mrmc(
        &[p[0], p[1], p[2], p[3], "d=0.01"],
        &format!("{time_only}\n"),
    );
    assert!(ok);
    assert!(stdout.contains("engine: baseline"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_flag_reports_run_metrics() {
    let dir = temp_dir("metrics");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let p = [
        tra.to_str().unwrap(),
        lab.to_str().unwrap(),
        rewr.to_str().unwrap(),
        rewi.to_str().unwrap(),
    ];
    let formula = "P(> 0.001) [up U[0,10][0,50] degraded]\n";
    // Three formulas exercising three engines: uniformization (paths),
    // the Fox–Glynn baseline (poisson window), and steady-state (solver).
    let formulas = "P(> 0.001) [up U[0,10][0,50] degraded]\n\
                    P(> 0.001) [up U[0,10] degraded]\n\
                    S(> 0.5) (up)\n";

    // JSON mode: a `metrics` object with the full fixed key set, in its
    // documented order (the golden-shape contract).
    let (stdout, stderr, ok) = run_mrmc(&[p[0], p[1], p[2], p[3], "--metrics", "--json"], formulas);
    assert!(ok, "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    let line = lines[0];
    let metrics = line
        .split("\"metrics\":")
        .nth(1)
        .unwrap_or_else(|| panic!("no metrics object in {line}"));
    let keys = [
        "\"solver_solves\":",
        "\"solver_iterations\":",
        "\"poisson_windows\":",
        "\"poisson_left\":",
        "\"poisson_right\":",
        "\"nodes_explored\":",
        "\"paths_generated\":",
        "\"paths_pruned\":",
        "\"path_max_depth\":",
        "\"path_classes\":",
        "\"parallel_tasks\":",
        "\"omega_requests\":",
        "\"omega_cache_entries\":",
        "\"omega_max_depth\":",
        "\"grid_runs\":",
        "\"grid_time_steps\":",
        "\"grid_reward_cells\":",
        "\"adaptive_attempts\":",
        "\"solver_last_residual\":",
        "\"poisson_tail_bound\":",
        "\"truncated_mass\":",
        "\"lumping_rounds\":",
        "\"progress_events\":",
        "\"phases\":{",
        "\"counters\":{",
    ];
    let mut at = 0;
    for key in keys {
        let found = metrics[at..]
            .find(key)
            .unwrap_or_else(|| panic!("missing or out-of-order {key} in {metrics}"));
        at += found;
    }
    // The uniformization run did real work, and the phase timers ran.
    let grab_count = |metrics: &str, name: &str| -> u64 {
        metrics
            .split(&format!("\"{name}\":"))
            .nth(1)
            .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {name} count in {metrics}"))
    };
    assert!(grab_count(metrics, "paths_generated") > 0, "{metrics}");
    assert!(metrics.contains("\"phases\":{\"engine\":"), "{metrics}");

    // Metrics are scoped per formula: the baseline formula's object has
    // the Poisson window, the steady-state one the solver counters.
    let baseline_metrics = lines[1].split("\"metrics\":").nth(1).unwrap();
    assert!(
        grab_count(baseline_metrics, "poisson_windows") > 0,
        "{baseline_metrics}"
    );
    assert!(
        grab_count(baseline_metrics, "poisson_right") > 0,
        "{baseline_metrics}"
    );
    let steady_metrics = lines[2].split("\"metrics\":").nth(1).unwrap();
    assert!(
        grab_count(steady_metrics, "solver_solves") > 0,
        "{steady_metrics}"
    );
    assert!(
        grab_count(steady_metrics, "solver_iterations") > 0,
        "{steady_metrics}"
    );

    // The discretization engine reports its grid work through the same
    // object.
    let (stdout, _, ok) = run_mrmc(
        &[p[0], p[1], p[2], p[3], "d=0.01", "--metrics", "--json"],
        formula,
    );
    assert!(ok);
    let line = stdout.lines().next().unwrap();
    let metrics = line.split("\"metrics\":").nth(1).unwrap();
    assert!(grab_count(metrics, "grid_runs") > 0, "{metrics}");
    assert!(grab_count(metrics, "grid_time_steps") > 0, "{metrics}");

    // Under --tolerance the adaptive driver's attempts are counted.
    let (stdout, _, ok) = run_mrmc(
        &[
            p[0],
            p[1],
            p[2],
            p[3],
            "--tolerance",
            "1e-6",
            "--metrics",
            "--json",
        ],
        formula,
    );
    assert!(ok);
    let metrics = stdout
        .lines()
        .next()
        .unwrap()
        .split("\"metrics\":")
        .nth(1)
        .unwrap();
    assert!(grab_count(metrics, "adaptive_attempts") > 0, "{metrics}");

    // Human mode: an indented metrics table with the headline counters
    // (per formula, so each engine's rows appear under its own formula).
    let (stdout, _, ok) = run_mrmc(&[p[0], p[1], p[2], p[3], "--metrics"], formulas);
    assert!(ok);
    assert!(stdout.contains("  metrics:"), "{stdout}");
    assert!(stdout.contains("    paths generated: "), "{stdout}");
    assert!(stdout.contains("    poisson window: ["), "{stdout}");
    assert!(stdout.contains("    solver iterations: "), "{stdout}");
    assert!(stdout.contains("    phase engine: "), "{stdout}");

    // Telemetry is observation-only: the probability lines are identical
    // with and without --metrics.
    let (plain, _, ok) = run_mrmc(&[p[0], p[1], p[2], p[3]], formulas);
    assert!(ok);
    let prob_lines = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.trim_start().starts_with("state "))
            .map(ToString::to_string)
            .collect()
    };
    assert_eq!(prob_lines(&plain), prob_lines(&stdout));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_flag_streams_wellformed_jsonl() {
    let dir = temp_dir("trace");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let trace = dir.join("run.jsonl");
    let (_, stderr, ok) = run_mrmc(
        &[
            tra.to_str().unwrap(),
            lab.to_str().unwrap(),
            rewr.to_str().unwrap(),
            rewi.to_str().unwrap(),
            "--json",
            &format!("--trace={}", trace.display()),
        ],
        "P(> 0.001) [up U[0,10][0,50] degraded]\nP(> 0.001) [up U[0,10] degraded]\nS(> 0.5) (up)\n",
    );
    assert!(ok, "stderr: {stderr}");
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3, "suspiciously short trace:\n{text}");
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "line {i} is not a JSON object: {line}"
        );
        assert!(
            line.starts_with(&format!("{{\"seq\":{i},\"kind\":\"")),
            "line {i} has wrong seq: {line}"
        );
    }
    // The engines' signature events made it to the file, and the stream
    // terminates with the run summary.
    assert!(text.contains("\"kind\":\"path_exploration\""), "{text}");
    assert!(text.contains("\"kind\":\"poisson_window\""), "{text}");
    assert!(text.contains("\"kind\":\"solver_sweep\""), "{text}");
    assert!(text.contains("\"kind\":\"span\""), "{text}");
    let last = lines.last().unwrap();
    assert!(
        last.contains("\"kind\":\"run_summary\"") && last.contains("\"formulas\":3"),
        "{last}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn progress_flag_prints_throttled_lines_to_stderr() {
    let dir = temp_dir("progress");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let p = [
        tra.to_str().unwrap(),
        lab.to_str().unwrap(),
        rewr.to_str().unwrap(),
        rewi.to_str().unwrap(),
    ];
    // The discretization grid emits throttled `grid` progress events.
    let formula = "P(> 0.001) [up U[0,10][0,50] degraded]\n";
    let (_, stderr, ok) = run_mrmc(&[p[0], p[1], p[2], p[3], "d=0.01", "--progress"], formula);
    assert!(ok);
    assert!(stderr.contains("mrmc: progress: grid "), "{stderr}");
    // Off by default.
    let (_, stderr, ok) = run_mrmc(&[p[0], p[1], p[2], p[3], "d=0.01"], formula);
    assert!(ok);
    assert!(!stderr.contains("mrmc: progress:"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_subcommand_is_an_alias_for_the_default_mode() {
    let dir = temp_dir("check-alias");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let p = [
        tra.to_str().unwrap(),
        lab.to_str().unwrap(),
        rewr.to_str().unwrap(),
        rewi.to_str().unwrap(),
    ];
    let formulas = "S(> 0.5) (up)\n";
    let (plain, _, ok) = run_mrmc(&[p[0], p[1], p[2], p[3]], formulas);
    assert!(ok);
    let (aliased, stderr, ok) = run_mrmc(&["check", p[0], p[1], p[2], p[3]], formulas);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(plain, aliased);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn point_intervals_yield_exact_budgets() {
    // `U[0,0][0,0]` degenerates to the ψ-indicator: probability 1 on
    // ψ-states, 0 elsewhere, with an identically-zero (exact) budget, so
    // even `P(>= 1)` is decided — no unknown verdicts.
    let dir = temp_dir("point");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let (stdout, stderr, code) = run_mrmc_code(
        &[
            tra.to_str().unwrap(),
            lab.to_str().unwrap(),
            rewr.to_str().unwrap(),
            rewi.to_str().unwrap(),
            "--json",
        ],
        "P(>= 1) [TT U[0,0][0,0] degraded]\n",
    );
    assert_eq!(code, Some(0), "stderr: {stderr}\nstdout: {stdout}");
    let line = stdout.lines().next().unwrap();
    assert!(line.contains("\"satisfied\":[2]"), "{line}");
    assert!(line.contains("\"unknown\":[]"), "{line}");
    assert!(line.contains("\"total\":0e0"), "{line}");
    assert!(
        line.contains("\"state\":2,\"probability\":1e0,\"verdict\":\"holds\""),
        "{line}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_verdicts_exit_with_code_4() {
    // The simulation estimate for state 1 is ~0.617 with a statistical
    // budget of ~0.085, so the bound 0.6 is inside the budget: the verdict
    // is Unknown and the run must exit with the dedicated code 4, distinct
    // from errors (1), preflight failures (2), and tolerance misses (3).
    let dir = temp_dir("unknown-exit");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let (stdout, stderr, code) = run_mrmc_code(
        &[
            tra.to_str().unwrap(),
            lab.to_str().unwrap(),
            rewr.to_str().unwrap(),
            rewi.to_str().unwrap(),
            "s=1000",
            "--json",
        ],
        "P(> 0.6) [up U[0,10][0,50] degraded]\n",
    );
    assert_eq!(code, Some(4), "stderr: {stderr}\nstdout: {stdout}");
    assert!(stdout.contains("\"unknown\":[1]"), "{stdout}");
    assert!(
        stderr.contains("one or more verdicts are unknown"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_formula_exit_reflects_the_worst_outcome() {
    let dir = temp_dir("worst-exit");
    let [tra, lab, rewr, rewi] = write_tmr_like_model(&dir);
    let base = [
        tra.to_str().unwrap().to_string(),
        lab.to_str().unwrap().to_string(),
        rewr.to_str().unwrap().to_string(),
        rewi.to_str().unwrap().to_string(),
        "s=1000".to_string(),
    ];
    let run = |formulas: &str| {
        let args: Vec<&str> = base.iter().map(String::as_str).collect();
        run_mrmc_code(&args, formulas)
    };
    let unknown = "P(> 0.6) [up U[0,10][0,50] degraded]\n";
    let passing = "S(> 0.5) (up)\n";

    // A definite verdict alongside an Unknown one: the batch still exits 4.
    let (stdout, stderr, code) = run(&format!("{passing}{unknown}{passing}"));
    assert_eq!(code, Some(4), "stderr: {stderr}\nstdout: {stdout}");

    // An outright error outranks the Unknown (1 beats 4); the remaining
    // formulas are still checked and reported.
    let (stdout, stderr, code) = run(&format!("{unknown}not a formula ((\n{passing}"));
    assert_eq!(code, Some(1), "stderr: {stderr}\nstdout: {stdout}");
    assert!(stdout.contains("satisfied by"), "{stdout}");

    // All definite: success.
    let (stdout, stderr, code) = run(&format!("{passing}{passing}"));
    assert_eq!(code, Some(0), "stderr: {stderr}\nstdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
