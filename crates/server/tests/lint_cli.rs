//! Golden tests of the `mrmc lint` subcommand against the diagnostics
//! corpus under `tests/lint_corpus/` at the repository root.
//!
//! Every corpus case is a directory holding a model (`m.tra`, `m.lab`,
//! `m.rewr`, `m.rewi`), optional formulas (`formulas.csrl`), and an
//! `expect` file with the exact sorted set of diagnostic codes the lint
//! must report — nothing more, nothing less. An optional `expect_lines`
//! file pins the exact sorted source-line numbers the diagnostics must
//! point at. Codes are a stable public interface: a case starting to
//! report different codes is a breaking change, not a test to update
//! casually.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint_corpus")
}

fn run_lint(case: &Path, extra: &[&str]) -> (String, String, Option<i32>) {
    let file = |name: &str| case.join(name).to_str().unwrap().to_string();
    let mut args = vec![
        "lint".to_string(),
        file("m.tra"),
        file("m.lab"),
        file("m.rewr"),
        file("m.rewi"),
    ];
    args.extend(extra.iter().map(ToString::to_string));
    let formulas = std::fs::read_to_string(case.join("formulas.csrl")).unwrap_or_default();
    let mut child = Command::new(env!("CARGO_BIN_EXE_mrmc"))
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(formulas.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

/// Pull the sorted, de-duplicated diagnostic codes out of `--json` output.
fn codes_in(json: &str) -> Vec<String> {
    let mut codes = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find("\"code\":\"") {
        let tail = &rest[i + 8..];
        let end = tail.find('"').expect("closing quote");
        codes.push(tail[..end].to_string());
        rest = &tail[end..];
    }
    codes.sort();
    codes.dedup();
    codes
}

/// The sorted `"line":N` locations present in `--json` output.
/// Post-load diagnostics render `"line":null` and are skipped here.
fn lines_in(json: &str) -> Vec<usize> {
    let mut lines = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find("\"line\":") {
        let tail = &rest[i + 7..];
        let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
        if !digits.is_empty() {
            lines.push(digits.parse().expect("line number"));
        }
        rest = tail;
    }
    lines.sort_unstable();
    lines
}

/// The declared error count from the `--json` summary.
fn error_count_in(json: &str) -> usize {
    let i = json.rfind("\"errors\":").expect("errors field");
    json[i + 9..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("errors count")
}

#[test]
fn corpus_cases_report_exactly_the_expected_codes() {
    let corpus = corpus_dir();
    let mut cases: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .expect("corpus directory exists")
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.is_dir().then_some(p)
        })
        .collect();
    cases.sort();
    assert!(cases.len() >= 7, "corpus shrank: {cases:?}");

    for case in cases {
        let name = case.file_name().unwrap().to_string_lossy().into_owned();
        let mut expected: Vec<String> = std::fs::read_to_string(case.join("expect"))
            .unwrap_or_else(|_| panic!("case {name} has an expect file"))
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(ToString::to_string)
            .collect();
        expected.sort();

        let (stdout, stderr, code) = run_lint(&case, &["--json"]);
        assert_eq!(
            codes_in(&stdout),
            expected,
            "case {name}: codes diverged\nstdout: {stdout}\nstderr: {stderr}"
        );

        // Cases with an `expect_lines` file also pin the source locations.
        if let Ok(want) = std::fs::read_to_string(case.join("expect_lines")) {
            let want: Vec<usize> = want
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(|l| l.parse().expect("line number"))
                .collect();
            assert_eq!(
                lines_in(&stdout),
                want,
                "case {name}: locations diverged\nstdout: {stdout}"
            );
        }

        // Exit code 2 exactly when Error-grade diagnostics are present.
        let errors = error_count_in(&stdout);
        let want = if errors > 0 { Some(2) } else { Some(0) };
        assert_eq!(code, want, "case {name}: exit code\nstdout: {stdout}");
    }
}

#[test]
fn deny_warnings_promotes_and_fails() {
    // `suspicious_model` is warning-only: exit 0 normally, 2 under --deny.
    let case = corpus_dir().join("suspicious_model");
    let (_, _, code) = run_lint(&case, &[]);
    assert_eq!(code, Some(0));
    let (stdout, _, code) = run_lint(&case, &["--deny", "warnings"]);
    assert_eq!(code, Some(2), "{stdout}");
    assert!(stdout.contains("error[M101]"), "{stdout}");
    // Notes are never promoted.
    assert!(stdout.contains("note[M107]"), "{stdout}");
}

#[test]
fn human_output_carries_codes_and_summary() {
    let case = corpus_dir().join("formulas");
    let (stdout, _, code) = run_lint(&case, &[]);
    assert_eq!(code, Some(2));
    assert!(stdout.contains("error[F001]"), "{stdout}");
    assert!(stdout.contains("error[F002]"), "{stdout}");
    assert!(stdout.contains("help:"), "{stdout}");
    assert!(stdout.contains("lint: 2 errors"), "{stdout}");
}

#[test]
fn unparsable_formula_is_f003() {
    let case = corpus_dir().join("clean");
    let file = |name: &str| case.join(name).to_str().unwrap().to_string();
    let mut child = Command::new(env!("CARGO_BIN_EXE_mrmc"))
        .args([
            "lint".to_string(),
            file("m.tra"),
            file("m.lab"),
            file("m.rewr"),
            file("m.rewi"),
            "--json".to_string(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"P(>= 0.5) [up U\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(2), "{stdout}");
    assert!(stdout.contains("\"code\":\"F003\""), "{stdout}");
}

#[test]
fn post_load_diagnostics_render_an_explicit_null_line() {
    // Formula-scope diagnostics have no model-file location; they must
    // still carry the `line` key (as `null`) so consumers see a uniform
    // shape instead of a sometimes-missing field.
    let case = corpus_dir().join("formulas");
    let (stdout, _, code) = run_lint(&case, &["--json"]);
    assert_eq!(code, Some(2), "{stdout}");
    assert!(stdout.contains("\"line\":null"), "{stdout}");
    // Every diagnostic object carries the key, numeric or null.
    assert_eq!(
        stdout.matches("\"code\":").count(),
        stdout.matches("\"line\":").count(),
        "{stdout}"
    );
}

#[test]
fn verbose_expands_the_per_scc_unreachability_report() {
    // `suspicious_model` has unreachable states: by default they are
    // aggregated into one M101 per unreachable SCC, and --verbose
    // restores the flat per-state form.
    let case = corpus_dir().join("suspicious_model");
    let (stdout, _, code) = run_lint(&case, &[]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("unreachable SCC"), "{stdout}");
    let (stdout, _, code) = run_lint(&case, &["--verbose"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(
        stdout.contains("unreachable from the initial state"),
        "{stdout}"
    );
    assert!(!stdout.contains("unreachable SCC"), "{stdout}");
}

#[test]
fn dataflow_flag_reports_x_codes() {
    let models = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/models");
    let file = |name: &str| models.join(name).to_str().unwrap().to_string();
    let run = |extra: &[&str]| {
        let mut args = vec![
            "lint".to_string(),
            file("tmr.tra"),
            file("tmr.lab"),
            file("tmr.rewr"),
            file("tmr.rewi"),
        ];
        args.extend(extra.iter().map(ToString::to_string));
        let mut child = Command::new(env!("CARGO_BIN_EXE_mrmc"))
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary runs");
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(b"P(> 0.99) [TT U Sup]\n")
            .unwrap();
        let out = child.wait_with_output().unwrap();
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            out.status.code(),
        )
    };

    let (stdout, code) = run(&["--dataflow", "--json"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"code\":\"X002\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"X003\""), "{stdout}");
    assert!(stdout.contains("condensation"), "{stdout}");

    // Without the flag, no X codes at all.
    let (stdout, code) = run(&["--json"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(
        !codes_in(&stdout).iter().any(|c| c.starts_with('X')),
        "{stdout}"
    );
}

#[test]
fn lumping_flag_reports_r_codes() {
    // The TMR example with a pure-AP formula lumps 5 -> 2 (a
    // rate-observing formula would see the full chain); without --lumping
    // no R codes appear at all.
    let models = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/models");
    let file = |name: &str| models.join(name).to_str().unwrap().to_string();
    let run = |extra: &[&str]| {
        let mut args = vec![
            "lint".to_string(),
            file("tmr.tra"),
            file("tmr.lab"),
            file("tmr.rewr"),
            file("tmr.rewi"),
        ];
        args.extend(extra.iter().map(ToString::to_string));
        let mut child = Command::new(env!("CARGO_BIN_EXE_mrmc"))
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary runs");
        child.stdin.as_mut().unwrap().write_all(b"Sup\n").unwrap();
        let out = child.wait_with_output().unwrap();
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            out.status.code(),
        )
    };

    let (stdout, code) = run(&["--lumping", "--json"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"code\":\"R101\""), "{stdout}");
    assert!(stdout.contains("lumpable"), "{stdout}");

    let (stdout, code) = run(&["--json"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(
        !codes_in(&stdout).iter().any(|c| c.starts_with('R')),
        "{stdout}"
    );
}

#[test]
fn example_model_is_lint_clean() {
    // The shipped TMR example must stay clean even under --deny warnings;
    // CI runs the same invocation as a smoke test.
    let models = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/models");
    let file = |name: &str| models.join(name).to_str().unwrap().to_string();
    let formulas = std::fs::read_to_string(models.join("tmr.csrl")).unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_mrmc"))
        .args([
            "lint".to_string(),
            file("tmr.tra"),
            file("tmr.lab"),
            file("tmr.rewr"),
            file("tmr.rewi"),
            "--deny".to_string(),
            "warnings".to_string(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(formulas.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("0 errors, 0 warnings"), "{stdout}");
}
