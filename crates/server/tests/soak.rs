//! Concurrency soak for the live server: many JSONL clients, each
//! interleaving the same formula set in a different order, against one
//! shared [`mrmc::CheckSession`].
//!
//! The contract under load:
//!
//! * every client's answer for a formula is byte-identical to every other
//!   client's, regardless of interleaving (order-independence);
//! * the whole soak, re-run from a cold server, reproduces the exact same
//!   answer bytes (bitwise stability);
//! * `sat_cache_hits` observed through interleaved `stats` requests is
//!   monotone non-decreasing and ends positive (the shared cache is
//!   actually serving the repeated formulas);
//! * each connection ends with a clean `run_summary` counting its
//!   formulas and zero failures.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;

use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_server::{json, Server, ServerConfig};

const CLIENTS: usize = 4;
const ROUNDS: usize = 3;
const FORMULAS: [&str; 3] = [
    "P(> 0.1) [TT U[0,1][0,10] failed]",
    "P(> 0.01) [allUp U[0,2] failed]",
    "S(> 0.5) (allUp)",
];

fn write_model_files(dir: &Path) -> [std::path::PathBuf; 4] {
    use mrmc_mrm::io::{write_lab, write_rewi, write_rewr, write_tra};
    let m = tmr(&TmrConfig::classic());
    let paths = [
        dir.join("m.tra"),
        dir.join("m.lab"),
        dir.join("m.rewr"),
        dir.join("m.rewi"),
    ];
    std::fs::write(&paths[0], write_tra(&m)).unwrap();
    std::fs::write(&paths[1], write_lab(&m)).unwrap();
    std::fs::write(&paths[2], write_rewr(&m)).unwrap();
    std::fs::write(&paths[3], write_rewi(&m)).unwrap();
    paths
}

/// What one client observed: formula → answer bytes (with the
/// correlation prefix stripped), plus the `sat_cache_hits` and per-kind
/// latency-histogram counts seen through its interleaved `stats`
/// probes, in request order.
struct ClientView {
    answers: BTreeMap<String, String>,
    hits_seen: Vec<u64>,
    check_counts_seen: Vec<u64>,
}

fn stats_field(line: &str, field: &str) -> u64 {
    json::parse(line)
        .unwrap_or_else(|e| panic!("bad stats line: {e}\n{line}"))
        .get("stats")
        .and_then(|s| s.get(field))
        .and_then(json::Value::as_u64)
        .unwrap_or_else(|| panic!("stats line lacks {field}: {line}"))
}

/// The observation count of the per-request-kind latency histogram in a
/// `stats` reply, or 0 if no request of that kind has been timed yet.
fn latency_count(line: &str, kind: &str) -> u64 {
    json::parse(line)
        .unwrap_or_else(|e| panic!("bad stats line: {e}\n{line}"))
        .get("stats")
        .and_then(|s| s.get("latency"))
        .and_then(|l| l.get(kind))
        .and_then(|h| h.get("count"))
        .and_then(json::Value::as_u64)
        .unwrap_or(0)
}

/// Drive one client: load the model, then `ROUNDS` passes over the
/// formula set rotated by the client index (so every client interleaves
/// differently), with a `stats` probe after each pass.
fn run_client(addr: &str, client: usize, paths: &[std::path::PathBuf; 4]) -> ClientView {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut send = |line: String| {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    };

    send(format!(
        "{{\"load\":{{\"model\":\"tmr\",\"tra\":\"{}\",\"lab\":\"{}\",\"rewr\":\"{}\",\"rewi\":\"{}\"}}}}",
        paths[0].display(),
        paths[1].display(),
        paths[2].display(),
        paths[3].display()
    ));
    let mut id_to_formula = BTreeMap::new();
    for round in 0..ROUNDS {
        for slot in 0..FORMULAS.len() {
            let formula = FORMULAS[(slot + client) % FORMULAS.len()];
            let id = round * FORMULAS.len() + slot;
            id_to_formula.insert(id as u64, formula.to_string());
            send(format!(
                "{{\"check\":{{\"model\":\"tmr\",\"formula\":\"{formula}\",\"options\":{{\"threads\":2}}}},\"id\":{id}}}"
            ));
        }
        send("{\"stats\":true}".to_string());
    }
    writer.flush().unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    let mut view = ClientView {
        answers: BTreeMap::new(),
        hits_seen: Vec::new(),
        check_counts_seen: Vec::new(),
    };
    let mut summary = None;
    for line in BufReader::new(stream).lines() {
        let line = line.expect("read response");
        if line.starts_with("{\"stats\":") {
            view.hits_seen.push(stats_field(&line, "sat_cache_hits"));
            view.check_counts_seen.push(latency_count(&line, "check"));
        } else if line.starts_with("{\"kind\":\"run_summary\"") {
            summary = Some(line);
        } else if line.starts_with("{\"id\":") {
            let parsed = json::parse(&line).unwrap();
            let id = parsed.get("id").and_then(json::Value::as_u64).unwrap();
            let formula = &id_to_formula[&id];
            // Strip the correlation prefix (which carries the wall-clock
            // `elapsed_s` and so differs between runs); the remainder,
            // from the `formula` key on, is the answer object all clients
            // must agree on, byte for byte.
            let idx = line
                .find("\"formula\":")
                .unwrap_or_else(|| panic!("unexpected response framing: {line}"));
            let body = &line[idx..];
            if let Some(previous) = view.answers.get(formula) {
                assert_eq!(
                    previous, body,
                    "client {client} got two different answers for `{formula}`"
                );
            }
            view.answers.insert(formula.clone(), body.to_string());
        } else if !line.starts_with("{\"loaded\":") {
            panic!("unexpected response line: {line}");
        }
    }
    let summary = summary.unwrap_or_else(|| panic!("client {client} got no run_summary"));
    let expected_prefix = format!(
        "{{\"kind\":\"run_summary\",\"formulas\":{},\"failures\":0,\"elapsed_s\":",
        ROUNDS * FORMULAS.len()
    );
    assert!(
        summary.starts_with(&expected_prefix),
        "client {client} must end with a clean run_summary: {summary}"
    );
    assert!(
        view.hits_seen.windows(2).all(|w| w[0] <= w[1]),
        "client {client} saw sat_cache_hits decrease: {:?}",
        view.hits_seen
    );
    assert!(
        view.check_counts_seen.windows(2).all(|w| w[0] <= w[1]),
        "client {client} saw the check-latency histogram count decrease: {:?}",
        view.check_counts_seen
    );
    view
}

/// One full soak from a cold server; returns the agreed formula → answer
/// map after asserting every client observed the same answers.
fn run_soak(dir: &Path) -> BTreeMap<String, String> {
    let paths = write_model_files(dir);
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    // One enclosing scope owns every thread of the soak: the server
    // (with one extra connection slot for the post-soak stats probe),
    // the clients in their own inner scope, and the structural joins.
    let (views, stats_line) = std::thread::scope(|outer| {
        let server_thread = outer.spawn(|| server.run(Some(CLIENTS + 1)));
        let views: Vec<ClientView> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    let addr = addr.clone();
                    let paths = &paths;
                    scope.spawn(move || run_client(&addr, client, paths))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // With every check drained, a fresh connection's stats probe must
        // see the shared cache's hits: 4 clients x 3 rounds of 3 formulas
        // ran only 3 distinct jobs, so most dispatches were served from
        // the cache. The in-flight probes above may race the jobs; this
        // one cannot.
        let stream = TcpStream::connect(&addr).expect("connect for stats");
        stream
            .try_clone()
            .unwrap()
            .write_all(b"{\"stats\":true}\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let stats_line = BufReader::new(stream)
            .lines()
            .map(|l| l.unwrap())
            .find(|l| l.starts_with("{\"stats\":"))
            .expect("stats response");
        server_thread.join().unwrap().unwrap();
        (views, stats_line)
    });
    assert!(
        stats_field(&stats_line, "sat_cache_hits") > 0,
        "the soak produced no sat-cache hits; the session cache is not shared: {stats_line}"
    );

    let agreed = views[0].answers.clone();
    assert_eq!(agreed.len(), FORMULAS.len());
    for (client, view) in views.iter().enumerate().skip(1) {
        assert_eq!(
            agreed, view.answers,
            "client {client} disagrees with client 0 despite a different interleaving"
        );
    }
    agreed
}

#[test]
fn concurrent_clients_agree_and_repeat_runs_are_bitwise_stable() {
    let dir = std::env::temp_dir().join(format!("mrmc-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let first = run_soak(&dir);
    let second = run_soak(&dir);
    assert_eq!(
        first, second,
        "a cold re-run of the soak produced different answer bytes"
    );
    std::fs::remove_dir_all(&dir).ok();
}
