//! Doc-sync guard: every `D`-code devlint can construct must be
//! documented in the `mrmc devlint` table in `docs/USAGE.md`. The codes
//! are a stable public interface — shipping an undocumented one is a
//! bug, so this test fails the build until the table is updated.

use std::collections::BTreeSet;
use std::path::Path;

/// Collect every `"D001"`-style string literal from the crate's sources.
fn codes_in_sources() -> BTreeSet<String> {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut codes = BTreeSet::new();
    let mut stack = vec![src];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("source directory exists") {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("source file reads");
            for (i, _) in text.match_indices('"') {
                let tail = &text[i + 1..];
                let Some(end) = tail.find('"') else { continue };
                let lit = &tail[..end];
                if lit.len() == 4
                    && lit.as_bytes()[0] == b'D'
                    && lit[1..].bytes().all(|b| b.is_ascii_digit())
                {
                    codes.insert(lit.to_string());
                }
            }
        }
    }
    codes
}

#[test]
fn every_constructible_d_code_is_documented_in_usage_md() {
    let codes = codes_in_sources();
    assert!(codes.len() >= 9, "code scan broke — found only {codes:?}");

    let usage = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/USAGE.md");
    let usage = std::fs::read_to_string(usage).expect("docs/USAGE.md exists");

    let undocumented: Vec<&String> = codes
        .iter()
        .filter(|c| !usage.contains(&format!("`{c}`")))
        .collect();
    assert!(
        undocumented.is_empty(),
        "D-codes missing from the docs/USAGE.md devlint table: {undocumented:?}"
    );
}

/// The documented set is closed: the table must not advertise codes the
/// scanner cannot produce (a renumbering or removal must update both).
#[test]
fn usage_md_documents_no_phantom_d_codes() {
    let codes = codes_in_sources();
    let usage = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/USAGE.md");
    let usage = std::fs::read_to_string(usage).expect("docs/USAGE.md exists");

    let devlint_section = usage
        .split("## Workspace hygiene")
        .nth(1)
        .and_then(|s| s.split("\n## ").next())
        .expect("USAGE.md has the `mrmc devlint` section");
    for line in devlint_section.lines() {
        let Some(rest) = line.strip_prefix("| `D") else {
            continue;
        };
        let code = format!("D{}", &rest[..3.min(rest.len())]);
        assert!(
            codes.contains(&code),
            "docs/USAGE.md documents `{code}`, which no devlint pass constructs"
        );
    }
}
