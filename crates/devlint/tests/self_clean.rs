//! The workspace must be devlint-clean: zero unsuppressed findings, and
//! every suppression pragma in the tree carries a reason and suppresses
//! a real finding. This is the meta-test behind the CI gate — devlint
//! eating its own cooking, including its own source.

use std::fs;
use std::path::{Path, PathBuf};

use mrmc_devlint::{lint_workspace, SourceFile};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let report = lint_workspace(&workspace_root()).expect("workspace walk must succeed");
    assert!(
        report.is_empty(),
        "devlint found problems in the tree:\n{}",
        report.render_human()
    );
}

/// Re-lex every `.rs` file and insist each pragma that parsed carries a
/// non-empty reason, and nothing pragma-shaped failed to parse.
/// `lint_workspace` reports these as D000 findings; this pins the
/// invariant even if the D000 wiring regresses. String literals that
/// merely *mention* pragmas (devlint's own tests and help text) are
/// blanked by the lexer, so only real comments are audited.
#[test]
fn every_pragma_in_the_tree_carries_a_reason() {
    let root = workspace_root();
    let mut audited = 0usize;
    audit_dir(&root, &root, &mut audited);
    assert!(
        audited > 0,
        "expected at least the server-crate D005 pragmas in the tree"
    );
}

fn audit_dir(root: &Path, dir: &Path, audited: &mut usize) {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name.starts_with('.')
                || ["target", "experiments-out", "devlint_corpus"].contains(&name.as_str())
            {
                continue;
            }
            audit_dir(root, &path, audited);
        } else if name.ends_with(".rs") {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let parsed = SourceFile::parse(rel.clone(), &text);
            if let Some(issue) = parsed.pragma_issues.first() {
                panic!("{rel}:{}: bad pragma: {}", issue.line, issue.message);
            }
            for pragma in &parsed.pragmas {
                assert!(
                    !pragma.reason.trim().is_empty(),
                    "{rel}:{}: pragma for {} has no reason",
                    pragma.at_line,
                    pragma.codes.join(", ")
                );
                *audited += 1;
            }
        }
    }
}
