//! Golden corpus for the devlint passes.
//!
//! Each fixture under `tests/devlint_corpus/` (at the workspace root —
//! the directory the workspace walk deliberately skips) declares in its
//! header comment the workspace-relative path it should be scanned *as*
//! and the exact multiset of D-codes the scan must produce:
//!
//! ```text
//! // virtual-path: crates/numerics/src/d001.rs
//! // expect: D001 D001
//! ```
//!
//! TOML fixtures use `#` comments. `.toml` fixtures run through the
//! manifest pass; `.rs` fixtures run through every source-level pass
//! plus the registry pass, then suppression — the same pipeline
//! `lint_workspace` applies per file.

use std::fs;
use std::path::PathBuf;

use mrmc_devlint::{manifest, registry, rules, SourceFile, SourceText};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/devlint_corpus")
}

/// Pull a `key:` header out of the fixture's leading comment lines.
/// Returns the trimmed value; panics if the header is missing (every
/// fixture must declare both `virtual-path:` and `expect:`).
fn header(text: &str, name: &str, key: &str) -> String {
    for line in text.lines() {
        let body = if let Some(rest) = line.strip_prefix("//") {
            rest
        } else if let Some(rest) = line.strip_prefix('#') {
            rest
        } else {
            break;
        };
        if let Some(value) = body.trim_start().strip_prefix(key) {
            return value.trim().to_string();
        }
    }
    panic!("fixture {name} is missing a `{key}` header");
}

fn lint_fixture(name: &str, virtual_path: &str, text: &str) -> Vec<String> {
    let mut findings = if name.ends_with(".toml") {
        manifest::lint_manifest(virtual_path, text)
    } else {
        let parsed = SourceFile::parse(virtual_path, text);
        let mut raw = rules::lint_source(&parsed);
        raw.extend(registry::lint_registry(&[SourceText {
            rel_path: virtual_path.to_string(),
            raw: text.to_string(),
            parsed: SourceFile::parse(virtual_path, text),
        }]));
        mrmc_devlint::apply_suppressions(&parsed, raw)
    };
    findings.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    for finding in &findings {
        assert_eq!(
            finding.file, virtual_path,
            "{name}: finding anchored outside the fixture's virtual path"
        );
        assert!(
            !finding.message.is_empty(),
            "{name}: finding {} has an empty message",
            finding.code
        );
    }
    findings.iter().map(|f| f.code.to_string()).collect()
}

#[test]
fn every_fixture_produces_exactly_its_expected_codes() {
    let dir = corpus_dir();
    let mut names: Vec<String> = fs::read_dir(&dir)
        .expect("tests/devlint_corpus must exist at the workspace root")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert!(
        names.len() >= 10,
        "corpus has shrunk below the seeded fixture set: {names:?}"
    );

    let mut covered: Vec<String> = Vec::new();
    for name in &names {
        let text = fs::read_to_string(dir.join(name)).unwrap();
        let virtual_path = header(&text, name, "virtual-path:");
        let expect_line = header(&text, name, "expect:");
        let mut expected: Vec<String> =
            expect_line.split_whitespace().map(str::to_string).collect();
        expected.sort();

        let mut got = lint_fixture(name, &virtual_path, &text);
        got.sort();
        assert_eq!(
            got, expected,
            "{name} (as {virtual_path}): devlint disagreed with the fixture header"
        );
        covered.extend(got);
    }

    // The corpus as a whole must cover every documented pass, including
    // pragma hygiene — a fixture rename or header typo can't silently
    // drop a D-code from coverage.
    covered.sort();
    covered.dedup();
    for code in [
        "D000", "D001", "D002", "D003", "D004", "D005", "D006", "D007", "D008",
    ] {
        assert!(
            covered.iter().any(|c| c == code),
            "no corpus fixture exercises {code}; covered: {covered:?}"
        );
    }
}

/// The clean fixtures are as load-bearing as the firing ones: a pass
/// that over-triggers would trip these before it ever reached the tree.
#[test]
fn clean_constructs_stay_clean() {
    let dir = corpus_dir();
    let text = fs::read_to_string(dir.join("pragma_ok.rs")).unwrap();
    let virtual_path = header(&text, "pragma_ok.rs", "virtual-path:");
    assert!(
        lint_fixture("pragma_ok.rs", &virtual_path, &text).is_empty(),
        "reasoned pragmas must fully suppress their findings"
    );
}
