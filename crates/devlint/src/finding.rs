//! The devlint diagnostic vocabulary, mirroring the `mrmc-analysis`
//! Diagnostic model: stable codes, severities, a human rendering and a
//! `--json` rendering — but anchored at `file:line` instead of model
//! states, because the subject under analysis is the workspace's own
//! source tree.
//!
//! Codes are **stable**: CI and scripts match on them, so a code is never
//! renumbered or reused. The `D0xx` namespace covers determinism and
//! hermeticity hazards that are statically recognizable in source:
//!
//! * `D000` — suppression-pragma hygiene (malformed pragma, missing
//!   reason, unknown code);
//! * `D001` — iteration over `HashMap`/`HashSet` in engine/result-path
//!   crates, where hash order can reach outputs;
//! * `D002` — wall-clock reads (`Instant`/`SystemTime`) outside the
//!   bench/obs timing allowlist;
//! * `D003` — `thread::spawn` outside `thread::scope` (all parallelism
//!   must be scoped);
//! * `D004` — atomic-float emulation or float reductions over unordered
//!   data (must route through the Kahan/compensated helpers);
//! * `D005` — `unwrap()`/`expect()`/`panic!` in `mrmc-server`
//!   request-handling paths;
//! * `D006` — hermeticity gate: a non-workspace `[dependencies]` entry in
//!   a `Cargo.toml`;
//! * `D007` — cross-registry sync: counters/event kinds emitted in source
//!   but missing from the `mrmc_obs` registries;
//! * `D008` — workspace lint-gate: a crate missing `[lints] workspace =
//!   true`, or the root manifest missing `unsafe_code = "forbid"`.

use std::fmt;

/// How bad a finding is. Every D-code is `Error`-grade today (devlint is
/// deny-by-default in CI), but the model mirrors `mrmc-analysis` so
/// advisory passes can be added without reshaping the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never blocks anything.
    Note,
    /// Suspicious: blocks only when warnings are denied.
    Warning,
    /// A determinism/hermeticity hazard; always blocks.
    Error,
}

impl Severity {
    /// Lower-case human label (`"error"`, `"warning"`, `"note"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single finding of a devlint pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Stable code, e.g. `"D001"`. Never renumbered.
    pub code: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line the finding anchors to; `0` for file-global findings.
    pub line: usize,
    /// What is wrong, in one sentence.
    pub message: String,
    /// What to do about it, when a concrete suggestion exists.
    pub suggestion: Option<String>,
}

impl Finding {
    /// A finding anchored at `file:line`.
    pub fn new(
        code: &'static str,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            code,
            severity: Severity::Error,
            file: file.into(),
            line,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attach a suggestion.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({}:{})",
            self.severity, self.code, self.message, self.file, self.line
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

/// Everything the devlint passes found, in pass order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    findings: Vec<Finding>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append a finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Append every finding of `other`.
    pub fn extend(&mut self, other: impl IntoIterator<Item = Finding>) {
        self.findings.extend(other);
    }

    /// The findings, in the order the passes produced them.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// `true` when nothing was found.
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// Count of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` when any Error-grade finding is present.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// The sorted, de-duplicated codes present — what the golden corpus
    /// asserts against.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.findings.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// Render for terminals: one block per finding plus a summary line.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.findings {
            writeln!(out, "{d}").expect("write to String");
        }
        let (e, w, n) = (
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
        );
        writeln!(
            out,
            "devlint: {e} error{}, {w} warning{}, {n} note{}",
            plural(e),
            plural(w),
            plural(n)
        )
        .expect("write to String");
        out
    }

    /// Render as a JSON object mirroring the `mrmc lint --json` schema:
    /// `{"diagnostics": [...], "errors": E, "warnings": W, "notes": N}`,
    /// with each diagnostic carrying `file` and `line` instead of model
    /// `states`.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"",
                d.code,
                d.severity,
                json_escape(&d.file),
                d.line,
                json_escape(&d.message),
            )
            .expect("write to String");
            if let Some(s) = &d.suggestion {
                write!(out, ",\"suggestion\":\"{}\"", json_escape(s)).expect("write to String");
            }
            out.push('}');
        }
        write!(
            out,
            "],\"errors\":{},\"warnings\":{},\"notes\":{}}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
        )
        .expect("write to String");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render_human().trim_end())
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_code_location_and_help() {
        let d = Finding::new(
            "D001",
            "crates/core/src/cache.rs",
            42,
            "hash-order iteration",
        )
        .with_suggestion("use a BTreeMap");
        let s = d.to_string();
        assert!(s.contains("error[D001]"));
        assert!(s.contains("crates/core/src/cache.rs:42"));
        assert!(s.contains("help: use a BTreeMap"));
    }

    #[test]
    fn report_counts_and_codes() {
        let mut r = Report::new();
        r.push(Finding::new("D002", "a.rs", 1, "x"));
        r.push(Finding::new("D001", "b.rs", 2, "y"));
        r.push(Finding::new("D001", "b.rs", 3, "z"));
        assert!(r.has_errors());
        assert_eq!(r.len(), 3);
        assert_eq!(r.codes(), vec!["D001", "D002"]);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let mut r = Report::new();
        r.push(
            Finding::new("D006", "crates/x/Cargo.toml", 7, "external dep \"serde\"")
                .with_suggestion("vendor it"),
        );
        let j = r.render_json();
        assert!(j.starts_with("{\"diagnostics\":["));
        assert!(j.contains("\"code\":\"D006\""));
        assert!(j.contains("\"file\":\"crates/x/Cargo.toml\""));
        assert!(j.contains("\"line\":7"));
        assert!(j.contains("\\\"serde\\\""));
        assert!(j.ends_with("\"notes\":0}"));
        assert!(j.contains("\"errors\":1"));
    }

    #[test]
    fn human_rendering_has_summary() {
        let mut r = Report::new();
        r.push(Finding::new("D003", "a.rs", 9, "unscoped spawn"));
        let h = r.render_human();
        assert!(h.contains("error[D003]"));
        assert!(h.contains("devlint: 1 error, 0 warnings, 0 notes"));
    }
}
