//! Standalone devlint driver: `mrmc-devlint [--json] [ROOT]`.
//!
//! Exit codes follow the `mrmc lint` convention: `0` clean, `2` when
//! findings exist (devlint is deny-by-default — every code is
//! Error-grade), `1` on I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "mrmc-devlint — workspace determinism & hermeticity analyzer\n\
     \n\
     USAGE:\n\
       mrmc-devlint [--json] [ROOT]\n\
     \n\
     ARGS:\n\
       ROOT      workspace checkout to scan (default: current directory)\n\
     \n\
     OPTIONS:\n\
       --json    machine-readable report on stdout\n\
       --help    this text\n\
     \n\
     EXIT CODES:\n\
       0  clean   2  findings   1  I/O error\n"
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("mrmc-devlint: unknown option `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
            other => {
                if root.replace(PathBuf::from(other)).is_some() {
                    eprintln!("mrmc-devlint: more than one ROOT argument\n\n{}", usage());
                    return ExitCode::from(2);
                }
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    match mrmc_devlint::lint_workspace(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        Err(err) => {
            eprintln!("mrmc-devlint: {err}");
            ExitCode::FAILURE
        }
    }
}
