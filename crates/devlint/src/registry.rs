//! D007 — cross-registry sync between telemetry emission sites and the
//! `mrmc-obs` registries.
//!
//! The obs crate declares two closed registries: the counter-name
//! consts plus `COUNTER_NAMES` in `crates/obs/src/counters.rs`, and the
//! event-kind strings in `EVENT_KINDS` mirrored by `Event::kind()`'s
//! match arms in `crates/obs/src/event.rs`. PR 6 guarded them with
//! in-crate tests; devlint turns the same contract into a lint so a
//! drifted registry fails `mrmc devlint` (and CI) with a pointed
//! diagnostic instead of a distant test assertion:
//!
//! * a `pub const` counter name not listed in `COUNTER_NAMES`;
//! * a `Event::kind()` match arm returning a literal missing from
//!   `EVENT_KINDS`, or an `EVENT_KINDS` entry no arm returns;
//! * an `Event::Counter` emission outside the obs crate whose `name:`
//!   is a string literal instead of a `counters::*` const — literals
//!   bypass the registry and drift silently.
//!
//! This pass reads **raw** (unblanked) text: the registries are string
//! tables, so the string contents are the data.

use crate::finding::Finding;
use crate::scan::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One workspace source file as the registry pass needs it: the raw
/// text (string literals intact) plus the parsed form (test regions).
pub struct SourceText {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Raw file contents.
    pub raw: String,
    /// Lexed form (for `in_test` and suppression pragmas).
    pub parsed: SourceFile,
}

const COUNTERS_RS: &str = "crates/obs/src/counters.rs";
const EVENT_RS: &str = "crates/obs/src/event.rs";

// Spelled via concat! so devlint's own raw source never contains the
// contiguous needles it hunts for (the D007 pass reads unblanked text).
const EVENT_COUNTER_NEEDLE: &str = concat!("Event::", "Counter");
const NAME_FIELD_NEEDLE: &str = concat!("name", ":");

/// Run the D007 pass over the workspace's files. Findings are
/// unsuppressed; the caller applies pragmas.
pub fn lint_registry(files: &[SourceText]) -> Vec<Finding> {
    let mut out = Vec::new();
    if let Some(counters) = files.iter().find(|f| f.rel_path == COUNTERS_RS) {
        check_counter_registry(counters, &mut out);
    }
    if let Some(event) = files.iter().find(|f| f.rel_path == EVENT_RS) {
        check_event_kinds(event, &mut out);
    }
    for file in files {
        if !file.rel_path.starts_with("crates/obs/") {
            check_literal_counter_names(file, &mut out);
        }
    }
    out.sort_by(|a, b| (a.file.clone(), a.line, a.code).cmp(&(b.file.clone(), b.line, b.code)));
    out
}

/// Every `pub const NAME: &str = "…";` in counters.rs must appear in
/// the `COUNTER_NAMES` slice.
fn check_counter_registry(counters: &SourceText, out: &mut Vec<Finding>) {
    let mut consts: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, line) in counters.raw.lines().enumerate() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("pub const ") {
            if let Some((name, ty)) = rest.split_once(':') {
                let name = name.trim();
                if ty.contains("str") && name.bytes().all(|b| b.is_ascii_uppercase() || b == b'_') {
                    consts.insert(name.to_string(), idx + 1);
                }
            }
        }
    }
    let listed = slice_region(&counters.raw, "COUNTER_NAMES")
        .map(|region| {
            idents_in(&region)
                .into_iter()
                .filter(|i| i.bytes().all(|b| b.is_ascii_uppercase() || b == b'_'))
                .collect::<BTreeSet<_>>()
        })
        .unwrap_or_default();
    for (name, line) in &consts {
        if name != "COUNTER_NAMES" && !listed.contains(name) {
            out.push(
                Finding::new(
                    "D007",
                    &counters.rel_path,
                    *line,
                    format!("counter const `{name}` is not listed in COUNTER_NAMES"),
                )
                .with_suggestion("add it to the COUNTER_NAMES registry slice"),
            );
        }
    }
}

/// `Event::kind()`'s `=> "literal"` arms and the `EVENT_KINDS` slice
/// must be the same set.
fn check_event_kinds(event: &SourceText, out: &mut Vec<Finding>) {
    let Some(kinds_region) = slice_region(&event.raw, "EVENT_KINDS") else {
        return;
    };
    let kinds: BTreeSet<String> = string_literals(&kinds_region).into_iter().collect();
    let kinds_line = event
        .raw
        .lines()
        .position(|l| l.contains("EVENT_KINDS"))
        .map_or(0, |i| i + 1);

    let mut arms: BTreeMap<String, usize> = BTreeMap::new();
    let mut in_kind_fn = false;
    let mut depth: i64 = 0;
    for (idx, line) in event.raw.lines().enumerate() {
        if !in_kind_fn && line.contains("fn kind") {
            in_kind_fn = true;
            depth = 0;
        }
        if in_kind_fn {
            if let Some((_, rhs)) = line.split_once("=>") {
                if let Some(lit) = string_literals(rhs).into_iter().next() {
                    arms.entry(lit).or_insert(idx + 1);
                }
            }
            for c in line.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            in_kind_fn = false;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    if arms.is_empty() {
        return;
    }
    for (lit, line) in &arms {
        if !kinds.contains(lit) {
            out.push(
                Finding::new(
                    "D007",
                    &event.rel_path,
                    *line,
                    format!("Event::kind() returns `\"{lit}\"`, which is missing from EVENT_KINDS"),
                )
                .with_suggestion("add the kind to the EVENT_KINDS registry slice"),
            );
        }
    }
    for lit in &kinds {
        if !arms.contains_key(lit) {
            out.push(
                Finding::new(
                    "D007",
                    &event.rel_path,
                    kinds_line,
                    format!("EVENT_KINDS lists `\"{lit}\"`, but no Event::kind() arm returns it"),
                )
                .with_suggestion("remove the stale registry entry or add the event variant's arm"),
            );
        }
    }
}

/// `Event::Counter { name: "literal", … }` outside the obs crate: the
/// name must come from `mrmc_obs::counters::*` so the registry stays
/// the single source of truth.
fn check_literal_counter_names(file: &SourceText, out: &mut Vec<Finding>) {
    // Blanked lines, not raw: a comment discussing the pattern must not
    // match, and blanking preserves the `"` delimiters this check keys on.
    let code_lines = &file.parsed.code_lines;
    for (idx, line) in code_lines.iter().enumerate() {
        if file.parsed.in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        if !line.contains(EVENT_COUNTER_NEEDLE) {
            continue;
        }
        // The `name:` field may sit on this line or a continuation.
        for (off, candidate) in code_lines[idx..].iter().take(6).enumerate() {
            let Some(pos) = candidate.find(NAME_FIELD_NEEDLE) else {
                continue;
            };
            let value = candidate[pos + NAME_FIELD_NEEDLE.len()..].trim_start();
            if value.starts_with('"') {
                out.push(
                    Finding::new(
                        "D007",
                        &file.rel_path,
                        idx + 1 + off,
                        "Event::Counter emitted with a literal name — it bypasses the COUNTER_NAMES registry",
                    )
                    .with_suggestion("use a const from mrmc_obs::counters instead of a string literal"),
                );
            }
            break;
        }
    }
}

/// The text from the line containing `marker` through the closing `];`.
fn slice_region(raw: &str, marker: &str) -> Option<String> {
    let mut region = String::new();
    let mut active = false;
    for line in raw.lines() {
        if !active && line.contains(marker) && line.contains('[') {
            active = true;
        }
        if active {
            region.push_str(line);
            region.push('\n');
            if line.contains("];") {
                return Some(region);
            }
        }
    }
    active.then_some(region)
}

/// All identifiers in `text`.
fn idents_in(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// All `"…"` literal contents in `text` (escape-naive, fine for
/// registry tables of plain identifiers).
fn string_literals(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur: Option<String> = None;
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        match cur.as_mut() {
            None => {
                if c == '"' {
                    cur = Some(String::new());
                }
            }
            Some(s) => match c {
                '"' => {
                    out.push(std::mem::take(s));
                    cur = None;
                }
                '\\' => {
                    let _ = chars.next();
                }
                _ => s.push(c),
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(rel_path: &str, raw: &str) -> SourceText {
        SourceText {
            rel_path: rel_path.to_string(),
            raw: raw.to_string(),
            parsed: SourceFile::parse(rel_path, raw),
        }
    }

    #[test]
    fn unlisted_counter_const_is_flagged() {
        let counters = st(
            COUNTERS_RS,
            "pub const SOLVER_COLORS: &str = \"solver_colors\";\npub const NEW_ONE: &str = \"new_one\";\npub const COUNTER_NAMES: &[&str] = &[SOLVER_COLORS];\n",
        );
        let f = lint_registry(&[counters]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "D007");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("NEW_ONE"));
    }

    #[test]
    fn listed_counter_consts_pass() {
        let counters = st(
            COUNTERS_RS,
            "pub const A: &str = \"a\";\npub const B: &str = \"b\";\npub const COUNTER_NAMES: &[&str] = &[\n    A,\n    B,\n];\n",
        );
        assert!(lint_registry(&[counters]).is_empty());
    }

    #[test]
    fn kind_arm_and_registry_must_agree() {
        let event = st(
            EVENT_RS,
            "pub const EVENT_KINDS: &[&str] = &[\"alpha\", \"gone\"];\nimpl Event {\n    pub fn kind(&self) -> &'static str {\n        match self {\n            Event::Alpha { .. } => \"alpha\",\n            Event::Beta { .. } => \"beta\",\n        }\n    }\n}\n",
        );
        let f = lint_registry(&[event]);
        let msgs: Vec<&str> = f.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(f.len(), 2);
        assert!(msgs.iter().any(|m| m.contains("beta")));
        assert!(msgs.iter().any(|m| m.contains("gone")));
    }

    #[test]
    fn literal_counter_name_outside_obs_is_flagged() {
        let user = st(
            "crates/core/src/x.rs",
            "fn f() {\n    emit(Event::Counter {\n        name: \"ad_hoc\",\n        value: 1,\n    });\n}\n",
        );
        let f = lint_registry(&[user]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "D007");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn const_counter_name_outside_obs_passes() {
        let user = st(
            "crates/core/src/x.rs",
            "fn f() { emit(Event::Counter { name: counters::SAT_CACHE_HITS, value: 1 }); }\n",
        );
        assert!(lint_registry(&[user]).is_empty());
    }

    #[test]
    fn literal_counter_name_in_tests_is_fine() {
        let user = st(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn f() { emit(Event::Counter { name: \"scratch\", value: 1 }); }\n}\n",
        );
        assert!(lint_registry(&[user]).is_empty());
    }
}
