//! The token-level source scanner devlint is built on.
//!
//! devlint deliberately has **no** dependency on `syn` or any other
//! parser crate — the workspace is hermetic, and the hazards it hunts
//! (hash-order iteration, wall-clock reads, unscoped threads, panics in
//! request paths) are recognizable from a comment/string-stripped token
//! stream. [`SourceFile::parse`] runs a small lexer over one `.rs` file
//! and produces:
//!
//! * `code_lines` — the source with comments and string/char literal
//!   *contents* blanked out (structure preserved, so column positions and
//!   line numbers survive). Rules match tokens against these lines and
//!   can never be fooled by a hazard-shaped word inside a string or a
//!   doc example;
//! * `in_test` — a per-line flag marking `#[cfg(test)] mod … { … }`
//!   regions, so rules about *shipped* behavior skip test code;
//! * `pragmas` — parsed `// devlint::allow(D00x): reason` suppressions,
//!   each bound to the line it governs (its own line for a trailing
//!   comment, the next line for a comment on its own line);
//! * `pragma_issues` — malformed pragmas (no code list, empty reason),
//!   which rule `D000` turns into findings: a suppression without a
//!   reason is itself a defect.

/// One parsed suppression pragma.
#[derive(Debug, Clone, PartialEq)]
pub struct Pragma {
    /// 1-based line of the pragma comment itself.
    pub at_line: usize,
    /// 1-based line the suppression applies to.
    pub applies_to: usize,
    /// The D-codes suppressed, e.g. `["D001"]`.
    pub codes: Vec<String>,
    /// The mandatory justification after the `:`.
    pub reason: String,
}

/// A malformed suppression pragma (rule `D000`'s raw material).
#[derive(Debug, Clone, PartialEq)]
pub struct PragmaIssue {
    /// 1-based line of the pragma comment.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// One lexed `.rs` file; see the module docs for the fields' contracts.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Comment- and literal-blanked source, split into lines.
    pub code_lines: Vec<String>,
    /// Per-line: inside a `#[cfg(test)] mod … { … }` region.
    pub in_test: Vec<bool>,
    /// Parsed suppression pragmas.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas.
    pub pragma_issues: Vec<PragmaIssue>,
}

/// Lexer state while sweeping the raw text.
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* … */`.
    BlockComment(u32),
    Str,
    /// Number of `#`s closing the raw string.
    RawStr(u32),
}

impl SourceFile {
    /// Lex `text` into blanked code lines, test regions, and pragmas.
    pub fn parse(rel_path: impl Into<String>, text: &str) -> SourceFile {
        let (code, comments) = blank(text);
        let code_lines: Vec<String> = split_lines(&code);
        let in_test = test_regions(&code_lines);
        let mut pragmas = Vec::new();
        let mut pragma_issues = Vec::new();
        for (line_idx, comment) in comments {
            let Some(body) = pragma_body(&comment) else {
                continue;
            };
            let line_no = line_idx + 1;
            match parse_pragma(body) {
                Ok((codes, reason)) => {
                    // A trailing pragma governs its own line; a pragma on
                    // an otherwise-blank line governs the next line.
                    let own_code = code_lines
                        .get(line_idx)
                        .is_some_and(|l| !l.trim().is_empty());
                    pragmas.push(Pragma {
                        at_line: line_no,
                        applies_to: if own_code { line_no } else { line_no + 1 },
                        codes,
                        reason,
                    });
                }
                Err(message) => pragma_issues.push(PragmaIssue {
                    line: line_no,
                    message,
                }),
            }
        }
        SourceFile {
            rel_path: rel_path.into(),
            code_lines,
            in_test,
            pragmas,
            pragma_issues,
        }
    }

    /// `true` when a well-formed pragma suppresses `code` on `line`
    /// (1-based).
    pub fn suppressed(&self, code: &str, line: usize) -> bool {
        self.pragmas
            .iter()
            .any(|p| p.applies_to == line && p.codes.iter().any(|c| c == code))
    }
}

/// Blank comments and literal contents out of `text`, preserving line
/// structure. Returns the blanked text plus every line comment's body
/// (0-based line index, text after `//`) for pragma parsing.
fn blank(text: &str) -> (String, Vec<(usize, String)>) {
    let mut out = String::with_capacity(text.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut state = State::Code;
    let mut line = 0usize;
    let mut current_comment = String::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    current_comment.clear();
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                    continue;
                }
                // Raw strings: r"…", r#"…"#, br#"…"#, … — scan the hash
                // run between `r` and the opening quote.
                if c == 'r' && matches!(next, Some('"' | '#')) && !prev_is_ident(&out) {
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        out.pop();
                        out.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal vs lifetime: a literal closes within a
                    // few chars (`'a'`, `'\n'`, `'\u{1F600}'`); a lifetime
                    // never has a closing quote before a non-ident char.
                    if let Some(len) = char_literal_len(&bytes[i..]) {
                        out.push('\'');
                        for _ in 1..len - 1 {
                            out.push(' ');
                        }
                        out.push('\'');
                        i += len;
                        continue;
                    }
                }
                out.push(c);
                if c == '\n' {
                    line += 1;
                }
                i += 1;
            }
            State::LineComment => {
                if c == '\n' {
                    comments.push((line, std::mem::take(&mut current_comment)));
                    out.push('\n');
                    line += 1;
                    state = State::Code;
                } else {
                    current_comment.push(c);
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else {
                    if c == '\n' {
                        out.push('\n');
                        line += 1;
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' && next.is_some() {
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    out.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    if c == '\n' {
                        out.push('\n');
                        line += 1;
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes[i + 1..], hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    if c == '\n' {
                        out.push('\n');
                        line += 1;
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
            }
        }
    }
    if let State::LineComment = state {
        comments.push((line, current_comment));
    }
    (out, comments)
}

/// `true` when the blanked output so far ends in an identifier character
/// (so an `r` there is part of a name like `for` or `var`, not a raw
/// string prefix).
fn prev_is_ident(out: &str) -> bool {
    out.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Length in chars of the char literal starting at `rest[0] == '\''`, or
/// `None` when this `'` opens a lifetime.
fn char_literal_len(rest: &[char]) -> Option<usize> {
    match rest.get(1)? {
        '\\' => {
            // Escape: scan to the closing quote (bounded — `'\u{10FFFF}'`
            // is the longest legal form).
            for (k, &c) in rest.iter().enumerate().skip(2).take(10) {
                if c == '\'' {
                    return Some(k + 1);
                }
            }
            None
        }
        _ => (rest.get(2)? == &'\'').then_some(3),
    }
}

/// `true` when `rest` starts with `hashes` `#` characters.
fn closes_raw(rest: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| rest.get(k) == Some(&'#'))
}

fn split_lines(text: &str) -> Vec<String> {
    text.split('\n').map(str::to_owned).collect()
}

/// Mark every line inside a `#[cfg(test)] mod … { … }` region.
fn test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    // Brace depth at which the innermost test region opened; `None` when
    // outside any test region. Test modules don't nest in practice, but a
    // stack keeps the bookkeeping honest if they ever do.
    let mut region_depth: Option<i64> = None;
    for (idx, line) in code_lines.iter().enumerate() {
        let trimmed = line.trim();
        if region_depth.is_some() {
            in_test[idx] = true;
        }
        if trimmed.contains("#[cfg(test)]") {
            pending_attr = true;
        }
        let opens_test_mod = pending_attr
            && trimmed.contains("mod")
            && trimmed.contains('{')
            && region_depth.is_none();
        if opens_test_mod {
            region_depth = Some(depth);
            in_test[idx] = true;
            pending_attr = false;
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if region_depth == Some(depth) {
                        region_depth = None;
                    }
                }
                _ => {}
            }
        }
        if pending_attr && !trimmed.is_empty() && !trimmed.starts_with("#[") && !opens_test_mod {
            // The attribute attached to something that is not a
            // brace-opening mod on the same line (e.g. a single function);
            // without its braces tracked we conservatively drop it.
            if !trimmed.contains("mod") {
                pending_attr = false;
            }
        }
    }
    in_test
}

/// The pragma body (`devlint::allow(...)...`) of a line comment, if the
/// comment is one. Leading doc-comment markers and whitespace are
/// tolerated.
fn pragma_body(comment: &str) -> Option<&str> {
    let t = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim();
    t.starts_with("devlint::allow").then_some(t)
}

/// Parse `devlint::allow(D001, D005): reason` into codes and reason.
/// `body` must start at the `devlint::allow` token (comment markers
/// already stripped). Public so meta-tests can audit pragmas directly.
pub fn parse_pragma(body: &str) -> Result<(Vec<String>, String), String> {
    let Some(rest) = body.strip_prefix("devlint::allow") else {
        return Err("pragma body must start with `devlint::allow`".into());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("suppression pragma needs a code list: devlint::allow(D00x): reason".into());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed code list in suppression pragma".into());
    };
    let codes: Vec<String> = rest[..close]
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    if codes.is_empty() {
        return Err("empty code list in suppression pragma".into());
    }
    for code in &codes {
        let ok = code.len() == 4
            && code.starts_with('D')
            && code[1..].bytes().all(|b| b.is_ascii_digit());
        if !ok {
            return Err(format!("`{code}` is not a D-code"));
        }
    }
    let tail = rest[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix(':') else {
        return Err("suppression pragma needs a `: reason` — justify the allowance".into());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("suppression pragma has an empty reason — justify the allowance".into());
    }
    Ok((codes, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = \"HashMap in a string\"; // HashMap in a comment\nlet b = 2; /* HashMap\nstill comment */ let c = 3;\n",
        );
        assert!(!f.code_lines[0].contains("HashMap"));
        assert!(f.code_lines[0].contains("let a ="));
        assert!(!f.code_lines[1].contains("HashMap"));
        assert!(f.code_lines[2].contains("let c = 3;"));
        assert_eq!(f.code_lines.len(), 4);
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = r#\"Instant\"#;\nlet b = 'I';\nfn f<'a>(x: &'a str) {}\n",
        );
        assert!(!f.code_lines[0].contains("Instant"));
        assert!(!f.code_lines[1].contains('I'));
        // Lifetimes survive blanking (they are code, not literals).
        assert!(f.code_lines[2].contains("&'a str"));
    }

    #[test]
    fn trailing_pragma_governs_its_own_line() {
        let f = SourceFile::parse(
            "x.rs",
            "use std::time::Instant; // devlint::allow(D002): test clock\n",
        );
        assert_eq!(f.pragmas.len(), 1);
        assert_eq!(f.pragmas[0].applies_to, 1);
        assert_eq!(f.pragmas[0].codes, vec!["D002".to_string()]);
        assert_eq!(f.pragmas[0].reason, "test clock");
        assert!(f.suppressed("D002", 1));
        assert!(!f.suppressed("D001", 1));
    }

    #[test]
    fn own_line_pragma_governs_the_next_line() {
        let f = SourceFile::parse(
            "x.rs",
            "// devlint::allow(D002, D003): harness timing\nuse std::time::Instant;\n",
        );
        assert_eq!(f.pragmas.len(), 1);
        assert_eq!(f.pragmas[0].applies_to, 2);
        assert!(f.suppressed("D002", 2));
        assert!(f.suppressed("D003", 2));
    }

    #[test]
    fn reasonless_pragma_is_an_issue_not_a_suppression() {
        let f = SourceFile::parse("x.rs", "// devlint::allow(D002)\nlet t = Instant::now();\n");
        assert!(f.pragmas.is_empty());
        assert_eq!(f.pragma_issues.len(), 1);
        assert!(f.pragma_issues[0].message.contains("reason"));
        assert!(!f.suppressed("D002", 2));
    }

    #[test]
    fn bad_code_in_pragma_is_an_issue() {
        let f = SourceFile::parse("x.rs", "// devlint::allow(X001): nope\n");
        assert_eq!(f.pragma_issues.len(), 1);
        assert!(f.pragma_issues[0].message.contains("X001"));
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let text = "fn shipped() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn also_shipped() {}\n";
        let f = SourceFile::parse("x.rs", text);
        assert_eq!(
            f.in_test,
            vec![false, false, true, true, true, false, false]
        );
    }
}
