//! `mrmc-devlint` — a workspace-level determinism & hermeticity static
//! analyzer with stable `D0xx` codes, enforced in CI.
//!
//! The reproduction's numerics promise results that are bit-identical at
//! any thread count, caches that are bitwise-exact, and a workspace with
//! no external dependencies. Those promises are enforced *dynamically*
//! by consistency tests — but the hazards that break them are
//! *statically recognizable* in source: hash-order iteration reaching an
//! output, a wall-clock read in a result path, an unscoped thread, an
//! unordered float reduction, a registry drifting from its emission
//! sites. devlint scans the workspace's own `.rs` files and
//! `Cargo.toml`s with a small hermetic lexer (no `syn`, no external
//! crates) and reports findings in the same diagnostic vocabulary
//! `mrmc-analysis` gives models and formulas.
//!
//! The passes and their stable codes are documented in [`finding`];
//! the scanner's token-level architecture and its accepted blind spots
//! are documented in [`scan`] and [`rules`] (and in `docs/DESIGN.md`).
//!
//! Findings are suppressible only at the offending line, only with a
//! reason:
//!
//! ```text
//! let t = Instant::now(); // devlint::allow(D002): feeds logs, never results
//! ```
//!
//! A malformed, reasonless, or unused pragma is itself a finding
//! (`D000`) — the suppression ledger can't rot silently.

pub mod finding;
pub mod manifest;
pub mod registry;
pub mod rules;
pub mod scan;

pub use finding::{Finding, Report, Severity};
pub use registry::SourceText;
pub use scan::SourceFile;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories the workspace walk never descends into: build output,
/// VCS internals, experiment scratch, and the devlint golden corpus
/// (whose fixtures are hazards *on purpose*).
const SKIP_DIRS: &[&str] = &["target", "experiments-out", "devlint_corpus"];

/// Lint a single Rust source in isolation: run every source-level pass,
/// apply suppression pragmas, and surface pragma hygiene (`D000`).
/// This is the entry point the golden corpus exercises; `rel_path` is a
/// virtual workspace-relative path that selects each pass's scope.
pub fn lint_rust_source(rel_path: &str, text: &str) -> Vec<Finding> {
    let parsed = SourceFile::parse(rel_path, text);
    let raw = rules::lint_source(&parsed);
    let mut out = apply_suppressions(&parsed, raw);
    out.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    out
}

/// Lint every `.rs` file and `Cargo.toml` under `root` (the workspace
/// checkout) and return the merged report, sorted by file, line, code.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut rs_paths: Vec<PathBuf> = Vec::new();
    let mut manifest_paths: Vec<PathBuf> = Vec::new();
    walk(root, &mut rs_paths, &mut manifest_paths)?;
    rs_paths.sort();
    manifest_paths.sort();

    let mut findings: Vec<Finding> = Vec::new();
    for path in &manifest_paths {
        let text = fs::read_to_string(path)?;
        findings.extend(manifest::lint_manifest(&rel_of(root, path), &text));
    }

    let mut sources: Vec<SourceText> = Vec::new();
    for path in &rs_paths {
        let raw = fs::read_to_string(path)?;
        let rel = rel_of(root, path);
        let parsed = SourceFile::parse(rel.clone(), &raw);
        sources.push(SourceText {
            rel_path: rel,
            raw,
            parsed,
        });
    }

    // Per-file rule findings plus the cross-file registry pass, grouped
    // by file so suppression (and pragma-usage tracking) sees a file's
    // complete raw finding set at once.
    let mut per_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for source in &sources {
        let raw = rules::lint_source(&source.parsed);
        if !raw.is_empty() {
            per_file
                .entry(source.rel_path.clone())
                .or_default()
                .extend(raw);
        }
    }
    for finding in registry::lint_registry(&sources) {
        per_file
            .entry(finding.file.clone())
            .or_default()
            .push(finding);
    }
    for source in &sources {
        let raw = per_file.remove(&source.rel_path).unwrap_or_default();
        findings.extend(apply_suppressions(&source.parsed, raw));
    }
    // Registry findings can only anchor in scanned files, so nothing
    // should remain — but never drop a finding on the floor.
    for (_, leftover) in per_file {
        findings.extend(leftover);
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.code, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.code,
            b.message.as_str(),
        ))
    });
    let mut report = Report::new();
    report.extend(findings);
    Ok(report)
}

/// Filter `raw` through `file`'s suppression pragmas. Surviving findings
/// come back together with `D000` findings for malformed pragmas and
/// for pragmas that suppressed nothing.
pub fn apply_suppressions(file: &SourceFile, raw: Vec<Finding>) -> Vec<Finding> {
    let mut used = vec![false; file.pragmas.len()];
    let mut out = Vec::new();
    for finding in raw {
        let mut suppressed = false;
        for (i, pragma) in file.pragmas.iter().enumerate() {
            if pragma.applies_to == finding.line && pragma.codes.iter().any(|c| c == finding.code) {
                used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(finding);
        }
    }
    for issue in &file.pragma_issues {
        out.push(pragma_finding(&file.rel_path, issue.line, &issue.message));
    }
    for (i, pragma) in file.pragmas.iter().enumerate() {
        if !used[i] {
            out.push(pragma_finding(
                &file.rel_path,
                pragma.at_line,
                &format!(
                    "suppression pragma for {} matches no finding — remove it or fix its placement",
                    pragma.codes.join(", ")
                ),
            ));
        }
    }
    out
}

fn pragma_finding(rel_path: &str, line: usize, message: &str) -> Finding {
    Finding::new("D000", rel_path, line, message).with_suggestion(
        "pragmas must read `devlint::allow(D00x): <non-empty reason>` and suppress a real finding",
    )
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Recursive, name-sorted walk collecting `.rs` files and `Cargo.toml`s,
/// skipping build output, dot-directories, and the golden corpus.
fn walk(dir: &Path, rs: &mut Vec<PathBuf>, manifests: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            walk(&path, rs, manifests)?;
        } else if name == "Cargo.toml" {
            manifests.push(path);
        } else if name.ends_with(".rs") {
            rs.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppressed_finding_is_dropped_and_pragma_counts_as_used() {
        let src = "fn f() {\n    let _t = std::time::Instant::now(); // devlint::allow(D002): feeds logs only\n}\n";
        assert!(lint_rust_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unused_pragma_is_a_d000_finding() {
        let src = "fn f() {\n    // devlint::allow(D002): nothing here reads a clock\n    let x = 1;\n    let _ = x;\n}\n";
        let f = lint_rust_source("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "D000");
        assert!(f[0].message.contains("matches no finding"));
    }

    #[test]
    fn reasonless_pragma_is_d000_and_finding_survives() {
        let src = "fn f() {\n    let _t = std::time::Instant::now(); // devlint::allow(D002)\n}\n";
        let codes: Vec<_> = lint_rust_source("crates/core/src/x.rs", src)
            .iter()
            .map(|f| f.code)
            .collect();
        assert_eq!(codes, vec!["D000", "D002"]);
    }

    #[test]
    fn pragma_must_name_the_right_code() {
        let src = "fn f() {\n    let _t = std::time::Instant::now(); // devlint::allow(D001): wrong code\n}\n";
        let codes: Vec<_> = lint_rust_source("crates/core/src/x.rs", src)
            .iter()
            .map(|f| f.code)
            .collect();
        // The D002 finding survives and the D001 pragma is unused.
        assert_eq!(codes, vec!["D000", "D002"]);
    }
}
