//! Manifest-level devlint passes: D006 (hermeticity) and D008
//! (workspace lint-gate).
//!
//! A tiny line-oriented TOML reader — section headers, `key = value`
//! lines, `#` comments outside strings — is enough for the shapes our
//! manifests use; devlint does not need a general TOML parser any more
//! than it needs `syn`.
//!
//! * **D006** — every entry in a `[dependencies]`-like section must be a
//!   workspace-internal dependency: `path = …` or `workspace = true`.
//!   Anything that could reach a registry or the network (`version`,
//!   `git`, a bare version string) breaks the hermeticity contract.
//! * **D008** — the lint gate must stay centralized: the root manifest
//!   must carry `unsafe_code = "forbid"` and a non-empty pinned
//!   `[workspace.lints.clippy]` table, and every crate manifest must
//!   opt in via `[lints] workspace = true`.
//!
//! Suppression uses the TOML comment form of the same pragma:
//! `# devlint::allow(D006): <reason>` — trailing on the entry line, or
//! on its own line governing the next line.

use crate::finding::Finding;
use crate::scan::{parse_pragma, Pragma, PragmaIssue};

/// Lint one `Cargo.toml`. `rel_path == "Cargo.toml"` is treated as the
/// workspace root manifest; everything else as a crate manifest.
/// Suppressions are applied; malformed or unused pragmas come back as
/// `D000` findings.
pub fn lint_manifest(rel_path: &str, text: &str) -> Vec<Finding> {
    let lines: Vec<(String, Option<String>)> = text.lines().map(split_comment).collect();
    let (pragmas, pragma_issues) = collect_pragmas(&lines);

    let mut raw = Vec::new();
    d006_hermeticity(rel_path, &lines, &mut raw);
    d008_lint_gate(rel_path, &lines, &mut raw);

    let mut used = vec![false; pragmas.len()];
    let mut out: Vec<Finding> = Vec::new();
    for finding in raw {
        let suppressed = pragmas.iter().enumerate().any(|(i, p)| {
            let hit = p.applies_to == finding.line && p.codes.iter().any(|c| c == finding.code);
            if hit {
                used[i] = true;
            }
            hit
        });
        if !suppressed {
            out.push(finding);
        }
    }
    for issue in &pragma_issues {
        out.push(d000(rel_path, issue.line, &issue.message));
    }
    for (i, p) in pragmas.iter().enumerate() {
        if !used[i] {
            out.push(d000(
                rel_path,
                p.at_line,
                &format!(
                    "suppression pragma for {} matches no finding — remove it or fix its placement",
                    p.codes.join(", ")
                ),
            ));
        }
    }
    out.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    out
}

fn d000(rel_path: &str, line: usize, message: &str) -> Finding {
    Finding::new("D000", rel_path, line, message).with_suggestion(
        "pragmas must read `devlint::allow(D00x): <non-empty reason>` and suppress a real finding",
    )
}

/// Split one TOML line into its code part and its `#` comment body
/// (quote-aware, so a `#` inside a string stays code).
fn split_comment(line: &str) -> (String, Option<String>) {
    let b = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => {
                return (
                    line[..i].to_string(),
                    Some(line[i + 1..].trim().to_string()),
                );
            }
            _ => {}
        }
        i += 1;
    }
    (line.to_string(), None)
}

fn collect_pragmas(lines: &[(String, Option<String>)]) -> (Vec<Pragma>, Vec<PragmaIssue>) {
    let mut pragmas = Vec::new();
    let mut issues = Vec::new();
    for (idx, (code, comment)) in lines.iter().enumerate() {
        let Some(comment) = comment else { continue };
        if !comment.starts_with("devlint::allow") {
            continue;
        }
        let line_no = idx + 1;
        match parse_pragma(comment) {
            Ok((codes, reason)) => pragmas.push(Pragma {
                at_line: line_no,
                applies_to: if code.trim().is_empty() {
                    line_no + 1
                } else {
                    line_no
                },
                codes,
                reason,
            }),
            Err(message) => issues.push(PragmaIssue {
                line: line_no,
                message,
            }),
        }
    }
    (pragmas, issues)
}

/// `true` when `section` holds dependency entries.
fn is_dep_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section == "workspace.dependencies"
        || section.ends_with(".dependencies")
}

fn d006_hermeticity(rel_path: &str, lines: &[(String, Option<String>)], out: &mut Vec<Finding>) {
    let mut section = String::new();
    // `[dependencies.foo]` header-table form: remember the entry and
    // whether a hermetic key showed up before the section ended.
    let mut pending: Option<(String, usize, bool)> = None;
    for (idx, (code, _)) in lines.iter().enumerate() {
        let t = code.trim();
        if t.starts_with('[') {
            if let Some((name, line, ok)) = pending.take() {
                if !ok {
                    out.push(dep_finding(rel_path, line, &name));
                }
            }
            section = t.trim_matches(|c| c == '[' || c == ']').trim().to_string();
            if let Some(rest) = section.strip_prefix("dependencies.").or_else(|| {
                section
                    .strip_prefix("dev-dependencies.")
                    .or_else(|| section.strip_prefix("build-dependencies."))
            }) {
                pending = Some((rest.to_string(), idx + 1, false));
            }
            continue;
        }
        if t.is_empty() {
            continue;
        }
        if let Some(p) = pending.as_mut() {
            if is_hermetic_key_line(t) {
                p.2 = true;
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        let Some((name, value)) = t.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        // `foo.workspace = true` / `foo.path = "…"` dotted keys.
        if name.ends_with(".workspace") || name.ends_with(".path") {
            continue;
        }
        if value.contains("path") && value.contains('=') || value.contains("workspace = true") {
            let hermetic = value.split(',').any(|kv| {
                let kv = kv.trim_matches(|c: char| c == '{' || c == '}' || c.is_whitespace());
                kv.starts_with("path") || kv.replace(' ', "") == "workspace=true"
            });
            if hermetic {
                continue;
            }
        }
        out.push(dep_finding(rel_path, idx + 1, name));
    }
    if let Some((name, line, ok)) = pending {
        if !ok {
            out.push(dep_finding(rel_path, line, &name));
        }
    }
}

fn is_hermetic_key_line(t: &str) -> bool {
    let key = t.split('=').next().unwrap_or("").trim();
    key == "path" || (key == "workspace" && t.replace(' ', "").contains("workspace=true"))
}

fn dep_finding(rel_path: &str, line: usize, name: &str) -> Finding {
    Finding::new(
        "D006",
        rel_path,
        line,
        format!("dependency `{name}` is not workspace-internal — the build must stay hermetic"),
    )
    .with_suggestion("use `path = …` / `workspace = true`, or vendor the code into the workspace")
}

fn d008_lint_gate(rel_path: &str, lines: &[(String, Option<String>)], out: &mut Vec<Finding>) {
    let mut section = String::new();
    let mut has_forbid = false;
    let mut clippy_pins = 0usize;
    let mut lints_workspace = false;
    let mut has_package = false;
    for (code, _) in lines {
        let t = code.trim();
        if t.starts_with('[') {
            section = t.trim_matches(|c| c == '[' || c == ']').trim().to_string();
            continue;
        }
        if t.is_empty() {
            continue;
        }
        match section.as_str() {
            "workspace.lints.rust" if t.starts_with("unsafe_code") && t.contains("forbid") => {
                has_forbid = true;
            }
            "workspace.lints.clippy" if t.contains('=') => {
                clippy_pins += 1;
            }
            "lints" if t.replace(' ', "").starts_with("workspace=true") => {
                lints_workspace = true;
            }
            _ => {}
        }
        if section == "package" {
            has_package = true;
        }
    }
    if rel_path == "Cargo.toml" {
        if !has_forbid {
            out.push(
                Finding::new(
                    "D008",
                    rel_path,
                    0,
                    "root manifest does not forbid unsafe code for the workspace",
                )
                .with_suggestion("add `unsafe_code = \"forbid\"` under [workspace.lints.rust]"),
            );
        }
        if clippy_pins == 0 {
            out.push(
                Finding::new(
                    "D008",
                    rel_path,
                    0,
                    "root manifest has no pinned [workspace.lints.clippy] set",
                )
                .with_suggestion("pin the clippy lint set under [workspace.lints.clippy]"),
            );
        }
    } else if has_package && !lints_workspace {
        out.push(
            Finding::new(
                "D008",
                rel_path,
                0,
                "crate manifest does not opt into the workspace lint gate",
            )
            .with_suggestion("add `[lints]\\nworkspace = true`"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(rel_path: &str, text: &str) -> Vec<&'static str> {
        lint_manifest(rel_path, text)
            .iter()
            .map(|f| f.code)
            .collect()
    }

    const CRATE_OK: &str = "[package]\nname = \"x\"\n\n[dependencies]\nmrmc-core = { path = \"../core\" }\nmrmc-obs = { workspace = true }\n\n[lints]\nworkspace = true\n";

    #[test]
    fn workspace_internal_deps_pass() {
        assert!(codes("crates/x/Cargo.toml", CRATE_OK).is_empty());
    }

    #[test]
    fn registry_and_git_deps_are_flagged() {
        let bad = "[package]\nname = \"x\"\n\n[dependencies]\nserde = \"1\"\nrand = { version = \"0.8\" }\nfoo = { git = \"https://example.com/foo\" }\n\n[lints]\nworkspace = true\n";
        assert_eq!(
            codes("crates/x/Cargo.toml", bad),
            vec!["D006", "D006", "D006"]
        );
    }

    #[test]
    fn header_table_dep_without_path_is_flagged() {
        let bad = "[package]\nname = \"x\"\n\n[dependencies.serde]\nversion = \"1\"\n\n[lints]\nworkspace = true\n";
        assert_eq!(codes("crates/x/Cargo.toml", bad), vec!["D006"]);
        let ok = "[package]\nname = \"x\"\n\n[dependencies.mrmc-core]\npath = \"../core\"\n\n[lints]\nworkspace = true\n";
        assert!(codes("crates/x/Cargo.toml", ok).is_empty());
    }

    #[test]
    fn missing_lint_gate_is_d008() {
        let bad = "[package]\nname = \"x\"\n\n[dependencies]\n";
        assert_eq!(codes("crates/x/Cargo.toml", bad), vec!["D008"]);
    }

    #[test]
    fn root_manifest_needs_forbid_and_clippy_pins() {
        let good = "[workspace]\nmembers = [\"crates/*\"]\n\n[workspace.lints.rust]\nunsafe_code = \"forbid\"\n\n[workspace.lints.clippy]\ndbg_macro = \"deny\"\n";
        assert!(codes("Cargo.toml", good).is_empty());
        let bad = "[workspace]\nmembers = [\"crates/*\"]\n";
        assert_eq!(codes("Cargo.toml", bad), vec!["D008", "D008"]);
    }

    #[test]
    fn toml_pragma_suppresses_with_reason() {
        let t = "[package]\nname = \"x\"\n\n[dependencies]\nserde = \"1\" # devlint::allow(D006): vendoring tracked in issue 7\n\n[lints]\nworkspace = true\n";
        assert!(codes("crates/x/Cargo.toml", t).is_empty());
    }

    #[test]
    fn reasonless_toml_pragma_is_d000_and_does_not_suppress() {
        let t = "[package]\nname = \"x\"\n\n[dependencies]\nserde = \"1\" # devlint::allow(D006)\n\n[lints]\nworkspace = true\n";
        assert_eq!(codes("crates/x/Cargo.toml", t), vec!["D000", "D006"]);
    }

    #[test]
    fn unused_toml_pragma_is_d000() {
        let t = "[package]\nname = \"x\"\n\n[dependencies]\n# devlint::allow(D006): nothing here\nmrmc-core = { path = \"../core\" }\n\n[lints]\nworkspace = true\n";
        assert_eq!(codes("crates/x/Cargo.toml", t), vec!["D000"]);
    }
}
