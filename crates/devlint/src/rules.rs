//! The source-level devlint passes: D001–D005.
//!
//! Every pass works on a [`SourceFile`] — comment/string-blanked lines
//! plus test-region flags — and returns raw findings; suppression
//! pragmas are applied by the caller so that pragma *usage* can be
//! tracked (an unused pragma is a `D000` finding of its own).
//!
//! The passes are deliberately token-level. They do not type-check; they
//! recognize the shapes the determinism contract forbids:
//!
//! * **D001** — iteration over a `HashMap`/`HashSet` in an
//!   engine/result-path crate. A per-file taint set seeds on bindings
//!   and fields declared with hash-container types or constructors,
//!   propagates through simple re-bindings, and any method chain from a
//!   tainted name that reaches `.iter()`/`.keys()`/`.values()`/
//!   `.drain()`/`.into_iter()` — or a bare `for … in tainted` header —
//!   is flagged. Keyed access (`get`/`insert`/`entry`/`len`) stays
//!   allowed.
//! * **D002** — `Instant`/`SystemTime` tokens outside the bench/obs
//!   timing allowlist and outside test code.
//! * **D003** — `thread::spawn` anywhere: all parallelism must be
//!   structured through `thread::scope` (`scope.spawn` does not match).
//! * **D004** — atomic-float emulation (`fetch_*`/`compare_exchange`
//!   co-occurring with `to_bits`/`from_bits`) and reductions
//!   (`sum`/`fold`/`product`/`reduce`) chained onto hash-order
//!   iteration.
//! * **D005** — the panic family (`unwrap`/`expect`/`panic!`/…) in the
//!   `mrmc-server` request-handling sources.
//!
//! Known accepted holes (documented in DESIGN.md): a type alias hides
//! the container tokens from the taint seed, and taint is file-scoped,
//! not block-scoped.

use crate::finding::Finding;
use crate::scan::SourceFile;
use std::collections::BTreeSet;

/// Crates whose `src/` trees are result paths: hash-order iteration and
/// unordered reductions there can reach outputs.
const ENGINE_CRATES: &[&str] = &["analysis", "core", "ctmc", "mrm", "numerics", "sparse"];

/// Methods whose results observe hash order.
const ITER_METHODS: &[&str] = &[
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
];

/// Reduction adaptors: order-sensitive for floats.
const REDUCE_METHODS: &[&str] = &["fold", "product", "reduce", "sum"];

/// Methods that hand back (a guard over) the same container, so taint
/// flows through a `let` re-binding.
const PROPAGATING_METHODS: &[&str] = &[
    "as_mut",
    "as_ref",
    "borrow",
    "borrow_mut",
    "clone",
    "expect",
    "get_mut",
    "lock",
    "read",
    "unwrap",
    "write",
];

/// Read-modify-write atomic operations.
const ATOMIC_OPS: &[&str] = &[
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "fetch_xor",
];

/// Float/bit reinterpretation — the signature of atomic-float emulation.
const BIT_CASTS: &[&str] = &["from_bits", "to_bits"];

/// Panicking macros (rule D005).
const PANIC_MACROS: &[&str] = &["panic!", "todo!", "unimplemented!", "unreachable!"];

/// `true` for files under an engine crate's `src/` tree.
pub fn in_engine_src(rel_path: &str) -> bool {
    ENGINE_CRATES.iter().any(|c| {
        rel_path
            .strip_prefix("crates/")
            .and_then(|p| p.strip_prefix(c))
            .is_some_and(|p| p.starts_with("/src/"))
    })
}

/// `true` for files allowed to read wall clocks: the bench and obs
/// crates (timing is their job), plus integration-test and bench trees.
pub fn clock_allowlisted(rel_path: &str) -> bool {
    rel_path.starts_with("crates/bench/")
        || rel_path.starts_with("crates/obs/")
        || rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
        || rel_path.starts_with("tests/")
}

/// `true` for the `mrmc-server` request-handling sources (rule D005's
/// scope): the connection loop and the JSON codec it feeds.
pub fn server_request_path(rel_path: &str) -> bool {
    rel_path == "crates/server/src/lib.rs" || rel_path == "crates/server/src/json.rs"
}

/// Run every source-level pass over `file`. Findings are unsuppressed
/// and sorted by line, then code.
pub fn lint_source(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    d001_d004_hash_iteration(file, &mut out);
    d002_wall_clock(file, &mut out);
    d003_unscoped_spawn(file, &mut out);
    d004_atomic_float(file, &mut out);
    d005_server_panics(file, &mut out);
    out.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    out
}

// ---------------------------------------------------------------------------
// D001 + D004 (reduction half): hash-container taint analysis
// ---------------------------------------------------------------------------

fn d001_d004_hash_iteration(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_engine_src(&file.rel_path) {
        return;
    }
    let tainted = hash_tainted_idents(file);
    if tainted.is_empty() {
        return;
    }
    let text = file.code_lines.join("\n");
    let bytes = text.as_bytes();
    let line_starts = line_starts(&text);
    let mut seen: BTreeSet<(usize, &'static str)> = BTreeSet::new();

    for ident in &tainted {
        for pos in token_positions(&text, ident) {
            let methods = walk_chain(bytes, pos + ident.len());
            let mut saw_iter = false;
            for (name, at) in &methods {
                let line = line_of(&line_starts, *at);
                if file.in_test.get(line - 1).copied().unwrap_or(false) {
                    continue;
                }
                if !saw_iter && ITER_METHODS.contains(&name.as_str()) {
                    saw_iter = true;
                    if seen.insert((line, "D001")) {
                        out.push(
                            Finding::new(
                                "D001",
                                &file.rel_path,
                                line,
                                format!(
                                    "iteration over hash-ordered container `{ident}` via `.{name}()` — order can reach results"
                                ),
                            )
                            .with_suggestion(
                                "use a BTreeMap/BTreeSet, or collect and sort before iterating",
                            ),
                        );
                    }
                } else if saw_iter
                    && REDUCE_METHODS.contains(&name.as_str())
                    && seen.insert((line, "D004"))
                {
                    out.push(
                        Finding::new(
                            "D004",
                            &file.rel_path,
                            line,
                            format!(
                                "`.{name}()` reduction over hash-ordered iteration of `{ident}` — float reductions must have a pinned order"
                            ),
                        )
                        .with_suggestion(
                            "iterate a BTreeMap or a sorted buffer, and sum via the compensated helpers",
                        ),
                    );
                }
            }
        }
    }

    // Bare `for x in tainted` headers (no method chain to walk).
    for (idx, line) in file.code_lines.iter().enumerate() {
        if file.in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let Some(for_pos) = token_positions(line, "for").first().copied() else {
            continue;
        };
        let after_for = &line[for_pos + 3..];
        let Some(in_pos) = token_positions(after_for, "in").first().copied() else {
            continue;
        };
        let after_in = &after_for[in_pos + 2..];
        for ident in &tainted {
            for pos in token_positions(after_in, ident) {
                let rest = after_in[pos + ident.len()..].trim_start();
                let direct = !rest.starts_with('.')
                    && !rest.starts_with('(')
                    && !rest.starts_with('[')
                    && !rest.starts_with("::");
                if direct && seen.insert((idx + 1, "D001")) {
                    out.push(
                        Finding::new(
                            "D001",
                            &file.rel_path,
                            idx + 1,
                            format!(
                                "`for … in {ident}` iterates a hash-ordered container — order can reach results"
                            ),
                        )
                        .with_suggestion(
                            "use a BTreeMap/BTreeSet, or collect and sort before iterating",
                        ),
                    );
                }
            }
        }
    }
}

/// The file's hash-container taint set: names declared with
/// `HashMap`/`HashSet` types or constructors, closed under simple
/// re-bindings (`let a = map;`, `let g = map.lock().unwrap();`).
fn hash_tainted_idents(file: &SourceFile) -> BTreeSet<String> {
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    for line in &file.code_lines {
        let hashy = contains_token(line, "HashMap") || contains_token(line, "HashSet");
        if !hashy {
            continue;
        }
        if let Some(name) = let_binding_name(line) {
            tainted.insert(name);
        }
        for tok in ["HashMap", "HashSet"] {
            for pos in token_positions(line, tok) {
                if let Some(name) = ident_before_colon(line, pos) {
                    tainted.insert(name);
                }
            }
        }
    }
    // Close under re-binding: `let alias = <expr over tainted>` where the
    // chain from the tainted name only passes through guards/clones.
    loop {
        let mut changed = false;
        for line in &file.code_lines {
            let Some(name) = let_binding_name(line) else {
                continue;
            };
            if tainted.contains(&name) {
                continue;
            }
            let Some(rhs) = binding_rhs(line) else {
                continue;
            };
            let rhs_bytes = rhs.as_bytes();
            let propagates = tainted.iter().any(|t| {
                token_positions(rhs, t).iter().any(|&pos| {
                    walk_chain(rhs_bytes, pos + t.len())
                        .iter()
                        .all(|(m, _)| PROPAGATING_METHODS.contains(&m.as_str()))
                })
            });
            if propagates {
                tainted.insert(name);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    tainted
}

// ---------------------------------------------------------------------------
// D002: wall-clock reads
// ---------------------------------------------------------------------------

fn d002_wall_clock(file: &SourceFile, out: &mut Vec<Finding>) {
    if clock_allowlisted(&file.rel_path) {
        return;
    }
    for (idx, line) in file.code_lines.iter().enumerate() {
        if file.in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for tok in ["Instant", "SystemTime"] {
            if contains_token(line, tok) {
                out.push(
                    Finding::new(
                        "D002",
                        &file.rel_path,
                        idx + 1,
                        format!("wall-clock read (`{tok}`) outside the bench/obs timing allowlist"),
                    )
                    .with_suggestion(
                        "route timing through mrmc-obs, or move the measurement into crates/bench",
                    ),
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// D003: unscoped threads
// ---------------------------------------------------------------------------

fn d003_unscoped_spawn(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.code_lines.iter().enumerate() {
        for pos in token_positions(line, "thread") {
            if line[pos + "thread".len()..].trim_start().starts_with("::")
                && line[pos + "thread".len()..]
                    .trim_start()
                    .trim_start_matches(':')
                    .trim_start()
                    .starts_with("spawn")
            {
                out.push(
                    Finding::new(
                        "D003",
                        &file.rel_path,
                        idx + 1,
                        "`thread::spawn` outside `thread::scope` — all parallelism must be scoped",
                    )
                    .with_suggestion(
                        "restructure under std::thread::scope so joins are structural",
                    ),
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// D004 (atomic half): atomic-float emulation
// ---------------------------------------------------------------------------

fn d004_atomic_float(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_engine_src(&file.rel_path) {
        return;
    }
    for (idx, line) in file.code_lines.iter().enumerate() {
        if file.in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let atomic = ATOMIC_OPS.iter().any(|t| contains_token(line, t));
        let bits = BIT_CASTS.iter().any(|t| contains_token(line, t));
        if atomic && bits {
            out.push(
                Finding::new(
                    "D004",
                    &file.rel_path,
                    idx + 1,
                    "atomic-float emulation (atomic RMW combined with to_bits/from_bits) — accumulation order is unordered",
                )
                .with_suggestion(
                    "accumulate per-thread and combine in a pinned order via the compensated helpers",
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// D005: panics in server request paths
// ---------------------------------------------------------------------------

fn d005_server_panics(file: &SourceFile, out: &mut Vec<Finding>) {
    if !server_request_path(&file.rel_path) {
        return;
    }
    for (idx, line) in file.code_lines.iter().enumerate() {
        if file.in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let hit = if line.contains(".unwrap()") {
            Some("`.unwrap()`")
        } else if line.contains(".expect(") {
            Some("`.expect(…)`")
        } else {
            PANIC_MACROS
                .iter()
                .find(|m| {
                    let stem = &m[..m.len() - 1];
                    token_positions(line, stem)
                        .iter()
                        .any(|&p| line[p + stem.len()..].starts_with('!'))
                })
                .map(|m| match *m {
                    "panic!" => "`panic!`",
                    "todo!" => "`todo!`",
                    "unimplemented!" => "`unimplemented!`",
                    _ => "`unreachable!`",
                })
        };
        if let Some(what) = hit {
            out.push(
                Finding::new(
                    "D005",
                    &file.rel_path,
                    idx + 1,
                    format!("{what} in a server request-handling path — a bad request must not kill the connection loop"),
                )
                .with_suggestion("return a protocol error reply instead of panicking"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Byte offsets of `tok` in `hay` at identifier boundaries.
fn token_positions(hay: &str, tok: &str) -> Vec<usize> {
    let hb = hay.as_bytes();
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(p) = hay[start..].find(tok) {
        let pos = start + p;
        let end = pos + tok.len();
        let before_ok = pos == 0 || !is_ident_byte(hb[pos - 1]);
        let after_ok = end >= hb.len() || !is_ident_byte(hb[end]);
        if before_ok && after_ok {
            out.push(pos);
        }
        start = end;
    }
    out
}

fn contains_token(hay: &str, tok: &str) -> bool {
    !token_positions(hay, tok).is_empty()
}

/// The snake_case name a `let [mut] name …` line binds, if any.
/// Destructuring patterns and enum patterns (uppercase) return `None`.
fn let_binding_name(line: &str) -> Option<String> {
    let pos = token_positions(line, "let").first().copied()?;
    let mut rest = line[pos + 3..].trim_start();
    if let Some(stripped) = rest.strip_prefix("mut") {
        if stripped.starts_with(|c: char| c.is_whitespace()) {
            rest = stripped.trim_start();
        }
    }
    let first = rest.chars().next()?;
    if !(first.is_ascii_lowercase() || first == '_') {
        return None;
    }
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty() && name != "_").then_some(name)
}

/// The right-hand side of a `let` binding: everything after the first
/// top-level `=` (not `==`, `=>`, `<=`, …).
fn binding_rhs(line: &str) -> Option<&str> {
    let b = line.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if c != b'=' {
            continue;
        }
        let prev = if i == 0 { b' ' } else { b[i - 1] };
        let next = if i + 1 < b.len() { b[i + 1] } else { b' ' };
        if next == b'=' || next == b'>' {
            continue;
        }
        if matches!(
            prev,
            b'=' | b'<' | b'>' | b'!' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^'
        ) {
            continue;
        }
        return Some(&line[i + 1..]);
    }
    None
}

/// The identifier immediately before the single `:` governing the type
/// at `type_pos` — i.e. the field/parameter name of a declaration whose
/// type mentions a hash container. Stops at `;` and top-level `=` so an
/// unrelated earlier statement's colon is never picked up.
fn ident_before_colon(line: &str, type_pos: usize) -> Option<String> {
    let b = line.as_bytes();
    let mut i = type_pos;
    let mut colon = None;
    while i > 0 {
        i -= 1;
        match b[i] {
            b':' => {
                let prev = if i == 0 { b' ' } else { b[i - 1] };
                let next = if i + 1 < b.len() { b[i + 1] } else { b' ' };
                if prev != b':' && next != b':' {
                    colon = Some(i);
                    break;
                }
                // Part of a `::` path — step over the pair.
                if prev == b':' {
                    i -= 1;
                }
            }
            b';' | b'=' => return None,
            _ => {}
        }
    }
    let colon = colon?;
    let mut end = colon;
    while end > 0 && b[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident_byte(b[start - 1]) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    let name = &line[start..end];
    let first = name.chars().next()?;
    if !(first.is_ascii_lowercase() || first == '_') {
        return None;
    }
    const KEYWORDS: &[&str] = &[
        "else", "fn", "impl", "let", "match", "mod", "mut", "pub", "ref", "return", "self", "where",
    ];
    (!KEYWORDS.contains(&name)).then(|| name.to_string())
}

/// Walk a method/field chain starting right after an identifier at byte
/// offset `i`: returns `(name, offset)` for each `.name` segment,
/// skipping turbofish and balanced argument lists, following the chain
/// across newlines.
fn walk_chain(b: &[u8], mut i: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    loop {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= b.len() || b[i] != b'.' {
            break;
        }
        i += 1;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        let start = i;
        while i < b.len() && is_ident_byte(b[i]) {
            i += 1;
        }
        if i == start {
            break;
        }
        out.push((String::from_utf8_lossy(&b[start..i]).into_owned(), start));
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        // Turbofish: `.collect::<…>()`.
        if i + 2 < b.len() && b[i] == b':' && b[i + 1] == b':' && b[i + 2] == b'<' {
            i += 3;
            let mut depth = 1u32;
            while i < b.len() && depth > 0 {
                match b[i] {
                    b'<' => depth += 1,
                    b'>' => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
        }
        // Argument list.
        if i < b.len() && b[i] == b'(' {
            let mut depth = 1u32;
            i += 1;
            while i < b.len() && depth > 0 {
                match b[i] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
        }
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < b.len() && b[i] == b'?' {
            i += 1;
        }
    }
    out
}

/// Byte offsets where each line starts.
fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line containing byte `offset`.
fn line_of(starts: &[usize], offset: usize) -> usize {
    starts.partition_point(|&s| s <= offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        lint_source(&SourceFile::parse(path, src))
    }

    fn codes(path: &str, src: &str) -> Vec<&'static str> {
        findings(path, src).iter().map(|f| f.code).collect()
    }

    #[test]
    fn keyed_lookup_is_allowed() {
        let src = "use std::collections::HashMap;\nfn f() {\n    let mut m: HashMap<u64, f64> = HashMap::new();\n    m.insert(1, 2.0);\n    let _ = m.get(&1);\n    let _ = m.len();\n}\n";
        assert!(codes("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_is_flagged_in_engine_crates_only() {
        let src = "fn f(m: &std::collections::HashMap<u64, f64>) -> f64 {\n    m.values().copied().collect::<Vec<_>>().len() as f64\n}\n";
        assert_eq!(codes("crates/core/src/x.rs", src), vec!["D001"]);
        assert!(codes("crates/server/src/x.rs", src).is_empty());
        assert!(codes("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn chain_through_lock_guard_is_flagged() {
        let src = "struct C { entries: std::sync::Mutex<std::collections::HashMap<u64, f64>> }\nimpl C {\n    fn total(&self) -> usize {\n        self.entries.lock().expect(\"poisoned\").values().count()\n    }\n}\n";
        let f = findings("crates/numerics/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "D001");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn bare_for_loop_over_map_is_flagged() {
        let src = "fn f(m: std::collections::HashMap<u64, f64>) {\n    for (k, v) in &m {\n        let _ = (k, v);\n    }\n}\n";
        assert_eq!(codes("crates/mrm/src/x.rs", src), vec!["D001"]);
    }

    #[test]
    fn taint_propagates_through_rebinding() {
        let src = "fn f() {\n    let m = std::collections::HashMap::<u64, f64>::new();\n    let alias = m;\n    let _sum: f64 = alias.values().sum();\n}\n";
        assert_eq!(codes("crates/ctmc/src/x.rs", src), vec!["D001", "D004"]);
    }

    #[test]
    fn len_rebinding_does_not_propagate_taint() {
        let src = "fn f(m: &std::collections::HashMap<u64, f64>) {\n    let n = m.len();\n    for _i in 0..n {}\n}\n";
        assert!(codes("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn sum_over_hash_iteration_is_d004_too() {
        let src =
            "fn f(m: &std::collections::HashMap<u64, f64>) -> f64 {\n    m.values().sum()\n}\n";
        assert_eq!(codes("crates/numerics/src/x.rs", src), vec!["D001", "D004"]);
    }

    #[test]
    fn wall_clock_outside_allowlist() {
        let src = "fn f() { let _t = std::time::Instant::now(); }\n";
        assert_eq!(codes("crates/core/src/x.rs", src), vec!["D002"]);
        assert!(codes("crates/bench/src/x.rs", src).is_empty());
        assert!(codes("crates/obs/src/x.rs", src).is_empty());
        assert!(codes("crates/server/tests/x.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt_from_d002() {
        let src = "fn shipped() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
        assert!(codes("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unscoped_spawn_is_flagged_scoped_is_not() {
        assert_eq!(
            codes(
                "crates/server/src/x.rs",
                "fn f() { std::thread::spawn(|| {}); }\n"
            ),
            vec!["D003"]
        );
        let scoped = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        assert!(codes("crates/server/src/x.rs", scoped).is_empty());
    }

    #[test]
    fn atomic_float_emulation_is_flagged() {
        let src = "fn f(a: &std::sync::atomic::AtomicU64, x: f64) {\n    let _ = a.fetch_update(O, O, |b| Some(f64::to_bits(f64::from_bits(b) + x)));\n}\n";
        assert_eq!(codes("crates/sparse/src/x.rs", src), vec!["D004"]);
        // Integer counters are fine.
        let ok = "fn f(a: &std::sync::atomic::AtomicU64) { a.fetch_add(1, O); }\n";
        assert!(codes("crates/sparse/src/x.rs", ok).is_empty());
    }

    #[test]
    fn server_panics_only_in_request_paths() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(codes("crates/server/src/lib.rs", src), vec!["D005"]);
        assert_eq!(codes("crates/server/src/json.rs", src), vec!["D005"]);
        assert!(codes("crates/server/src/bin/mrmc.rs", src).is_empty());
        assert!(codes("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_macros_are_flagged_in_request_paths() {
        for mac in [
            "panic!(\"x\")",
            "unreachable!()",
            "todo!()",
            "unimplemented!()",
        ] {
            let src = format!("fn f() {{ {mac}; }}\n");
            assert_eq!(
                codes("crates/server/src/lib.rs", &src),
                vec!["D005"],
                "{mac}"
            );
        }
    }

    #[test]
    fn hazard_words_in_strings_and_comments_do_not_fire() {
        let src = "fn f() -> &'static str {\n    // HashMap iteration and thread::spawn and Instant, discussed\n    \"HashMap .values() thread::spawn Instant .unwrap()\"\n}\n";
        assert!(codes("crates/core/src/x.rs", src).is_empty());
        assert!(codes("crates/server/src/lib.rs", src).is_empty());
    }
}
