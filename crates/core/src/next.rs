//! Model checking next formulas (Section 4.3.1, Algorithm 4.4).
//!
//! `P^M(s, X^I_J Φ) = Σ_{s' ⊨ Φ} P(s, s') ·
//! (e^{−E(s)·inf K(s,s')} − e^{−E(s)·sup K(s,s')})` (Eq. 3.4), where
//! `K(s, s') = {x ∈ I | ρ(s)·x + ι(s, s') ∈ J}` is the set of residence
//! times meeting both the timing and the reward constraint. Unlike the
//! until engines, the closed form supports *general* closed intervals for
//! both `I` and `J`.

use mrmc_csrl::Interval;
use mrmc_mrm::Mrm;

use crate::error::CheckError;

/// The interval `K(s, s')` for residence in `s` followed by the jump to
/// `s'`; `None` when empty.
fn k_interval(
    mrm: &Mrm,
    s: usize,
    s_prime: usize,
    time: &Interval,
    reward: &Interval,
) -> Option<Interval> {
    let rho = mrm.state_reward(s);
    let iota = mrm.impulse_reward(s, s_prime);
    if rho == 0.0 {
        // Reward is constant in the residence time: either the impulse
        // alone meets the bound (K = I) or nothing does.
        return if reward.contains(iota) {
            Some(*time)
        } else {
            None
        };
    }
    // ρ·x + ι ∈ [lo, hi]  ⇔  x ∈ [(lo − ι)/ρ, (hi − ι)/ρ].
    let lo = ((reward.lo() - iota) / rho).max(0.0);
    let hi = if reward.hi() == f64::INFINITY {
        f64::INFINITY
    } else {
        (reward.hi() - iota) / rho
    };
    if hi < lo {
        return None;
    }
    let from_reward = Interval::new(lo, hi).expect("derived interval is valid");
    time.intersect(&from_reward)
}

/// Compute `P^M(s, X^I_J Φ)` for every state.
///
/// # Errors
///
/// [`CheckError`] if `phi.len()` differs from the state count.
pub fn next_probabilities(
    mrm: &Mrm,
    time: &Interval,
    reward: &Interval,
    phi: &[bool],
) -> Result<Vec<f64>, CheckError> {
    let n = mrm.num_states();
    if phi.len() != n {
        return Err(CheckError::Numerics(
            mrmc_numerics::NumericsError::SizeMismatch {
                expected: n,
                found: phi.len(),
            },
        ));
    }

    let mut out = vec![0.0; n];
    #[allow(clippy::needless_range_loop)] // s also indexes the rate matrix
    for s in 0..n {
        let exit = mrm.ctmc().exit_rate(s);
        if exit == 0.0 {
            continue; // absorbing: no next step ever happens
        }
        let mut prob = 0.0;
        for (target, rate) in mrm.ctmc().rates().row(s) {
            if !phi[target] {
                continue;
            }
            let Some(k) = k_interval(mrm, s, target, time, reward) else {
                continue;
            };
            let p_branch = rate / exit;
            let weight = (-exit * k.lo()).exp()
                - if k.hi() == f64::INFINITY {
                    0.0
                } else {
                    (-exit * k.hi()).exp()
                };
            prob += p_branch * weight;
        }
        out[s] = prob.clamp(0.0, 1.0);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_mrm::{ImpulseRewards, StateRewards};

    /// 0 →(1.0) 1, 0 →(3.0) 2; ρ(0) = 2, ι(0,1) = 5.
    fn model() -> Mrm {
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1.0).transition(0, 2, 3.0);
        b.label(1, "a").label(2, "b");
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![2.0, 0.0, 0.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(0, 1, 5.0).unwrap();
        Mrm::new(ctmc, rho, iota).unwrap()
    }

    #[test]
    fn unbounded_next_is_branching_probability() {
        // Eq. 3.5: P(s, X Φ) = Σ_{s' ⊨ Φ} P(s, s').
        let m = model();
        let phi = m.labeling().states_with("a");
        let p =
            next_probabilities(&m, &Interval::unbounded(), &Interval::unbounded(), &phi).unwrap();
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert_eq!(p[1], 0.0); // absorbing
        assert_eq!(p[2], 0.0);
    }

    #[test]
    fn time_bound_truncates_the_exponential() {
        let m = model();
        let phi = m.labeling().states_with("a");
        // Within time 0.5: P(0→1 in [0, 0.5]) = 1/4 · (1 − e^{−4·0.5}).
        let p = next_probabilities(&m, &Interval::upto(0.5), &Interval::unbounded(), &phi).unwrap();
        let expect = 0.25 * (1.0 - (-2.0f64).exp());
        assert!((p[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn reward_bound_with_impulse_shifts_the_window() {
        let m = model();
        let phi = m.labeling().states_with("a");
        // J = [0, 9]: need 2x + 5 ≤ 9 ⇔ x ≤ 2.
        let p = next_probabilities(&m, &Interval::unbounded(), &Interval::upto(9.0), &phi).unwrap();
        let expect = 0.25 * (1.0 - (-4.0 * 2.0f64).exp());
        assert!((p[0] - expect).abs() < 1e-12);
        // J = [0, 4]: the impulse alone (5) exceeds the bound; K is empty.
        let p = next_probabilities(&m, &Interval::unbounded(), &Interval::upto(4.0), &phi).unwrap();
        assert_eq!(p[0], 0.0);
    }

    #[test]
    fn lower_bounds_are_supported() {
        let m = model();
        let phi = m.labeling().states_with("b");
        // Jump to state 2 (no impulse) in time [1, 2]:
        // P = 3/4 · (e^{−4·1} − e^{−4·2}).
        let time = Interval::new(1.0, 2.0).unwrap();
        let p = next_probabilities(&m, &time, &Interval::unbounded(), &phi).unwrap();
        let expect = 0.75 * ((-4.0f64).exp() - (-8.0f64).exp());
        assert!((p[0] - expect).abs() < 1e-12);
        // Reward lower bound: 2x ∈ [3, ∞) ⇔ x ≥ 1.5.
        let reward = Interval::new(3.0, f64::INFINITY).unwrap();
        let p = next_probabilities(&m, &Interval::unbounded(), &reward, &phi).unwrap();
        let expect = 0.75 * (-4.0 * 1.5f64).exp();
        assert!((p[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_reward_state_depends_on_impulse_only() {
        // From state 1 (ρ = 0) there are no transitions; extend the model:
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 2.0);
        b.label(1, "goal");
        let ctmc = b.build().unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(0, 1, 3.0).unwrap();
        let m = Mrm::new(ctmc, StateRewards::zero(2), iota).unwrap();
        let phi = m.labeling().states_with("goal");
        // J = [0, 2]: impulse 3 > 2, never satisfied.
        let p = next_probabilities(&m, &Interval::unbounded(), &Interval::upto(2.0), &phi).unwrap();
        assert_eq!(p[0], 0.0);
        // J = [0, 3]: impulse fits for any residence time.
        let p = next_probabilities(&m, &Interval::unbounded(), &Interval::upto(3.0), &phi).unwrap();
        assert!((p[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_phi_length_rejected() {
        let m = model();
        assert!(
            next_probabilities(&m, &Interval::unbounded(), &Interval::unbounded(), &[true])
                .is_err()
        );
    }
}
