//! Model checking the steady-state operator (Section 4.2, Algorithm 4.3).

use mrmc_ctmc::steady::SteadyStateAnalysis;
use mrmc_mrm::Mrm;

use crate::error::CheckError;
use crate::options::CheckOptions;

/// Compute `π(s, Sat(Φ))` for every state `s` (Eq. 3.2): the long-run
/// probability of the Φ-states, weighted by BSCC-reachability.
///
/// # Errors
///
/// Propagates BSCC/steady-state solver failures.
pub fn steady_probabilities(
    mrm: &Mrm,
    options: &CheckOptions,
    phi: &[bool],
) -> Result<Vec<f64>, CheckError> {
    let _span = mrmc_obs::span("steady/solve");
    let analysis = SteadyStateAnalysis::new(mrm.ctmc(), options.solver)?;
    Ok((0..mrm.num_states())
        .map(|s| analysis.probability_from(s, phi))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_ctmc::CtmcBuilder;

    #[test]
    fn figure_3_2_from_every_state() {
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 2.0).transition(0, 4, 1.0);
        b.transition(1, 0, 1.0).transition(1, 2, 2.0);
        b.transition(2, 3, 2.0);
        b.transition(3, 2, 1.0);
        b.label(3, "b");
        let m = Mrm::without_rewards(b.build().unwrap());

        let p =
            steady_probabilities(&m, &CheckOptions::new(), &m.labeling().states_with("b")).unwrap();
        // π(s1, b) = 8/21; from inside B1 it is π^B1(s4) = 2/3; from the
        // sink it is 0.
        assert!((p[0] - 8.0 / 21.0).abs() < 1e-9);
        assert!((p[2] - 2.0 / 3.0).abs() < 1e-9);
        assert!((p[3] - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(p[4], 0.0);
    }

    #[test]
    fn irreducible_chain_is_state_independent() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(1, 0, 3.0);
        b.label(0, "up");
        let m = Mrm::without_rewards(b.build().unwrap());
        let p = steady_probabilities(&m, &CheckOptions::new(), &m.labeling().states_with("up"))
            .unwrap();
        assert!((p[0] - 0.75).abs() < 1e-9);
        assert!((p[1] - 0.75).abs() < 1e-9);
    }
}
