//! The `Sat(Φ)` recursion (Section 4.1, Algorithm 4.1), extended with
//! bound-aware three-valued verdicts.
//!
//! Every probability the engines report comes with an
//! [`ErrorBudget`](mrmc_numerics::ErrorBudget). A threshold operator
//! `P⋈p`/`S⋈p` is therefore evaluated on the *interval*
//! `[p̂ − E, p̂ + E]`: when the whole interval falls on one side of the
//! bound the verdict is definite, otherwise the state is *unknown*
//! (Kleene's strong three-valued logic) instead of silently guessed.
//!
//! Unknown inner sets are propagated through nested `S`/`P` operators by
//! monotone two-run widening: steady-state, next and until probabilities
//! are all nondecreasing in their argument state sets, so running the
//! engine on the definite set (lower) and on definite ∪ unknown (upper)
//! brackets the true probability. The midpoint is reported, and the
//! half-width is charged to the budget's `propagation` component.

use mrmc_csrl::{CompareOp, PathFormula, StateFormula};
use mrmc_mrm::Mrm;
use mrmc_numerics::ErrorBudget;

use crate::error::CheckError;
use crate::next::next_probabilities;
use crate::options::CheckOptions;
use crate::outcome::{CheckOutcome, DataflowInfo};
use crate::steady::steady_probabilities;
use crate::until::until_probabilities;

/// Probabilities attached to the outermost operator, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Extras {
    pub(crate) probabilities: Vec<f64>,
    pub(crate) error_bounds: Option<Vec<f64>>,
    pub(crate) budgets: Option<Vec<ErrorBudget>>,
    pub(crate) engine: &'static str,
    pub(crate) dataflow: Option<DataflowInfo>,
}

/// Compute `Sat(Φ)` with a post-order traversal of the formula.
pub fn satisfy(
    mrm: &Mrm,
    options: &CheckOptions,
    formula: &StateFormula,
) -> Result<CheckOutcome, CheckError> {
    let (sat, unknown, extras) = sat_rec(mrm, options, formula)?;
    Ok(match extras {
        Some(e) => CheckOutcome::with_probabilities(
            sat,
            unknown,
            e.probabilities,
            e.error_bounds,
            e.budgets,
            e.engine,
            e.dataflow,
        ),
        None => CheckOutcome::with_unknown(sat, unknown),
    })
}

/// `a ∪ b` as characteristic vectors.
fn union(a: &[bool], b: &[bool]) -> Vec<bool> {
    a.iter().zip(b).map(|(&x, &y)| x || y).collect()
}

fn any(v: &[bool]) -> bool {
    v.iter().any(|&b| b)
}

/// Combine a lower/upper probability pair from monotone two-run widening
/// into a midpoint estimate and a budget charging the half-width to the
/// `propagation` component (on top of the component-wise worst case of
/// the two runs' own budgets).
fn widen(
    lo: Vec<f64>,
    hi: Vec<f64>,
    lo_budgets: Option<Vec<ErrorBudget>>,
    hi_budgets: Option<Vec<ErrorBudget>>,
) -> (Vec<f64>, Option<Vec<ErrorBudget>>) {
    let n = lo.len();
    let mut probabilities = Vec::with_capacity(n);
    let mut budgets = Vec::with_capacity(n);
    for s in 0..n {
        // The engines' own error can perturb the bracketing by up to their
        // budget, so order the endpoints defensively.
        let (a, b) = if lo[s] <= hi[s] {
            (lo[s], hi[s])
        } else {
            (hi[s], lo[s])
        };
        probabilities.push(0.5 * (a + b));
        let base = match (&lo_budgets, &hi_budgets) {
            (Some(l), Some(h)) => l[s].max(&h[s]),
            (Some(l), None) => l[s],
            (None, Some(h)) => h[s],
            (None, None) => ErrorBudget::zero(),
        };
        budgets.push(base.widened_by(0.5 * (b - a)));
    }
    (probabilities, Some(budgets))
}

/// Evaluate `⋈ bound` on each probability. With budgets the comparison is
/// interval-valued: a threshold inside `[p − E, p + E]` yields *unknown*.
fn threshold_verdicts(
    op: CompareOp,
    bound: f64,
    probabilities: &[f64],
    budgets: Option<&[ErrorBudget]>,
) -> (Vec<bool>, Vec<bool>) {
    let n = probabilities.len();
    match budgets {
        None => (
            probabilities.iter().map(|&p| op.eval(p, bound)).collect(),
            vec![false; n],
        ),
        Some(bs) => {
            let mut sat = Vec::with_capacity(n);
            let mut unknown = vec![false; n];
            for (s, (&p, budget)) in probabilities.iter().zip(bs).enumerate() {
                let e = budget.total();
                // Probabilities live in [0, 1]; clamping the interval keeps
                // trivial thresholds (≥ 0, ≤ 1) decidable under any budget.
                match op.eval_interval((p - e).max(0.0), (p + e).min(1.0), bound) {
                    Some(v) => sat.push(v),
                    None => {
                        sat.push(false);
                        unknown[s] = true;
                    }
                }
            }
            (sat, unknown)
        }
    }
}

/// One recursion step, with the session memo consulted first.
///
/// Engine-backed nodes (`S`/`P` operators) are served from the installed
/// [`SatCache`](crate::cache::SatCache) when a session scoped one in
/// ([`crate::cache::with_sat_cache`]); boolean nodes are recomputed — they
/// cost a vector scan, less than a cache round-trip. With no cache
/// installed (the one-shot [`ModelChecker`](crate::ModelChecker) path)
/// this is exactly [`sat_node`].
#[allow(clippy::type_complexity)]
fn sat_rec(
    mrm: &Mrm,
    options: &CheckOptions,
    formula: &StateFormula,
) -> Result<(Vec<bool>, Vec<bool>, Option<Extras>), CheckError> {
    let engine_backed = matches!(
        formula,
        StateFormula::Steady { .. } | StateFormula::Prob { .. }
    );
    if engine_backed {
        if let Some((cache, ctx)) = crate::cache::installed() {
            let key = formula.to_string();
            if let Some(cached) = cache.get(ctx, &key) {
                return Ok(cached);
            }
            let value = sat_node(mrm, options, formula)?;
            cache.insert(ctx, key, value.clone());
            return Ok(value);
        }
    }
    sat_node(mrm, options, formula)
}

#[allow(clippy::type_complexity)]
fn sat_node(
    mrm: &Mrm,
    options: &CheckOptions,
    formula: &StateFormula,
) -> Result<(Vec<bool>, Vec<bool>, Option<Extras>), CheckError> {
    let n = mrm.num_states();
    match formula {
        StateFormula::True => Ok((vec![true; n], vec![false; n], None)),
        StateFormula::False => Ok((vec![false; n], vec![false; n], None)),
        StateFormula::Ap(name) => {
            let sat = mrm.labeling().states_with(name);
            if !any(&sat) {
                return Err(CheckError::UnknownProposition { name: name.clone() });
            }
            Ok((sat, vec![false; n], None))
        }
        StateFormula::Not(inner) => {
            let (isat, iunk, _) = sat_rec(mrm, options, inner)?;
            // ¬unknown stays unknown; only definite-false flips to true.
            let sat = isat.iter().zip(&iunk).map(|(&s, &u)| !s && !u).collect();
            Ok((sat, iunk, None))
        }
        StateFormula::Or(a, b) => {
            let (sa, ua, _) = sat_rec(mrm, options, a)?;
            let (sb, ub, _) = sat_rec(mrm, options, b)?;
            let sat: Vec<bool> = union(&sa, &sb);
            let unknown = sat
                .iter()
                .zip(ua.iter().zip(&ub))
                .map(|(&s, (&x, &y))| !s && (x || y))
                .collect();
            Ok((sat, unknown, None))
        }
        StateFormula::And(a, b) => {
            let (sa, ua, _) = sat_rec(mrm, options, a)?;
            let (sb, ub, _) = sat_rec(mrm, options, b)?;
            let mut sat = Vec::with_capacity(n);
            let mut unknown = Vec::with_capacity(n);
            for s in 0..n {
                let both = sa[s] && sb[s];
                // Definitely false as soon as either side definitely fails.
                let def_false = (!sa[s] && !ua[s]) || (!sb[s] && !ub[s]);
                sat.push(both);
                unknown.push(!both && !def_false);
            }
            Ok((sat, unknown, None))
        }
        StateFormula::Implies(a, b) => {
            // a ⇒ b ≡ ¬a ∨ b in Kleene logic.
            let (sa, ua, _) = sat_rec(mrm, options, a)?;
            let (sb, ub, _) = sat_rec(mrm, options, b)?;
            let mut sat = Vec::with_capacity(n);
            let mut unknown = Vec::with_capacity(n);
            for s in 0..n {
                let holds = (!sa[s] && !ua[s]) || sb[s];
                sat.push(holds);
                unknown.push(!holds && (ua[s] || ub[s]));
            }
            Ok((sat, unknown, None))
        }
        StateFormula::Steady { op, bound, inner } => {
            let (isat, iunk, _) = sat_rec(mrm, options, inner)?;
            let (probabilities, budgets) = if any(&iunk) {
                let lo = steady_probabilities(mrm, options, &isat)?;
                let hi = steady_probabilities(mrm, options, &union(&isat, &iunk))?;
                widen(lo, hi, None, None)
            } else {
                (steady_probabilities(mrm, options, &isat)?, None)
            };
            let (sat, unknown) =
                threshold_verdicts(*op, *bound, &probabilities, budgets.as_deref());
            Ok((
                sat,
                unknown,
                Some(Extras {
                    probabilities,
                    error_bounds: None,
                    budgets,
                    engine: "steady",
                    dataflow: None,
                }),
            ))
        }
        StateFormula::Prob { op, bound, path } => match path.as_ref() {
            PathFormula::Next {
                time,
                reward,
                inner,
            } => {
                let (isat, iunk, _) = sat_rec(mrm, options, inner)?;
                let (probabilities, budgets) = if any(&iunk) {
                    let lo = next_probabilities(mrm, time, reward, &isat)?;
                    let hi = next_probabilities(mrm, time, reward, &union(&isat, &iunk))?;
                    widen(lo, hi, None, None)
                } else {
                    (next_probabilities(mrm, time, reward, &isat)?, None)
                };
                let (sat, unknown) =
                    threshold_verdicts(*op, *bound, &probabilities, budgets.as_deref());
                Ok((
                    sat,
                    unknown,
                    Some(Extras {
                        probabilities,
                        error_bounds: None,
                        budgets,
                        engine: "next",
                        dataflow: None,
                    }),
                ))
            }
            PathFormula::Until {
                time,
                reward,
                lhs,
                rhs,
            } => {
                let (phi, phi_u, _) = sat_rec(mrm, options, lhs)?;
                let (psi, psi_u, _) = sat_rec(mrm, options, rhs)?;
                let (probabilities, error_bounds, budgets, engine, dataflow) =
                    if any(&phi_u) || any(&psi_u) {
                        let lo = until_probabilities(mrm, options, time, reward, &phi, &psi)?;
                        let hi = until_probabilities(
                            mrm,
                            options,
                            time,
                            reward,
                            &union(&phi, &phi_u),
                            &union(&psi, &psi_u),
                        )?;
                        let engine = lo.engine;
                        // Report the lower run's pre-pass: it analyzed the
                        // definite argument sets the verdicts are anchored to.
                        let dataflow = lo.dataflow;
                        let error_bounds = match (lo.error_bounds, hi.error_bounds) {
                            (Some(l), Some(h)) => {
                                Some(l.iter().zip(&h).map(|(&a, &b)| a.max(b)).collect())
                            }
                            _ => None,
                        };
                        let (probabilities, budgets) =
                            widen(lo.probabilities, hi.probabilities, lo.budgets, hi.budgets);
                        (probabilities, error_bounds, budgets, engine, dataflow)
                    } else {
                        let analysis = until_probabilities(mrm, options, time, reward, &phi, &psi)?;
                        (
                            analysis.probabilities,
                            analysis.error_bounds,
                            analysis.budgets,
                            analysis.engine,
                            analysis.dataflow,
                        )
                    };
                let (sat, unknown) =
                    threshold_verdicts(*op, *bound, &probabilities, budgets.as_deref());
                Ok((
                    sat,
                    unknown,
                    Some(Extras {
                        probabilities,
                        error_bounds,
                        budgets,
                        engine,
                        dataflow,
                    }),
                ))
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Verdict;
    use crate::{ModelChecker, UntilEngine};
    use mrmc_ctmc::CtmcBuilder;

    fn wavelan() -> Mrm {
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 0.1);
        b.transition(1, 0, 0.05).transition(1, 2, 5.0);
        b.transition(2, 1, 12.0)
            .transition(2, 3, 1.5)
            .transition(2, 4, 0.75);
        b.transition(3, 2, 10.0);
        b.transition(4, 2, 15.0);
        b.label(0, "off");
        b.label(1, "sleep");
        b.label(2, "idle");
        b.label(3, "receive").label(3, "busy");
        b.label(4, "transmit").label(4, "busy");
        Mrm::without_rewards(b.build().unwrap())
    }

    fn checker() -> ModelChecker {
        ModelChecker::new(wavelan(), CheckOptions::new())
    }

    /// A checker whose uniformization engine is crippled (huge truncation
    /// probability), so interior thresholds become undecidable.
    fn sloppy_checker() -> ModelChecker {
        ModelChecker::new(
            wavelan(),
            CheckOptions::new().with_engine(UntilEngine::uniformization(0.5)),
        )
    }

    #[test]
    fn boolean_layer() {
        let c = checker();
        assert_eq!(c.check_str("TT").unwrap().count(), 5);
        assert_eq!(c.check_str("FF").unwrap().count(), 0);
        assert_eq!(
            c.check_str("busy").unwrap().sat(),
            &[false, false, false, true, true]
        );
        assert_eq!(
            c.check_str("busy || idle").unwrap().sat(),
            &[false, false, true, true, true]
        );
        assert_eq!(
            c.check_str("busy && receive").unwrap().sat(),
            &[false, false, false, true, false]
        );
        assert_eq!(
            c.check_str("!busy").unwrap().sat(),
            &[true, true, true, false, false]
        );
        // busy => receive fails only in the transmit state.
        assert_eq!(
            c.check_str("busy => receive").unwrap().sat(),
            &[true, true, true, true, false]
        );
    }

    #[test]
    fn unknown_proposition_is_an_error() {
        // Caught by the pre-flight lint (F001) before any engine runs.
        let c = checker();
        let e = c.check_str("buzzy").unwrap_err();
        assert!(matches!(e, CheckError::Preflight(_)), "{e}");
        assert!(e.to_string().contains("buzzy"));

        // With pre-flight disabled, the recursion itself reports it.
        let c = ModelChecker::new(wavelan(), CheckOptions::new().without_preflight());
        let e = c.check_str("buzzy").unwrap_err();
        assert!(matches!(e, CheckError::UnknownProposition { .. }));
        assert!(e.to_string().contains("buzzy"));
    }

    #[test]
    fn steady_state_formula_on_irreducible_chain() {
        // Long-run probabilities of the WaveLAN chain: the off/sleep pair
        // dominates because wake-up is slow.
        let c = checker();
        let out = c.check_str("S(> 0.5) (off || sleep)").unwrap();
        // The chain is irreducible: all states agree.
        assert!(out.sat().iter().all(|&b| b) || out.sat().iter().all(|&b| !b));
        let p = out.probabilities().unwrap();
        assert!((p[0] - p[4]).abs() < 1e-9);
    }

    #[test]
    fn nested_probability_formula() {
        // From idle, one jump reaches busy with probability 2.25/14.25.
        let c = checker();
        let out = c.check_str("P(> 0.15) [X busy]").unwrap();
        assert!(out.holds_in(2));
        assert!(!out.holds_in(0));
        let p = out.probabilities().unwrap();
        assert!((p[2] - 2.25 / 14.25).abs() < 1e-12);

        // Nested: states satisfying P(>0.9)[X (P(>0.15)[X busy])] — one
        // jump into a state from which busy is reachable in one jump with
        // probability > 0.15 (i.e. into idle).
        let out = c.check_str("P(> 0.9) [X (P(> 0.15) [X busy])]").unwrap();
        // receive and transmit jump to idle with probability 1.
        assert!(out.holds_in(3));
        assert!(out.holds_in(4));
        assert!(!out.holds_in(0));
    }

    #[test]
    fn until_formula_end_to_end() {
        let c = checker();
        // Unbounded until: from anywhere, busy is eventually reached (the
        // chain is irreducible). The iterative solver converges to 1 up to
        // its tolerance, so compare against a slightly smaller bound.
        let out = c.check_str("P(> 0.9999) [TT U busy]").unwrap();
        assert_eq!(out.count(), 5);
        // Time-bounded with generous bound.
        let out = c.check_str("P(> 0.1) [idle U[0,2] busy]").unwrap();
        assert!(out.holds_in(2));
        assert!(out.probabilities().is_some());
    }

    #[test]
    fn reward_bounded_until_uses_the_engine() {
        let c = checker();
        let out = c
            .check_str("P(> 0.1) [idle U[0,0.5][0,2000] busy]")
            .unwrap();
        assert!(out.error_bounds().is_some());
        let budgets = out.budgets().expect("uniformization reports budgets");
        assert!(budgets
            .iter()
            .all(mrmc_numerics::ErrorBudget::is_well_formed));
        let p = out.probabilities().unwrap();
        assert!(p[2] > 0.1);
        assert_eq!(p[0], 0.0);
        // Far from the bound at w = 1e-8: every verdict is definite.
        assert!(!out.has_unknown());
    }

    #[test]
    fn straddled_threshold_is_unknown_not_guessed() {
        // With truncation probability 0.5 the budget covers half the unit
        // interval: an interior threshold cannot be decided, and the
        // checker must say so rather than pick a side.
        let out = sloppy_checker()
            .check_str("P(> 0.3) [idle U[0,0.5][0,2000] busy]")
            .unwrap();
        assert_eq!(out.verdict(2), Verdict::Unknown);
        assert!(!out.holds_in(2));
        assert!(out.has_unknown());
        // A trivial threshold stays decidable under any budget.
        let out = sloppy_checker()
            .check_str("P(>= 0) [idle U[0,0.5][0,2000] busy]")
            .unwrap();
        assert!(!out.has_unknown());
        assert_eq!(out.count(), 5);
    }

    #[test]
    fn kleene_connectives_propagate_unknown() {
        let c = sloppy_checker();
        let u = "P(> 0.3) [idle U[0,0.5][0,2000] busy]";
        // ¬unknown is unknown.
        let out = c.check_str(&format!("!({u})")).unwrap();
        assert_eq!(out.verdict(2), Verdict::Unknown);
        // unknown ∨ TT is true; unknown ∧ FF is false.
        let out = c.check_str(&format!("({u}) || TT")).unwrap();
        assert_eq!(out.verdict(2), Verdict::Holds);
        let out = c.check_str(&format!("({u}) && FF")).unwrap();
        assert_eq!(out.verdict(2), Verdict::Fails);
        // unknown ∨ FF and unknown ∧ TT stay unknown.
        let out = c.check_str(&format!("({u}) || FF")).unwrap();
        assert_eq!(out.verdict(2), Verdict::Unknown);
        let out = c.check_str(&format!("({u}) && TT")).unwrap();
        assert_eq!(out.verdict(2), Verdict::Unknown);
        // unknown ⇒ FF is unknown; FF ⇒ unknown is true.
        let out = c.check_str(&format!("({u}) => FF")).unwrap();
        assert_eq!(out.verdict(2), Verdict::Unknown);
        let out = c.check_str(&format!("FF => ({u})")).unwrap();
        assert_eq!(out.verdict(2), Verdict::Holds);
    }

    #[test]
    fn nested_unknown_widens_the_outer_budget() {
        // The inner formula is undecidable in state idle under the sloppy
        // engine; the outer X-operator then runs on bracketing inner sets
        // and charges the spread to the propagation component.
        let c = sloppy_checker();
        let inner = "P(> 0.3) [idle U[0,0.5][0,2000] busy]";
        let out = c.check_str(&format!("P(> 0.9) [X ({inner})]")).unwrap();
        let budgets = out.budgets().expect("widening must attach budgets");
        // From receive/transmit every jump lands in idle, the unknown
        // state: the bracketing runs disagree by the full jump probability.
        assert!(budgets[3].propagation > 0.4);
        assert_eq!(out.verdict(3), Verdict::Unknown);
        // From off the next state is sleep (definite on both runs).
        assert_eq!(budgets[0].propagation, 0.0);
        assert_eq!(out.verdict(0), Verdict::Fails);
    }
}
