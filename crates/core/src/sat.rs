//! The `Sat(Φ)` recursion (Section 4.1, Algorithm 4.1).

use mrmc_csrl::{PathFormula, StateFormula};
use mrmc_mrm::Mrm;

use crate::error::CheckError;
use crate::next::next_probabilities;
use crate::options::CheckOptions;
use crate::outcome::CheckOutcome;
use crate::steady::steady_probabilities;
use crate::until::until_probabilities;

/// Probabilities attached to the outermost operator, for reporting.
struct Extras {
    probabilities: Vec<f64>,
    error_bounds: Option<Vec<f64>>,
}

/// Compute `Sat(Φ)` with a post-order traversal of the formula.
pub fn satisfy(
    mrm: &Mrm,
    options: &CheckOptions,
    formula: &StateFormula,
) -> Result<CheckOutcome, CheckError> {
    let (sat, extras) = sat_rec(mrm, options, formula)?;
    Ok(match extras {
        Some(e) => CheckOutcome::with_probabilities(sat, e.probabilities, e.error_bounds),
        None => CheckOutcome::boolean(sat),
    })
}

#[allow(clippy::type_complexity)]
fn sat_rec(
    mrm: &Mrm,
    options: &CheckOptions,
    formula: &StateFormula,
) -> Result<(Vec<bool>, Option<Extras>), CheckError> {
    let n = mrm.num_states();
    match formula {
        StateFormula::True => Ok((vec![true; n], None)),
        StateFormula::False => Ok((vec![false; n], None)),
        StateFormula::Ap(name) => {
            let sat = mrm.labeling().states_with(name);
            if !sat.iter().any(|&b| b) {
                return Err(CheckError::UnknownProposition { name: name.clone() });
            }
            Ok((sat, None))
        }
        StateFormula::Not(inner) => {
            let (mut sat, _) = sat_rec(mrm, options, inner)?;
            for b in sat.iter_mut() {
                *b = !*b;
            }
            Ok((sat, None))
        }
        StateFormula::Or(a, b) => {
            let (sa, _) = sat_rec(mrm, options, a)?;
            let (sb, _) = sat_rec(mrm, options, b)?;
            Ok((sa.iter().zip(&sb).map(|(&x, &y)| x || y).collect(), None))
        }
        StateFormula::And(a, b) => {
            let (sa, _) = sat_rec(mrm, options, a)?;
            let (sb, _) = sat_rec(mrm, options, b)?;
            Ok((sa.iter().zip(&sb).map(|(&x, &y)| x && y).collect(), None))
        }
        StateFormula::Implies(a, b) => {
            let (sa, _) = sat_rec(mrm, options, a)?;
            let (sb, _) = sat_rec(mrm, options, b)?;
            Ok((sa.iter().zip(&sb).map(|(&x, &y)| !x || y).collect(), None))
        }
        StateFormula::Steady { op, bound, inner } => {
            let (inner_sat, _) = sat_rec(mrm, options, inner)?;
            let probabilities = steady_probabilities(mrm, options, &inner_sat)?;
            let sat = probabilities.iter().map(|&p| op.eval(p, *bound)).collect();
            Ok((
                sat,
                Some(Extras {
                    probabilities,
                    error_bounds: None,
                }),
            ))
        }
        StateFormula::Prob { op, bound, path } => match path.as_ref() {
            PathFormula::Next {
                time,
                reward,
                inner,
            } => {
                let (inner_sat, _) = sat_rec(mrm, options, inner)?;
                let probabilities = next_probabilities(mrm, time, reward, &inner_sat)?;
                let sat = probabilities.iter().map(|&p| op.eval(p, *bound)).collect();
                Ok((
                    sat,
                    Some(Extras {
                        probabilities,
                        error_bounds: None,
                    }),
                ))
            }
            PathFormula::Until {
                time,
                reward,
                lhs,
                rhs,
            } => {
                let (phi, _) = sat_rec(mrm, options, lhs)?;
                let (psi, _) = sat_rec(mrm, options, rhs)?;
                let analysis = until_probabilities(mrm, options, time, reward, &phi, &psi)?;
                let sat = analysis
                    .probabilities
                    .iter()
                    .map(|&p| op.eval(p, *bound))
                    .collect();
                Ok((
                    sat,
                    Some(Extras {
                        probabilities: analysis.probabilities,
                        error_bounds: analysis.error_bounds,
                    }),
                ))
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelChecker;
    use mrmc_ctmc::CtmcBuilder;

    fn wavelan() -> Mrm {
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 0.1);
        b.transition(1, 0, 0.05).transition(1, 2, 5.0);
        b.transition(2, 1, 12.0)
            .transition(2, 3, 1.5)
            .transition(2, 4, 0.75);
        b.transition(3, 2, 10.0);
        b.transition(4, 2, 15.0);
        b.label(0, "off");
        b.label(1, "sleep");
        b.label(2, "idle");
        b.label(3, "receive").label(3, "busy");
        b.label(4, "transmit").label(4, "busy");
        Mrm::without_rewards(b.build().unwrap())
    }

    fn checker() -> ModelChecker {
        ModelChecker::new(wavelan(), CheckOptions::new())
    }

    #[test]
    fn boolean_layer() {
        let c = checker();
        assert_eq!(c.check_str("TT").unwrap().count(), 5);
        assert_eq!(c.check_str("FF").unwrap().count(), 0);
        assert_eq!(
            c.check_str("busy").unwrap().sat(),
            &[false, false, false, true, true]
        );
        assert_eq!(
            c.check_str("busy || idle").unwrap().sat(),
            &[false, false, true, true, true]
        );
        assert_eq!(
            c.check_str("busy && receive").unwrap().sat(),
            &[false, false, false, true, false]
        );
        assert_eq!(
            c.check_str("!busy").unwrap().sat(),
            &[true, true, true, false, false]
        );
        // busy => receive fails only in the transmit state.
        assert_eq!(
            c.check_str("busy => receive").unwrap().sat(),
            &[true, true, true, true, false]
        );
    }

    #[test]
    fn unknown_proposition_is_an_error() {
        let c = checker();
        let e = c.check_str("buzzy").unwrap_err();
        assert!(matches!(e, CheckError::UnknownProposition { .. }));
        assert!(e.to_string().contains("buzzy"));
    }

    #[test]
    fn steady_state_formula_on_irreducible_chain() {
        // Long-run probabilities of the WaveLAN chain: the off/sleep pair
        // dominates because wake-up is slow.
        let c = checker();
        let out = c.check_str("S(> 0.5) (off || sleep)").unwrap();
        // The chain is irreducible: all states agree.
        assert!(out.sat().iter().all(|&b| b) || out.sat().iter().all(|&b| !b));
        let p = out.probabilities().unwrap();
        assert!((p[0] - p[4]).abs() < 1e-9);
    }

    #[test]
    fn nested_probability_formula() {
        // From idle, one jump reaches busy with probability 2.25/14.25.
        let c = checker();
        let out = c.check_str("P(> 0.15) [X busy]").unwrap();
        assert!(out.holds_in(2));
        assert!(!out.holds_in(0));
        let p = out.probabilities().unwrap();
        assert!((p[2] - 2.25 / 14.25).abs() < 1e-12);

        // Nested: states satisfying P(>0.9)[X (P(>0.15)[X busy])] — one
        // jump into a state from which busy is reachable in one jump with
        // probability > 0.15 (i.e. into idle).
        let out = c.check_str("P(> 0.9) [X (P(> 0.15) [X busy])]").unwrap();
        // receive and transmit jump to idle with probability 1.
        assert!(out.holds_in(3));
        assert!(out.holds_in(4));
        assert!(!out.holds_in(0));
    }

    #[test]
    fn until_formula_end_to_end() {
        let c = checker();
        // Unbounded until: from anywhere, busy is eventually reached (the
        // chain is irreducible). The iterative solver converges to 1 up to
        // its tolerance, so compare against a slightly smaller bound.
        let out = c.check_str("P(> 0.9999) [TT U busy]").unwrap();
        assert_eq!(out.count(), 5);
        // Time-bounded with generous bound.
        let out = c.check_str("P(> 0.1) [idle U[0,2] busy]").unwrap();
        assert!(out.holds_in(2));
        assert!(out.probabilities().is_some());
    }

    #[test]
    fn reward_bounded_until_uses_the_engine() {
        let c = checker();
        let out = c
            .check_str("P(> 0.1) [idle U[0,0.5][0,2000] busy]")
            .unwrap();
        assert!(out.error_bounds().is_some());
        let p = out.probabilities().unwrap();
        assert!(p[2] > 0.1);
        assert_eq!(p[0], 0.0);
    }

    #[test]
    fn unsupported_bounds_surface() {
        let c = checker();
        let e = c
            .check_str("P(> 0.1) [idle U[1,2][0,10] busy]")
            .unwrap_err();
        assert!(matches!(e, CheckError::UnsupportedBounds { .. }));
    }

    #[test]
    fn parse_errors_surface() {
        let c = checker();
        assert!(matches!(c.check_str("P(>)"), Err(CheckError::Parse(_))));
    }
}
