//! The long-lived checking engine: [`CheckSession`].
//!
//! The thesis tool — and [`ModelChecker`](crate::ModelChecker), its
//! library mirror — is one-shot: load a model, check a formula, drop
//! everything. A `CheckSession` is the service-shaped refactor of the
//! same machinery: one session outlives many requests over many models
//! and amortizes everything that is a pure function of its inputs:
//!
//! * **load-once models** — model files are digested and parsed at most
//!   once per distinct *content*; a reload of unchanged files is a hash
//!   lookup, while changed content (same path, different bytes) yields a
//!   fresh entry and can never be served stale results;
//! * **persisted lumping certificates** — the partition-refinement
//!   analysis and its independent verification run once per
//!   `(model, formula)` and the verified certificate (or the verified
//!   absence of a quotient) is reused on every later request;
//! * **a session-scoped Omega-term cache** — the
//!   [`OmegaTermCache`] promoted
//!   from per-adaptive-run to session scope, so `Ω(r', k)` tables are
//!   shared across formulas, models (the cache keys on the coefficient
//!   list), and requests;
//! * **memoized `Sat` sub-results** — every engine-backed subformula's
//!   full result, keyed by `(model_hash, subformula, options)` (see
//!   [`crate::cache`]), with `sat_cache_hits`/`sat_cache_misses`
//!   counters in the [`mrmc_obs::counters`] registry;
//! * **a session-scoped condensation cache** — the Tarjan SCC
//!   decomposition the qualitative dataflow pre-pass slices with (see
//!   [`crate::cache::SccCache`]) is a pure function of the rate graph
//!   and is computed once per model hash.
//!
//! Every cache is exact: the engines are deterministic functions of
//! `(model, formula, options)`, so session results are bit-for-bit
//! identical to fresh one-shot runs (pinned by
//! `tests/server_conformance.rs`). The session is `Sync` — requests may
//! be checked from many threads concurrently, which is what
//! `mrmc-server` does on its worker pool.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mrmc_csrl::StateFormula;
use mrmc_mrm::io::LoadError;
use mrmc_mrm::Mrm;
use mrmc_numerics::omega::{with_omega_cache, OmegaTermCache};
use mrmc_obs::{counters, Event};

use crate::cache::{self, SatCache, SatCtx, SccCache};
use crate::error::CheckError;
use crate::options::{CheckOptions, Reduction};
use crate::outcome::{CheckOutcome, ReductionInfo};
use crate::{lumping, sat};

/// A model registered with a [`CheckSession`]: the parsed MRM plus its
/// content hash (see [`crate::cache::model_hash`]).
///
/// Handles are cheap to clone (the model is shared) and remain valid for
/// the life of the session. Two handles compare equal exactly when they
/// denote the same model content.
#[derive(Debug, Clone)]
pub struct ModelHandle {
    mrm: Arc<Mrm>,
    hash: u64,
}

impl ModelHandle {
    /// The model.
    pub fn mrm(&self) -> &Mrm {
        &self.mrm
    }

    /// The model's content hash — the key every session cache is scoped
    /// by. Stable across loads of byte-different files that parse to the
    /// same model; different for any semantic change.
    pub fn content_hash(&self) -> u64 {
        self.hash
    }
}

impl PartialEq for ModelHandle {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash
    }
}

impl Eq for ModelHandle {}

/// A point-in-time snapshot of a session's cache accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Check requests served (successful or not).
    pub requests: u64,
    /// Distinct model contents parsed (cache misses on load/insert).
    pub models_loaded: u64,
    /// Memoized `Sat` sub-results served from the cache.
    pub sat_cache_hits: u64,
    /// Engine-backed subformulas computed and stored.
    pub sat_cache_misses: u64,
    /// Lumping certificates (or certified negative results) reused.
    pub cert_cache_hits: u64,
    /// Entries in the session's shared Omega-term cache.
    pub omega_cache_entries: u64,
    /// Cumulative Omega-term cache hits.
    pub omega_cache_hits: u64,
    /// SCC condensations served from the session cache instead of being
    /// recomputed by the dataflow pre-pass.
    pub scc_cache_hits: u64,
}

/// What the certificate cache remembers for one `(model, formula)` pair.
///
/// Negative results are cached too: re-running partition refinement to
/// re-discover that no quotient exists (or that verification fails) is
/// exactly the kind of per-request work a session exists to amortize.
#[derive(Debug, Clone)]
enum CertOutcome {
    /// A verified, strictly smaller quotient, with the quotient's own
    /// content hash (the `Sat` cache context when checking on it).
    Verified {
        cert: Arc<lumping::LumpingCertificate>,
        quotient_hash: u64,
    },
    /// A certificate existed but failed independent verification.
    FailedVerify { reason: String },
    /// No nontrivial quotient exists for this formula.
    NoQuotient,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CertKey {
    model_hash: u64,
    formula: String,
}

/// A reusable checking engine with session-scoped caches; see the module
/// docs for what is amortized and why every cache is exact.
#[derive(Debug, Default)]
pub struct CheckSession {
    /// Load-once file store: digest of the four files' bytes → handle.
    by_file_digest: Mutex<BTreeMap<u64, ModelHandle>>,
    /// Structural store: model content hash → handle (dedups
    /// [`insert`](CheckSession::insert) and byte-different reloads).
    by_content: Mutex<BTreeMap<u64, ModelHandle>>,
    certs: Mutex<BTreeMap<CertKey, CertOutcome>>,
    sat_cache: Arc<SatCache>,
    omega: Arc<OmegaTermCache>,
    scc: Arc<SccCache>,
    requests: AtomicU64,
    models_loaded: AtomicU64,
    cert_cache_hits: AtomicU64,
}

impl CheckSession {
    /// A fresh session with empty caches.
    pub fn new() -> Self {
        CheckSession::default()
    }

    /// Register an in-memory model, deduplicating by content hash.
    pub fn insert(&self, mrm: Mrm) -> ModelHandle {
        let hash = cache::model_hash(&mrm);
        let mut by_content = self.by_content.lock().expect("session poisoned");
        by_content
            .entry(hash)
            .or_insert_with(|| {
                self.models_loaded.fetch_add(1, Ordering::Relaxed);
                ModelHandle {
                    mrm: Arc::new(mrm),
                    hash,
                }
            })
            .clone()
    }

    /// Load a model from the four files of the thesis' tool, once per
    /// distinct content.
    ///
    /// The files are always re-read (that is what detects a mutated model
    /// behind an unchanged path), but parsing, validation, and every
    /// downstream cache key off the content: unchanged bytes return the
    /// existing handle, changed bytes produce a fresh one — the old
    /// entry's memoized results can never be served for the new content.
    ///
    /// # Errors
    ///
    /// [`LoadError`] as for [`mrmc_mrm::io::load_model`].
    pub fn load_files(
        &self,
        tra: impl AsRef<Path>,
        lab: impl AsRef<Path>,
        rewr: impl AsRef<Path>,
        rewi: impl AsRef<Path>,
    ) -> Result<ModelHandle, LoadError> {
        let (tra, lab, rewr, rewi) = (tra.as_ref(), lab.as_ref(), rewr.as_ref(), rewi.as_ref());
        let mut digest = cache::Fnv::new();
        for path in [tra, lab, rewr, rewi] {
            let bytes = std::fs::read(path).map_err(|source| LoadError::Io {
                path: path.to_path_buf(),
                source,
            })?;
            digest.write_u64(bytes.len() as u64).write(&bytes);
        }
        let digest = digest.finish();
        if let Some(handle) = self
            .by_file_digest
            .lock()
            .expect("session poisoned")
            .get(&digest)
        {
            return Ok(handle.clone());
        }
        let handle = self.insert(mrmc_mrm::io::load_model(tra, lab, rewr, rewi)?);
        self.by_file_digest
            .lock()
            .expect("session poisoned")
            .insert(digest, handle.clone());
        Ok(handle)
    }

    /// Run the static pre-flight lint for `formula` against `model` and
    /// the engine configured in `options` (the same report
    /// [`check`](CheckSession::check) gates on).
    pub fn preflight(
        &self,
        model: &ModelHandle,
        formula: &StateFormula,
        options: &CheckOptions,
    ) -> mrmc_analysis::Report {
        mrmc_analysis::preflight(model.mrm(), formula, options.engine_hint())
    }

    /// Compute `Sat(Φ)` for a parsed formula, serving every sub-result
    /// the session has already computed from its caches.
    ///
    /// Semantics are identical to
    /// [`ModelChecker::check`](crate::ModelChecker::check) — pre-flight
    /// gate, certified reduction under [`Reduction::Auto`], three-valued
    /// verdicts — and the outcome is bit-for-bit what a fresh one-shot
    /// run would produce.
    ///
    /// # Errors
    ///
    /// As for [`ModelChecker::check`](crate::ModelChecker::check).
    pub fn check(
        &self,
        model: &ModelHandle,
        formula: &StateFormula,
        options: &CheckOptions,
    ) -> Result<CheckOutcome, CheckError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let result = self.check_inner(model, formula, options);
        self.emit_counters();
        result
    }

    /// Parse and check a formula given in concrete syntax.
    ///
    /// # Errors
    ///
    /// [`CheckError::Parse`] for syntax errors, otherwise as
    /// [`check`](CheckSession::check).
    pub fn check_str(
        &self,
        model: &ModelHandle,
        formula: &str,
        options: &CheckOptions,
    ) -> Result<CheckOutcome, CheckError> {
        let parsed = mrmc_csrl::parse(formula)?;
        self.check(model, &parsed, options)
    }

    fn check_inner(
        &self,
        model: &ModelHandle,
        formula: &StateFormula,
        options: &CheckOptions,
    ) -> Result<CheckOutcome, CheckError> {
        if options.preflight {
            let _span = mrmc_obs::span("preflight");
            let report = self.preflight(model, formula, options);
            if report.has_errors() {
                return Err(CheckError::Preflight(report));
            }
        }
        let cert = {
            let _span = mrmc_obs::span("reduction");
            self.certificate(model, formula, options)?
        };
        let options_fp = cache::options_fingerprint(options);
        if let Some((cert, quotient_hash)) = cert {
            let info = ReductionInfo {
                original_states: model.mrm().num_states(),
                reduced_states: cert.quotient.num_states(),
            };
            let ctx = SatCtx {
                model_hash: quotient_hash,
                options_fp,
            };
            let outcome = self.run(&cert.quotient, options, formula, ctx)?;
            return Ok(outcome.lift(&cert.partition, info));
        }
        let ctx = SatCtx {
            model_hash: model.content_hash(),
            options_fp,
        };
        self.run(model.mrm(), options, formula, ctx)
    }

    /// Run the recursion with the session caches installed.
    fn run(
        &self,
        mrm: &Mrm,
        options: &CheckOptions,
        formula: &StateFormula,
        ctx: SatCtx,
    ) -> Result<CheckOutcome, CheckError> {
        let _span = mrmc_obs::span("engine");
        with_omega_cache(self.omega.clone(), || {
            cache::with_scc_cache(self.scc.clone(), || {
                cache::with_sat_cache(self.sat_cache.clone(), ctx, || {
                    sat::satisfy(mrm, options, formula)
                })
            })
        })
    }

    /// The verified certificate `check` reduces with (plus the quotient's
    /// content hash), resolved through the session's certificate cache.
    /// Mirrors `ModelChecker::reduction_certificate` exactly, including
    /// the error messages under [`Reduction::Require`].
    #[allow(clippy::type_complexity)]
    fn certificate(
        &self,
        model: &ModelHandle,
        formula: &StateFormula,
        options: &CheckOptions,
    ) -> Result<Option<(Arc<lumping::LumpingCertificate>, u64)>, CheckError> {
        let require = match options.reduction {
            Reduction::Off => return Ok(None),
            Reduction::Auto => false,
            Reduction::Require => true,
        };
        let key = CertKey {
            model_hash: model.content_hash(),
            formula: formula.to_string(),
        };
        let outcome = {
            let cached = self
                .certs
                .lock()
                .expect("session poisoned")
                .get(&key)
                .cloned();
            match cached {
                Some(outcome) => {
                    self.cert_cache_hits.fetch_add(1, Ordering::Relaxed);
                    outcome
                }
                None => {
                    let outcome = match lumping::analyze(model.mrm(), formula).certificate {
                        Some(cert) => match cert.verify(model.mrm()) {
                            Ok(()) => CertOutcome::Verified {
                                quotient_hash: cache::model_hash(&cert.quotient),
                                cert: Arc::new(cert),
                            },
                            Err(e) => CertOutcome::FailedVerify {
                                reason: format!("lumping certificate failed verification: {e}"),
                            },
                        },
                        None => CertOutcome::NoQuotient,
                    };
                    self.certs
                        .lock()
                        .expect("session poisoned")
                        .entry(key)
                        .or_insert(outcome)
                        .clone()
                }
            }
        };
        match outcome {
            CertOutcome::Verified {
                cert,
                quotient_hash,
            } => Ok(Some((cert, quotient_hash))),
            CertOutcome::FailedVerify { reason } if require => {
                Err(CheckError::Reduction { reason })
            }
            CertOutcome::NoQuotient if require => Err(CheckError::Reduction {
                reason: "no nontrivial quotient exists for this formula".into(),
            }),
            CertOutcome::FailedVerify { .. } | CertOutcome::NoQuotient => Ok(None),
        }
    }

    /// Report the cumulative cache counters to the installed telemetry
    /// recorder, if any ([`RunMetrics`](mrmc_obs::RunMetrics) merges
    /// counters by maximum, so re-emitting totals is safe).
    fn emit_counters(&self) {
        let stats = self.stats();
        mrmc_obs::record(|| Event::Counter {
            name: counters::SAT_CACHE_HITS,
            value: stats.sat_cache_hits,
        });
        mrmc_obs::record(|| Event::Counter {
            name: counters::SAT_CACHE_MISSES,
            value: stats.sat_cache_misses,
        });
        mrmc_obs::record(|| Event::Counter {
            name: counters::CERT_CACHE_HITS,
            value: stats.cert_cache_hits,
        });
        mrmc_obs::record(|| Event::Counter {
            name: counters::MODELS_LOADED,
            value: stats.models_loaded,
        });
    }

    /// A point-in-time snapshot of the session's cache accounting. Every
    /// counter is monotone over the session's lifetime.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            requests: self.requests.load(Ordering::Relaxed),
            models_loaded: self.models_loaded.load(Ordering::Relaxed),
            sat_cache_hits: self.sat_cache.hits(),
            sat_cache_misses: self.sat_cache.misses(),
            cert_cache_hits: self.cert_cache_hits.load(Ordering::Relaxed),
            omega_cache_entries: self.omega.len() as u64,
            omega_cache_hits: self.omega.hits(),
            scc_cache_hits: self.scc.hits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelChecker;
    use mrmc_ctmc::CtmcBuilder;

    fn two_state(rate: f64) -> Mrm {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, rate).transition(1, 0, 0.9);
        b.label(0, "up").label(1, "down");
        Mrm::without_rewards(b.build().unwrap())
    }

    #[test]
    fn insert_dedups_by_content() {
        let session = CheckSession::new();
        let a = session.insert(two_state(0.1));
        let b = session.insert(two_state(0.1));
        let c = session.insert(two_state(0.2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(session.stats().models_loaded, 2);
    }

    #[test]
    fn session_results_match_one_shot_and_repeat_hits_cache() {
        let session = CheckSession::new();
        let options = CheckOptions::new();
        let handle = session.insert(two_state(0.1));
        let formula = "S(>= 0.85) (up)";

        let one_shot = ModelChecker::new(two_state(0.1), options)
            .check_str(formula)
            .unwrap();
        let cold = session.check_str(&handle, formula, &options).unwrap();
        assert_eq!(one_shot, cold);
        let after_cold = session.stats();
        assert_eq!(after_cold.sat_cache_hits, 0);
        assert!(after_cold.sat_cache_misses > 0);

        let hot = session.check_str(&handle, formula, &options).unwrap();
        assert_eq!(one_shot, hot);
        let after_hot = session.stats();
        assert!(after_hot.sat_cache_hits > 0, "{after_hot:?}");
        assert_eq!(after_hot.sat_cache_misses, after_cold.sat_cache_misses);
        assert!(after_hot.cert_cache_hits > after_cold.cert_cache_hits);
        assert_eq!(after_hot.requests, 2);
    }

    #[test]
    fn different_options_do_not_share_entries() {
        let session = CheckSession::new();
        let handle = session.insert(two_state(0.1));
        let formula = "P(> 0.05) [up U[0,1] down]";
        let defaults = CheckOptions::new();
        let tighter = CheckOptions::new().with_engine(crate::UntilEngine::uniformization(1e-10));
        session.check_str(&handle, formula, &defaults).unwrap();
        let misses = session.stats().sat_cache_misses;
        session.check_str(&handle, formula, &tighter).unwrap();
        assert!(
            session.stats().sat_cache_misses > misses,
            "a different engine knob must not hit the cache"
        );
    }

    #[test]
    fn shared_subformulas_hit_across_enclosing_formulas() {
        let session = CheckSession::new();
        let handle = session.insert(two_state(0.1));
        let options = CheckOptions::new();
        session
            .check_str(&handle, "S(>= 0.85) (up)", &options)
            .unwrap();
        // The same S-subformula embedded under a conjunction is served
        // from the cache.
        session
            .check_str(&handle, "(S(>= 0.85) (up)) && up", &options)
            .unwrap();
        assert!(session.stats().sat_cache_hits > 0);
    }

    #[test]
    fn load_files_is_load_once_and_detects_mutation() {
        let dir = std::env::temp_dir().join(format!("mrmc-session-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, content: &str| {
            let p = dir.join(name);
            std::fs::write(&p, content).unwrap();
            p
        };
        let tra = write("m.tra", "STATES 2\nTRANSITIONS 2\n1 2 0.5\n2 1 1.5\n");
        let lab = write("m.lab", "#DECLARATION\nup down\n#END\n1 up\n2 down\n");
        let rewr = write("m.rewr", "1 2.0\n2 0.0\n");
        let rewi = write("m.rewi", "TRANSITIONS 0\n");

        let session = CheckSession::new();
        let a = session.load_files(&tra, &lab, &rewr, &rewi).unwrap();
        let b = session.load_files(&tra, &lab, &rewr, &rewi).unwrap();
        assert_eq!(a, b);
        assert_eq!(session.stats().models_loaded, 1);

        // Same path, different content: a fresh handle.
        std::fs::write(&tra, "STATES 2\nTRANSITIONS 2\n1 2 0.75\n2 1 1.5\n").unwrap();
        let c = session.load_files(&tra, &lab, &rewr, &rewi).unwrap();
        assert_ne!(a, c);
        assert_eq!(session.stats().models_loaded, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn require_reduction_errors_are_faithful_and_cached() {
        let session = CheckSession::new();
        let handle = session.insert(two_state(0.1));
        let options = CheckOptions::new().with_reduction(Reduction::Require);
        // The two-state chain has no nontrivial quotient for this formula.
        let e = session
            .check_str(&handle, "S(>= 0.85) (up)", &options)
            .unwrap_err();
        let one_shot = ModelChecker::new(two_state(0.1), options)
            .check_str("S(>= 0.85) (up)")
            .unwrap_err();
        assert_eq!(format!("{e}"), format!("{one_shot}"));
        let e2 = session
            .check_str(&handle, "S(>= 0.85) (up)", &options)
            .unwrap_err();
        assert_eq!(format!("{e}"), format!("{e2}"));
        assert!(session.stats().cert_cache_hits > 0);
    }
}
