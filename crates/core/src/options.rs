//! Checker configuration.

use mrmc_numerics::discretization::DiscretizationOptions;
use mrmc_numerics::monte_carlo::SimulationOptions;
use mrmc_numerics::uniformization::UniformOptions;
use mrmc_sparse::solver::{SolverMethod, SolverOptions};

/// Which engine evaluates time- and reward-bounded until formulas
/// (the `[u|d] = f` switch of the thesis tool's command line).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UntilEngine {
    /// Uniformization with depth-first path generation and the given
    /// truncation probability `w` (Section 4.6). The tool's default with
    /// `w = 1e-8`.
    Uniformization(UniformOptions),
    /// Discretization with the given step `d` (Section 4.5).
    Discretization(DiscretizationOptions),
    /// Monte-Carlo simulation (beyond the paper): a statistical *estimate*
    /// with no deterministic error bound — probability-bound verdicts near
    /// the bound are unreliable. Intended for validation and for models too
    /// large for the exact engines.
    Simulation(SimulationOptions),
}

impl UntilEngine {
    /// Uniformization with truncation probability `w`.
    pub fn uniformization(w: f64) -> Self {
        UntilEngine::Uniformization(UniformOptions::new().with_truncation(w))
    }

    /// Discretization with step `d`.
    pub fn discretization(d: f64) -> Self {
        UntilEngine::Discretization(DiscretizationOptions::with_step(d))
    }

    /// Monte-Carlo simulation with the given sample count.
    pub fn simulation(samples: u64) -> Self {
        UntilEngine::Simulation(SimulationOptions::with_samples(samples))
    }
}

impl Default for UntilEngine {
    fn default() -> Self {
        UntilEngine::Uniformization(UniformOptions::new())
    }
}

/// Whether the checker may run on a certified lumping quotient
/// (see [`mrmc_analysis::lumping`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// Analyze lumpability for each formula, independently verify the
    /// certificate, and check on the quotient when it is strictly smaller
    /// than the original model; silently fall back to the full model
    /// otherwise. The default — the reduction is exact (bitwise), so there
    /// is no accuracy trade-off.
    #[default]
    Auto,
    /// Never reduce; always check on the full model (the CLI's
    /// `--no-reduction`).
    Off,
    /// Fail with [`CheckError::Reduction`](crate::CheckError) unless a
    /// verified, strictly smaller quotient exists. For callers that depend
    /// on the reduction (e.g. the full model is too large).
    Require,
}

/// Options steering the model checker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckOptions {
    /// Engine for reward-bounded until formulas.
    pub until_engine: UntilEngine,
    /// Linear-solver controls for steady-state and unbounded reachability.
    pub solver: SolverOptions,
    /// Truncation error for the Fox–Glynn baseline used on until formulas
    /// without reward bounds.
    pub transient_epsilon: f64,
    /// Requested accuracy `ε` on computed probabilities. When set, until
    /// engines run under the adaptive driver
    /// ([`mrmc_numerics::adaptive`]): their knobs (`w`, `d`, samples) are
    /// refined until the reported error budget is ≤ `ε`, and checking
    /// fails with [`CheckError::ToleranceNotMet`](crate::CheckError) if
    /// the driver's work cap is hit first. `None` (the default) runs each
    /// engine once at its configured knob.
    pub tolerance: Option<f64>,
    /// Run the static pre-flight lint ([`mrmc_analysis::preflight`])
    /// before any numerical engine starts. Error-grade findings abort the
    /// check with [`CheckError::Preflight`](crate::CheckError) instead of
    /// surfacing later (or never) from deep inside an engine. On by
    /// default; [`without_preflight`](CheckOptions::without_preflight)
    /// turns it off for callers that want the raw engine errors.
    pub preflight: bool,
    /// Whether to check on a certified lumping quotient when one exists
    /// (see [`Reduction`]). [`Reduction::Auto`] by default.
    pub reduction: Reduction,
    /// Qualitative precomputation and formula-driven slicing: before an
    /// until engine runs, a verified
    /// [`QualitativeCertificate`](mrmc_analysis::QualitativeCertificate)
    /// pre-assigns exact 0/1 probabilities to the certain-zero/one states
    /// and the engine solves only the undetermined block. On by default —
    /// when the certificate prunes nothing the run is bitwise identical
    /// to an unsliced one; [`without_slicing`](CheckOptions::without_slicing)
    /// (the CLI's `--no-slicing`) forces the full numerical solve.
    pub slicing: bool,
}

impl CheckOptions {
    /// The thesis tool's defaults: uniformization with `w = 1e-8`.
    pub fn new() -> Self {
        CheckOptions {
            until_engine: UntilEngine::default(),
            solver: SolverOptions::new(),
            transient_epsilon: 1e-10,
            tolerance: None,
            preflight: true,
            reduction: Reduction::Auto,
            slicing: true,
        }
    }

    /// Disable the static pre-flight lint (see
    /// [`preflight`](CheckOptions::preflight)).
    pub fn without_preflight(mut self) -> Self {
        self.preflight = false;
        self
    }

    /// Disable qualitative slicing (see
    /// [`slicing`](CheckOptions::slicing)): every until engine solves the
    /// full state space numerically.
    pub fn without_slicing(mut self) -> Self {
        self.slicing = false;
        self
    }

    /// The [`mrmc_analysis::EngineHint`] matching the configured until
    /// engine, for the cost-prediction lint passes.
    pub fn engine_hint(&self) -> mrmc_analysis::EngineHint {
        match self.until_engine {
            UntilEngine::Uniformization(u) => mrmc_analysis::EngineHint::Uniformization {
                truncation: u.truncation,
            },
            UntilEngine::Discretization(d) => {
                mrmc_analysis::EngineHint::Discretization { step: d.step }
            }
            UntilEngine::Simulation(s) => {
                mrmc_analysis::EngineHint::Simulation { samples: s.samples }
            }
        }
    }

    /// Replace the until engine.
    pub fn with_engine(mut self, engine: UntilEngine) -> Self {
        self.until_engine = engine;
        self
    }

    /// Request a guaranteed accuracy `ε` on computed probabilities (see
    /// [`tolerance`](CheckOptions::tolerance)).
    pub fn with_tolerance(mut self, epsilon: f64) -> Self {
        self.tolerance = Some(epsilon);
        self
    }

    /// Set the reduction policy (see [`Reduction`]).
    pub fn with_reduction(mut self, reduction: Reduction) -> Self {
        self.reduction = reduction;
        self
    }

    /// Select the iteration scheme for the reachability linear systems —
    /// unbounded until, and the per-BSCC reachability solves inside
    /// steady-state analysis (the CLI's `--solver` flag). Both methods are
    /// individually deterministic; the colored method additionally honors
    /// the thread count set by [`with_threads`](CheckOptions::with_threads)
    /// and is bit-identical at every thread count.
    pub fn with_solver_method(mut self, method: SolverMethod) -> Self {
        self.solver = self.solver.with_method(method);
        self
    }

    /// Set the worker-thread count for the parallel engines
    /// (`0` = auto-detect, `1` = serial): the uniformization until engine
    /// (see [`ParallelOptions`](mrmc_numerics::uniformization::ParallelOptions)),
    /// the discretization grid sweep, and the colored linear solver. The
    /// parallel engines are deterministic — results are bit-identical at
    /// any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        match self.until_engine {
            UntilEngine::Uniformization(u) => {
                self.until_engine = UntilEngine::Uniformization(u.with_threads(threads));
            }
            UntilEngine::Discretization(d) => {
                self.until_engine = UntilEngine::Discretization(d.with_threads(threads));
            }
            UntilEngine::Simulation(_) => {}
        }
        self.solver = self.solver.with_threads(threads);
        self
    }
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_tool() {
        let o = CheckOptions::new();
        match o.until_engine {
            UntilEngine::Uniformization(u) => assert_eq!(u.truncation, 1e-8),
            _ => panic!("default must be uniformization"),
        }
        assert_eq!(CheckOptions::default(), o);
    }

    #[test]
    fn preflight_defaults_on_and_can_be_disabled() {
        assert!(CheckOptions::new().preflight);
        assert!(!CheckOptions::new().without_preflight().preflight);
    }

    #[test]
    fn slicing_defaults_on_and_can_be_disabled() {
        assert!(CheckOptions::new().slicing);
        assert!(!CheckOptions::new().without_slicing().slicing);
    }

    #[test]
    fn engine_hint_mirrors_the_until_engine() {
        use mrmc_analysis::EngineHint;
        assert_eq!(
            CheckOptions::new()
                .with_engine(UntilEngine::uniformization(1e-11))
                .engine_hint(),
            EngineHint::Uniformization { truncation: 1e-11 }
        );
        assert_eq!(
            CheckOptions::new()
                .with_engine(UntilEngine::discretization(0.25))
                .engine_hint(),
            EngineHint::Discretization { step: 0.25 }
        );
        assert_eq!(
            CheckOptions::new()
                .with_engine(UntilEngine::simulation(5_000))
                .engine_hint(),
            EngineHint::Simulation { samples: 5_000 }
        );
    }

    #[test]
    fn reduction_defaults_to_auto() {
        let o = CheckOptions::new();
        assert_eq!(o.reduction, Reduction::Auto);
        assert_eq!(o.with_reduction(Reduction::Off).reduction, Reduction::Off);
        assert_eq!(
            CheckOptions::new()
                .with_reduction(Reduction::Require)
                .reduction,
            Reduction::Require
        );
    }

    #[test]
    fn tolerance_builder() {
        let o = CheckOptions::new();
        assert_eq!(o.tolerance, None);
        assert_eq!(o.with_tolerance(1e-6).tolerance, Some(1e-6));
    }

    #[test]
    fn builders() {
        let o = CheckOptions::new().with_engine(UntilEngine::discretization(0.25));
        match o.until_engine {
            UntilEngine::Discretization(d) => assert_eq!(d.step, 0.25),
            _ => panic!("expected discretization"),
        }
        match UntilEngine::simulation(5_000) {
            UntilEngine::Simulation(s) => assert_eq!(s.samples, 5_000),
            _ => panic!("expected simulation"),
        }
        match UntilEngine::uniformization(1e-11) {
            UntilEngine::Uniformization(u) => assert_eq!(u.truncation, 1e-11),
            _ => panic!("expected uniformization"),
        }
    }

    #[test]
    fn solver_method_builder() {
        let o = CheckOptions::new();
        assert_eq!(o.solver.method, SolverMethod::GaussSeidel);
        assert_eq!(
            o.with_solver_method(SolverMethod::ColoredGaussSeidel)
                .solver
                .method,
            SolverMethod::ColoredGaussSeidel
        );
    }

    #[test]
    fn with_threads_reaches_the_uniformization_engine() {
        let o = CheckOptions::new().with_threads(4);
        match o.until_engine {
            UntilEngine::Uniformization(u) => assert_eq!(u.parallel.threads, 4),
            _ => panic!("default must be uniformization"),
        }
        assert_eq!(o.solver.threads, 4);
        // The discretization grid sweep gets the thread count too.
        let o = CheckOptions::new()
            .with_engine(UntilEngine::discretization(0.5))
            .with_threads(4);
        match o.until_engine {
            UntilEngine::Discretization(d) => {
                assert_eq!(d.step, 0.5);
                assert_eq!(d.threads, 4);
            }
            _ => panic!("expected discretization"),
        }
    }
}
