//! Witness extraction: the most probable satisfying path for an until
//! formula, as a diagnostic companion to the probability verdicts.
//!
//! For `Φ U Ψ` the most probable witness is the state sequence maximizing
//! the product of embedded-DTMC branching probabilities among paths that
//! stay in Φ-states and end in a Ψ-state — found by a Dijkstra-style search
//! maximizing log-probability. The returned [`Witness`] also carries the
//! expected sojourn times (`1/E(s)`) and the reward its path would
//! accumulate, which lets users sanity-check reward bounds against a
//! concrete execution.

use mrmc_mrm::{Mrm, TimedPath};

use crate::error::CheckError;

/// A concrete satisfying execution for an until formula.
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// The state sequence, starting at the query state and ending in a
    /// Ψ-state.
    pub states: Vec<usize>,
    /// Product of embedded-DTMC branching probabilities along the path.
    pub probability: f64,
    /// The path with *expected* sojourn times (`1/E(s)` per transient
    /// state).
    pub timed: TimedPath,
    /// Reward accumulated by `timed` at the moment the Ψ-state is entered
    /// (rate rewards over expected sojourns plus all impulses).
    pub reward_at_goal: f64,
    /// Time elapsed at the moment the Ψ-state is entered.
    pub time_at_goal: f64,
}

/// Find the most probable Φ-constrained path from `start` to a Ψ-state.
///
/// Returns `None` when no Ψ-state is reachable through Φ-states. A `start`
/// already satisfying Ψ yields the trivial single-state witness with
/// probability one.
///
/// ```
/// use mrmc::witness::most_probable_witness;
///
/// let mut b = mrmc_ctmc::CtmcBuilder::new(3);
/// b.transition(0, 1, 3.0).transition(0, 2, 1.0).transition(1, 2, 1.0);
/// b.label(2, "goal");
/// let mrm = mrmc_mrm::Mrm::without_rewards(b.build()?);
/// let psi = mrm.labeling().states_with("goal");
/// let w = most_probable_witness(&mrm, &[true; 3], &psi, 0)?.unwrap();
/// // The detour through state 1 (probability 3/4 · 1) beats the direct
/// // jump (probability 1/4).
/// assert_eq!(w.states, vec![0, 1, 2]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// [`CheckError`] when `phi`/`psi` have the wrong length.
pub fn most_probable_witness(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    start: usize,
) -> Result<Option<Witness>, CheckError> {
    let n = mrm.num_states();
    if phi.len() != n || psi.len() != n || start >= n {
        return Err(CheckError::Numerics(
            mrmc_numerics::NumericsError::SizeMismatch {
                expected: n,
                found: phi.len().min(psi.len()).min(start),
            },
        ));
    }
    if psi[start] {
        return Ok(Some(build_witness(mrm, vec![start])));
    }
    if !phi[start] {
        return Ok(None);
    }

    // Dijkstra on -log(probability); only Φ-states may be traversed.
    const UNREACHED: f64 = f64::INFINITY;
    let mut dist = vec![UNREACHED; n];
    let mut pred = vec![usize::MAX; n];
    let mut done = vec![false; n];
    dist[start] = 0.0;

    // Binary heap over (cost, state); std's heap is a max-heap, so store
    // negated costs through `std::cmp::Reverse` on ordered bits.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<(Reverse<u64>, usize)> = BinaryHeap::new();
    heap.push((Reverse(0.0_f64.to_bits()), start));

    let mut goal = None;
    while let Some((Reverse(cost_bits), s)) = heap.pop() {
        let cost = f64::from_bits(cost_bits);
        if done[s] || cost > dist[s] {
            continue;
        }
        done[s] = true;
        if psi[s] {
            goal = Some(s);
            break;
        }
        if !phi[s] {
            continue;
        }
        let exit = mrm.ctmc().exit_rate(s);
        if exit == 0.0 {
            continue;
        }
        for (target, rate) in mrm.ctmc().rates().row(s) {
            if target == s {
                continue; // self-loops never help a shortest witness
            }
            if !phi[target] && !psi[target] {
                continue;
            }
            let step_cost = -(rate / exit).ln();
            let next = cost + step_cost;
            if next < dist[target] {
                dist[target] = next;
                pred[target] = s;
                heap.push((Reverse(next.to_bits()), target));
            }
        }
    }

    let Some(goal) = goal else {
        return Ok(None);
    };
    let mut states = vec![goal];
    let mut s = goal;
    while s != start {
        s = pred[s];
        states.push(s);
    }
    states.reverse();
    Ok(Some(build_witness(mrm, states)))
}

fn build_witness(mrm: &Mrm, states: Vec<usize>) -> Witness {
    let mut probability = 1.0;
    for w in states.windows(2) {
        probability *= mrm.ctmc().embedded_probability(w[0], w[1]);
    }
    let sojourns: Vec<f64> = states[..states.len() - 1]
        .iter()
        .map(|&s| 1.0 / mrm.ctmc().exit_rate(s))
        .collect();
    let time_at_goal: f64 = sojourns.iter().sum();
    let timed = TimedPath::new(states.clone(), sojourns).expect("witness path is well-formed");
    let mut reward_at_goal = 0.0;
    for (i, w) in states.windows(2).enumerate() {
        reward_at_goal += mrm.state_reward(w[0]) * timed.sojourns()[i];
        reward_at_goal += mrm.impulse_reward(w[0], w[1]);
    }
    Witness {
        states,
        probability,
        timed,
        reward_at_goal,
        time_at_goal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_mrm::{ImpulseRewards, StateRewards};

    fn wavelan() -> Mrm {
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 0.1);
        b.transition(1, 0, 0.05).transition(1, 2, 5.0);
        b.transition(2, 1, 12.0)
            .transition(2, 3, 1.5)
            .transition(2, 4, 0.75);
        b.transition(3, 2, 10.0);
        b.transition(4, 2, 15.0);
        b.label(0, "off");
        b.label(1, "sleep");
        b.label(2, "idle");
        b.label(3, "busy");
        b.label(4, "busy");
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![0.0, 80.0, 1319.0, 1675.0, 1425.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(2, 3, 0.42545).unwrap();
        iota.set(2, 4, 0.36195).unwrap();
        Mrm::new(ctmc, rho, iota).unwrap()
    }

    #[test]
    fn wavelan_most_probable_route_to_busy() {
        // From off: off → sleep → idle → receive dominates (the transmit
        // branch has a smaller branching probability: 0.75 vs 1.5).
        let m = wavelan();
        let phi = vec![true; 5];
        let psi = m.labeling().states_with("busy");
        let w = most_probable_witness(&m, &phi, &psi, 0)
            .unwrap()
            .expect("busy is reachable");
        assert_eq!(w.states, vec![0, 1, 2, 3]);
        // P = 1 · (5/5.05) · (1.5/14.25).
        let expect = (5.0 / 5.05) * (1.5 / 14.25);
        assert!((w.probability - expect).abs() < 1e-12);
        // Expected timings: 10 + 1/5.05 + 1/14.25 hours.
        let expect_t = 10.0 + 1.0 / 5.05 + 1.0 / 14.25;
        assert!((w.time_at_goal - expect_t).abs() < 1e-9);
        // Reward includes the entry impulse into receive.
        assert!(w.reward_at_goal > 0.42545);
        w.timed.validate_in(&m).unwrap();
    }

    #[test]
    fn phi_constraint_forces_detours() {
        // 0 → 1 → 3 (high probability) vs 0 → 2 → 3: with 1 excluded from
        // Φ the witness must go through 2.
        let mut b = CtmcBuilder::new(4);
        b.transition(0, 1, 9.0).transition(0, 2, 1.0);
        b.transition(1, 3, 1.0).transition(2, 3, 1.0);
        b.label(3, "goal");
        let m = Mrm::without_rewards(b.build().unwrap());
        let psi = m.labeling().states_with("goal");

        let all = vec![true; 4];
        let w = most_probable_witness(&m, &all, &psi, 0).unwrap().unwrap();
        assert_eq!(w.states, vec![0, 1, 3]);

        let phi = vec![true, false, true, true];
        let w = most_probable_witness(&m, &phi, &psi, 0).unwrap().unwrap();
        assert_eq!(w.states, vec![0, 2, 3]);
        assert!((w.probability - 0.1).abs() < 1e-12);
    }

    #[test]
    fn trivial_and_impossible_cases() {
        let m = wavelan();
        let phi = vec![true; 5];
        let psi = m.labeling().states_with("busy");
        // Start in a Ψ-state: trivial witness.
        let w = most_probable_witness(&m, &phi, &psi, 3).unwrap().unwrap();
        assert_eq!(w.states, vec![3]);
        assert_eq!(w.probability, 1.0);
        assert_eq!(w.time_at_goal, 0.0);
        // Start violating Φ with Ψ unreachable: none.
        let no_phi = vec![false; 5];
        assert!(most_probable_witness(&m, &no_phi, &psi, 0)
            .unwrap()
            .is_none());
        // Unreachable goal.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 0, 1.0);
        b.label(1, "goal");
        let disconnected = Mrm::without_rewards(b.build().unwrap());
        let psi = disconnected.labeling().states_with("goal");
        assert!(most_probable_witness(&disconnected, &[true, true], &psi, 0)
            .unwrap()
            .is_none());
    }

    #[test]
    fn size_mismatch_rejected() {
        let m = wavelan();
        assert!(most_probable_witness(&m, &[true], &[false], 0).is_err());
        assert!(most_probable_witness(&m, &[true; 5], &[false; 5], 7).is_err());
    }
}
