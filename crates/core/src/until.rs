//! Model checking until formulas (Section 4.3.2, Algorithm 4.5).
//!
//! Dispatch by bound shape, following the thesis' property classes:
//!
//! * **P0** `Φ U Ψ` (no bounds) — a linear system over the embedded DTMC
//!   (Eq. 3.8);
//! * **P1** `Φ U^{[0,t]} Ψ` (time only) — Fox–Glynn uniformization
//!   (`[Bai03]`, [`mrmc_numerics::baseline`]);
//! * **P2** `Φ U^{[0,t]}_{[0,r]} Ψ` (time and reward) — the uniformization
//!   path engine or discretization, per the configured
//!   [`UntilEngine`](crate::UntilEngine).
//!
//! General lower bounds are not supported by the numerical methods (the
//! thesis' Chapter 6 limitation) and yield
//! [`CheckError::UnsupportedBounds`] — except under the
//! [`UntilEngine::Simulation`] engine, whose trajectory-level semantics
//! evaluate arbitrary closed intervals exactly (statistical model
//! checking; see [`mrmc_numerics::monte_carlo::estimate_until_general`]).

use mrmc_analysis::dataflow as qual;
use mrmc_csrl::Interval;
use mrmc_ctmc::reach;
use mrmc_mrm::Mrm;
use mrmc_numerics::{adaptive, baseline, discretization, monte_carlo, uniformization, ErrorBudget};
use mrmc_obs::counters;

use crate::cache;
use crate::error::CheckError;
use crate::options::{CheckOptions, UntilEngine};
use crate::outcome::DataflowInfo;

/// Per-state until probabilities plus (engine-dependent) error bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct UntilAnalysis {
    /// `P^M(s, Φ U^I_J Ψ)` per state.
    pub probabilities: Vec<f64>,
    /// Truncation error bounds per state when the uniformization engine
    /// ran; `None` for the other property classes. Kept with its original
    /// engine-native meaning (Eq. 4.6 truncation mass / standard error);
    /// the full decomposition lives in [`budgets`](UntilAnalysis::budgets).
    pub error_bounds: Option<Vec<f64>>,
    /// Per-state error budgets: `None` only for the property classes
    /// solved exactly (to solver tolerance) — unbounded until over the
    /// embedded DTMC. Statistical components hold at the simulation
    /// confidence level rather than with certainty.
    pub budgets: Option<Vec<ErrorBudget>>,
    /// The engine that actually ran, which the bound shape can override
    /// away from the configured [`UntilEngine`](crate::UntilEngine):
    /// `"reachability"` (P0), `"baseline"` (P1 / trivial-reward windows),
    /// `"uniformization"`, `"discretization"`, or `"simulation"` (P2).
    pub engine: &'static str,
    /// The qualitative dataflow pre-pass result, when slicing ran for
    /// this operator (see [`CheckOptions::slicing`]); `None` for
    /// `--no-slicing` runs, the property classes the slicer leaves
    /// untouched (P1 and lower-bound decompositions), and the defensive
    /// fallback after a failed certificate re-verification.
    pub dataflow: Option<DataflowInfo>,
}

/// Compute `P^M(s, Φ U^I_J Ψ)` for every state.
///
/// # Errors
///
/// [`CheckError::UnsupportedBounds`] for non-zero lower bounds or a bounded
/// reward with unbounded time; numerical failures are propagated.
pub fn until_probabilities(
    mrm: &Mrm,
    options: &CheckOptions,
    time: &Interval,
    reward: &Interval,
    phi: &[bool],
    psi: &[bool],
) -> Result<UntilAnalysis, CheckError> {
    if let Some(eps) = options.tolerance {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(CheckError::Numerics(
                mrmc_numerics::NumericsError::InvalidParameter {
                    name: "tolerance",
                    value: eps,
                    requirement: "must be in (0, 1)",
                },
            ));
        }
    }
    if time.lo() != 0.0 || reward.lo() != 0.0 {
        // A non-zero time lower bound with a *trivial* reward bound has an
        // exact method: the standard two-phase decomposition ([Bai03]).
        if reward.is_trivial() {
            if !time.is_upper_unbounded() {
                // Two Fox–Glynn phases, each truncated at ε': the budget
                // is their sum. A requested tolerance simply tightens ε'.
                let eps_used = match options.tolerance {
                    Some(eps) => options.transient_epsilon.min(eps / 2.0),
                    None => options.transient_epsilon,
                };
                let _span = mrmc_obs::span("until/baseline");
                let probabilities =
                    baseline::until_time_interval(mrm, phi, psi, time.lo(), time.hi(), eps_used)?;
                let n = probabilities.len();
                return Ok(UntilAnalysis {
                    probabilities,
                    error_bounds: None,
                    budgets: Some(vec![ErrorBudget::from_poisson_tail(2.0 * eps_used); n]),
                    engine: "baseline",
                    dataflow: None,
                });
            }
            // Φ U^{[t1,∞)} Ψ: unbounded reachability as phase 2, the
            // Φ-constrained backward transient as phase 1. The solver
            // phase is exact to its own convergence tolerance, outside
            // the budget system — no budget is claimed.
            let _span = mrmc_obs::span("until/baseline");
            let embedded = mrm.ctmc().embedded_dtmc();
            let mut u = reach::until_unbounded(embedded.probabilities(), phi, psi, options.solver)?;
            for (s, value) in u.iter_mut().enumerate() {
                if !phi[s] {
                    *value = 0.0;
                }
            }
            let probabilities = baseline::phi_constrained_backward(
                mrm,
                phi,
                u,
                time.lo(),
                options.transient_epsilon,
            )?;
            return Ok(UntilAnalysis {
                probabilities,
                error_bounds: None,
                budgets: None,
                engine: "baseline",
                dataflow: None,
            });
        }
        // Only the statistical engine evaluates general lower bounds.
        if let UntilEngine::Simulation(sopts) = options.until_engine {
            if !time.is_upper_unbounded() {
                let _span = mrmc_obs::span("until/simulation");
                let samples = simulation_samples(sopts.samples, options.tolerance)?;
                let mut sopts = sopts;
                sopts.samples = samples;
                let radius = monte_carlo::hoeffding_radius(samples, adaptive::SIMULATION_DELTA);
                let n = mrm.num_states();
                let mut probabilities = vec![0.0; n];
                let mut errors = vec![0.0; n];
                let mut budgets = vec![ErrorBudget::zero(); n];
                for s in 0..n {
                    if !phi[s] && !psi[s] {
                        continue;
                    }
                    let opts = sopts.with_seed(sopts.seed.wrapping_add(s as u64));
                    let est =
                        monte_carlo::estimate_until_general(mrm, phi, psi, time, reward, s, opts)?;
                    probabilities[s] = est.mean;
                    errors[s] = est.std_error;
                    budgets[s] = ErrorBudget::from_statistical(radius);
                }
                return Ok(UntilAnalysis {
                    probabilities,
                    error_bounds: Some(errors),
                    budgets: Some(budgets),
                    engine: "simulation",
                    dataflow: None,
                });
            }
        }
        return Err(CheckError::UnsupportedBounds {
            what: if reward.lo() != 0.0 {
                "reward lower bound (only the simulation engine supports it)"
            } else {
                "time lower bound combined with a reward bound (only the simulation engine supports it)"
            },
        });
    }

    match (time.is_upper_unbounded(), reward.is_upper_unbounded()) {
        // P0: Φ U Ψ — unbounded reachability over the embedded DTMC,
        // exact to the solver's convergence tolerance (no budget).
        (true, true) => {
            let _span = mrmc_obs::span("until/reachability");
            let df = dataflow_prepass(mrm, options, phi, psi, true);
            let embedded = mrm.ctmc().embedded_dtmc();
            // The certificate's certain-one set enlarges the solver's
            // sure set: those states are pre-assigned probability 1 and
            // the linear system covers only the undetermined block. With
            // nothing pruned the sure set *is* Ψ and the run is bitwise
            // identical to an unsliced one.
            let probabilities = match &df {
                Some((cert, _)) => reach::until_unbounded_with(
                    embedded.probabilities(),
                    phi,
                    psi,
                    &cert.one,
                    options.solver,
                )?,
                None => reach::until_unbounded(embedded.probabilities(), phi, psi, options.solver)?,
            };
            Ok(UntilAnalysis {
                probabilities,
                error_bounds: None,
                budgets: None,
                engine: "reachability",
                dataflow: df.map(|(_, info)| info),
            })
        }
        // Bounded reward with unbounded time has no engine (Chapter 6).
        (true, false) => Err(CheckError::UnsupportedBounds {
            what: "unbounded time with a bounded reward",
        }),
        // P1: time bound only — the state-reward-free baseline suffices,
        // regardless of the configured engine. The Fox–Glynn window is
        // truncated at ε', which IS the budget; a requested tolerance
        // tightens ε' directly, so this class always meets it.
        (false, true) => {
            let _span = mrmc_obs::span("until/baseline");
            let eps_used = match options.tolerance {
                Some(eps) => options.transient_epsilon.min(eps),
                None => options.transient_epsilon,
            };
            let probabilities = baseline::until_time_bounded(mrm, phi, psi, time.hi(), eps_used)?;
            let n = probabilities.len();
            Ok(UntilAnalysis {
                probabilities,
                error_bounds: None,
                budgets: Some(vec![ErrorBudget::from_poisson_tail(eps_used); n]),
                engine: "baseline",
                dataflow: None,
            })
        }
        // P2: time and reward bounds — run the configured engine per state,
        // under the adaptive driver when a tolerance was requested.
        (false, false) => {
            let df = dataflow_prepass(mrm, options, phi, psi, false);
            let t = time.hi();
            let r = reward.hi();
            let n = mrm.num_states();
            // Certain-zero states contribute exactly 0 — the slicer skips
            // them (discretization/simulation) or makes them absorbing
            // (uniformization's φ′) and folds the sliced-away mass, which
            // is exactly zero by the verified certificate, into a zero
            // error budget. With nothing pruned φ′ equals Φ bitwise and
            // the skip set equals the engines' own dead-state skip.
            let zero_sliced = |s: usize| matches!(&df, Some((cert, _)) if cert.zero[s]);
            match options.until_engine {
                UntilEngine::Uniformization(uopts) => {
                    let _span = mrmc_obs::span("until/uniformization");
                    // φ′ = Φ ∧ ¬certain-zero: dead subtrees become
                    // absorbing, so path exploration never descends into
                    // regions the certificate proved irrelevant.
                    let phi_sliced: Vec<bool> = (0..n).map(|s| phi[s] && !zero_sliced(s)).collect();
                    let results = match options.tolerance {
                        Some(eps) => adaptive::uniformization_until_all(
                            mrm,
                            &phi_sliced,
                            psi,
                            t,
                            r,
                            uopts,
                            adaptive::AdaptiveOptions::new(eps),
                        )?,
                        None => uniformization::until_probabilities_all(
                            mrm,
                            &phi_sliced,
                            psi,
                            t,
                            r,
                            uopts,
                        )?,
                    };
                    Ok(UntilAnalysis {
                        probabilities: results.iter().map(|r| r.probability).collect(),
                        error_bounds: Some(results.iter().map(|r| r.error_bound).collect()),
                        budgets: Some(results.iter().map(|r| r.budget).collect()),
                        engine: "uniformization",
                        dataflow: df.map(|(_, info)| info),
                    })
                }
                UntilEngine::Discretization(dopts) => {
                    let _span = mrmc_obs::span("until/discretization");
                    let mut probabilities = vec![0.0; n];
                    let mut budgets = vec![ErrorBudget::zero(); n];
                    for s in 0..n {
                        if zero_sliced(s) || (!phi[s] && !psi[s]) {
                            continue;
                        }
                        let res = match options.tolerance {
                            Some(eps) => adaptive::discretization_until(
                                mrm,
                                phi,
                                psi,
                                t,
                                r,
                                s,
                                dopts,
                                adaptive::AdaptiveOptions::new(eps),
                            )?,
                            None => {
                                discretization::until_probability(mrm, phi, psi, t, r, s, dopts)?
                            }
                        };
                        probabilities[s] = res.probability;
                        budgets[s] = res.budget;
                    }
                    Ok(UntilAnalysis {
                        probabilities,
                        error_bounds: None,
                        budgets: Some(budgets),
                        engine: "discretization",
                        dataflow: df.map(|(_, info)| info),
                    })
                }
                UntilEngine::Simulation(sopts) => {
                    let _span = mrmc_obs::span("until/simulation");
                    let samples = simulation_samples(sopts.samples, options.tolerance)?;
                    let mut sopts = sopts;
                    sopts.samples = samples;
                    let radius = monte_carlo::hoeffding_radius(samples, adaptive::SIMULATION_DELTA);
                    let mut probabilities = vec![0.0; n];
                    let mut errors = vec![0.0; n];
                    let mut budgets = vec![ErrorBudget::zero(); n];
                    for s in 0..n {
                        if zero_sliced(s) || (!phi[s] && !psi[s]) {
                            continue;
                        }
                        // De-correlate states while keeping determinism.
                        let opts = sopts.with_seed(sopts.seed.wrapping_add(s as u64));
                        let est = monte_carlo::estimate_until(mrm, phi, psi, t, r, s, opts)?;
                        probabilities[s] = est.mean;
                        errors[s] = est.std_error;
                        budgets[s] = ErrorBudget::from_statistical(radius);
                    }
                    Ok(UntilAnalysis {
                        probabilities,
                        // Standard errors reported in the error-bound slot;
                        // statistical, not a guaranteed bound. The budget
                        // carries the distribution-free Hoeffding radius.
                        error_bounds: Some(errors),
                        budgets: Some(budgets),
                        engine: "simulation",
                        dataflow: df.map(|(_, info)| info),
                    })
                }
            }
        }
    }
}

/// The qualitative dataflow pre-pass for one until operator: the model's
/// condensation (served from the session's [`cache::SccCache`] when one
/// is installed), the Prob0/Prob1 fixpoints, and the certificate —
/// **independently re-verified** before any engine may prune with it.
///
/// `None` when slicing is off, and — mirroring the lumping `Auto`
/// fallback — when re-verification fails: the engines then solve the
/// full model, trading the pruning for safety.
fn dataflow_prepass(
    mrm: &Mrm,
    options: &CheckOptions,
    phi: &[bool],
    psi: &[bool],
    unbounded: bool,
) -> Option<(qual::QualitativeCertificate, DataflowInfo)> {
    if !options.slicing {
        return None;
    }
    let scc = cache::condensation_for(mrm);
    let cert = qual::qualitative_until(mrm, phi, psi, unbounded);
    if cert.verify(mrm).is_err() {
        return None;
    }
    let info = DataflowInfo {
        scc_count: scc.num_components(),
        qual_zero_states: cert.zero_count(),
        qual_one_states: cert.one_count(),
        slice_states_removed: cert.slice_states_removed(),
        certificate_hash: cert.content_hash(),
    };
    mrmc_obs::record(|| mrmc_obs::Event::Counter {
        name: counters::SCC_COUNT,
        value: info.scc_count as u64,
    });
    mrmc_obs::record(|| mrmc_obs::Event::Counter {
        name: counters::QUAL_ZERO_STATES,
        value: info.qual_zero_states as u64,
    });
    mrmc_obs::record(|| mrmc_obs::Event::Counter {
        name: counters::QUAL_ONE_STATES,
        value: info.qual_one_states as u64,
    });
    mrmc_obs::record(|| mrmc_obs::Event::Counter {
        name: counters::SLICE_STATES_REMOVED,
        value: info.slice_states_removed as u64,
    });
    Some((cert, info))
}

/// Resolve the simulation sample count: the configured base, raised to the
/// Hoeffding-sized count when a tolerance is requested. Fails upfront with
/// `ToleranceNotMet` when more than [`adaptive::MAX_SAMPLES`] trajectories
/// would be needed.
fn simulation_samples(base: u64, tolerance: Option<f64>) -> Result<u64, CheckError> {
    match tolerance {
        None => Ok(base),
        Some(eps) => match monte_carlo::hoeffding_samples(eps, adaptive::SIMULATION_DELTA) {
            Some(n) if n <= adaptive::MAX_SAMPLES => Ok(n.max(base)),
            _ => Err(CheckError::ToleranceNotMet {
                requested: eps,
                achieved: monte_carlo::hoeffding_radius(
                    adaptive::MAX_SAMPLES,
                    adaptive::SIMULATION_DELTA,
                ),
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_numerics::uniformization::UniformOptions;

    fn triangle() -> Mrm {
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1.0)
            .transition(0, 2, 0.5)
            .transition(1, 2, 2.0);
        b.label(0, "a").label(1, "a").label(2, "goal");
        Mrm::without_rewards(b.build().unwrap())
    }

    #[test]
    fn p0_unbounded_until() {
        let m = triangle();
        let phi = m.labeling().states_with("a");
        let psi = m.labeling().states_with("goal");
        let a = until_probabilities(
            &m,
            &CheckOptions::new(),
            &Interval::unbounded(),
            &Interval::unbounded(),
            &phi,
            &psi,
        )
        .unwrap();
        // Everything eventually reaches the absorbing goal.
        for (s, p) in a.probabilities.iter().enumerate() {
            assert!((p - 1.0).abs() < 1e-9, "state {s}");
        }
        assert!(a.error_bounds.is_none());
    }

    #[test]
    fn p1_time_bounded_until() {
        let m = triangle();
        let phi = m.labeling().states_with("a");
        let psi = m.labeling().states_with("goal");
        let a = until_probabilities(
            &m,
            &CheckOptions::new(),
            &Interval::upto(1.0),
            &Interval::unbounded(),
            &phi,
            &psi,
        )
        .unwrap();
        // From state 1: 1 − e^{−2}.
        assert!((a.probabilities[1] - (1.0 - (-2.0f64).exp())).abs() < 1e-9);
        assert!((a.probabilities[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn p2_engines_agree() {
        let m = triangle();
        let phi = m.labeling().states_with("a");
        let psi = m.labeling().states_with("goal");
        let time = Interval::upto(1.0);
        let reward = Interval::upto(100.0);

        let uni_opts = CheckOptions::new().with_engine(UntilEngine::Uniformization(
            UniformOptions::new().with_truncation(1e-12),
        ));
        let u = until_probabilities(&m, &uni_opts, &time, &reward, &phi, &psi).unwrap();
        assert!(u.error_bounds.is_some());

        let disc_opts = CheckOptions::new().with_engine(UntilEngine::discretization(1.0 / 128.0));
        let d = until_probabilities(&m, &disc_opts, &time, &reward, &phi, &psi).unwrap();
        for s in 0..3 {
            assert!(
                (u.probabilities[s] - d.probabilities[s]).abs() < 0.01,
                "state {s}: {} vs {}",
                u.probabilities[s],
                d.probabilities[s]
            );
        }
    }

    #[test]
    fn dead_states_skip_the_engine() {
        let m = triangle();
        let phi = vec![false, false, false];
        let psi = vec![false, false, true];
        let a = until_probabilities(
            &m,
            &CheckOptions::new(),
            &Interval::upto(1.0),
            &Interval::upto(10.0),
            &phi,
            &psi,
        )
        .unwrap();
        assert_eq!(a.probabilities[0], 0.0);
        assert_eq!(a.probabilities[1], 0.0);
        assert!((a.probabilities[2] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn trivial_reward_time_window_uses_the_exact_method() {
        // 0 →(2) goal (absorbing): Pr(tt U^{[0.5,1]} goal) = 1 − e^{−2},
        // computed exactly by the two-phase decomposition (no error bars).
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 2.0);
        b.label(1, "goal");
        let m = Mrm::without_rewards(b.build().unwrap());
        let phi = vec![true, true];
        let psi = vec![false, true];
        let window = Interval::new(0.5, 1.0).unwrap();
        let a = until_probabilities(
            &m,
            &CheckOptions::new(),
            &window,
            &Interval::unbounded(),
            &phi,
            &psi,
        )
        .unwrap();
        assert!(a.error_bounds.is_none());
        let exact = 1.0 - (-2.0f64).exp();
        assert!(
            (a.probabilities[0] - exact).abs() < 1e-9,
            "{} vs {exact}",
            a.probabilities[0]
        );
        assert!((a.probabilities[1] - 1.0).abs() < 1e-9);

        // And the unbounded-upper variant [0.5, ∞): same value here
        // (goal is absorbing and reached almost surely).
        let tail = Interval::new(0.5, f64::INFINITY).unwrap();
        let a = until_probabilities(
            &m,
            &CheckOptions::new(),
            &tail,
            &Interval::unbounded(),
            &phi,
            &psi,
        )
        .unwrap();
        assert!(
            (a.probabilities[0] - 1.0).abs() < 1e-7,
            "{}",
            a.probabilities[0]
        );
    }

    #[test]
    fn simulation_engine_handles_general_lower_bounds() {
        // A time window *combined with a reward bound* has no exact engine;
        // the simulation engine estimates it. Chain: 0 →(2) goal with
        // ρ(0) = 1: witness needs jump time T ∈ [0, 1] (goal absorbing,
        // reward frozen afterwards) with accumulated reward T·1 ≤ 0.5 at
        // the (arbitrarily late) witness τ ∈ [0.5, 1]… reward stays T, so
        // Pr = Pr{T ≤ 0.5} = 1 − e^{−1}.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 2.0);
        b.label(1, "goal");
        let ctmc = b.build().unwrap();
        let m = Mrm::new(
            ctmc,
            mrmc_mrm::StateRewards::new(vec![1.0, 0.0]).unwrap(),
            mrmc_mrm::ImpulseRewards::new(),
        )
        .unwrap();
        let phi = vec![true, true];
        let psi = vec![false, true];
        let opts = CheckOptions::new().with_engine(UntilEngine::simulation(60_000));
        let window = Interval::new(0.5, 1.0).unwrap();
        let a = until_probabilities(&m, &opts, &window, &Interval::upto(0.5), &phi, &psi).unwrap();
        let exact = 1.0 - (-1.0f64).exp();
        let se = a.error_bounds.as_ref().unwrap()[0];
        assert!(
            (a.probabilities[0] - exact).abs() <= 4.0 * se + 1e-9,
            "{} ± {se} vs {exact}",
            a.probabilities[0]
        );
    }

    #[test]
    fn unsupported_bounds_are_reported() {
        let m = triangle();
        let phi = m.labeling().states_with("a");
        let psi = m.labeling().states_with("goal");
        // Time lower bound *with* a reward bound: no exact engine.
        let lower_time = Interval::new(1.0, 2.0).unwrap();
        assert!(matches!(
            until_probabilities(
                &m,
                &CheckOptions::new(),
                &lower_time,
                &Interval::upto(10.0),
                &phi,
                &psi
            ),
            Err(CheckError::UnsupportedBounds { what })
                if what.starts_with("time lower bound")
        ));
        let lower_reward = Interval::new(0.5, 2.0).unwrap();
        assert!(matches!(
            until_probabilities(
                &m,
                &CheckOptions::new(),
                &Interval::unbounded(),
                &lower_reward,
                &phi,
                &psi
            ),
            Err(CheckError::UnsupportedBounds { what })
                if what.starts_with("reward lower bound")
        ));
        assert!(matches!(
            until_probabilities(
                &m,
                &CheckOptions::new(),
                &Interval::unbounded(),
                &Interval::upto(5.0),
                &phi,
                &psi
            ),
            Err(CheckError::UnsupportedBounds { .. })
        ));
    }
}
