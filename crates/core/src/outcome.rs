//! The result of checking a formula.

/// The outcome of `Sat(Φ)`: the satisfying set, plus — when the outermost
/// operator was probabilistic — the computed per-state probabilities and
/// error bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    sat: Vec<bool>,
    probabilities: Option<Vec<f64>>,
    error_bounds: Option<Vec<f64>>,
}

impl CheckOutcome {
    pub(crate) fn boolean(sat: Vec<bool>) -> Self {
        CheckOutcome {
            sat,
            probabilities: None,
            error_bounds: None,
        }
    }

    pub(crate) fn with_probabilities(
        sat: Vec<bool>,
        probabilities: Vec<f64>,
        error_bounds: Option<Vec<f64>>,
    ) -> Self {
        CheckOutcome {
            sat,
            probabilities: Some(probabilities),
            error_bounds,
        }
    }

    /// The characteristic vector of `Sat(Φ)`.
    pub fn sat(&self) -> &[bool] {
        &self.sat
    }

    /// `true` when `state` satisfies the formula.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn holds_in(&self, state: usize) -> bool {
        self.sat[state]
    }

    /// Iterate over the indices of satisfying states.
    pub fn satisfying_states(&self) -> impl Iterator<Item = usize> + '_ {
        self.sat
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(s, _)| s)
    }

    /// Number of satisfying states.
    pub fn count(&self) -> usize {
        self.sat.iter().filter(|&&b| b).count()
    }

    /// The per-state probabilities computed for the outermost `S`/`P`
    /// operator (absent for purely boolean formulas).
    pub fn probabilities(&self) -> Option<&[f64]> {
        self.probabilities.as_deref()
    }

    /// Per-state truncation error bounds, when the outermost operator used
    /// the uniformization engine.
    pub fn error_bounds(&self) -> Option<&[f64]> {
        self.error_bounds.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let o = CheckOutcome::boolean(vec![true, false, true]);
        assert_eq!(o.sat(), &[true, false, true]);
        assert!(o.holds_in(0));
        assert!(!o.holds_in(1));
        assert_eq!(o.satisfying_states().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(o.count(), 2);
        assert!(o.probabilities().is_none());
        assert!(o.error_bounds().is_none());
    }

    #[test]
    fn probability_outcome() {
        let o = CheckOutcome::with_probabilities(
            vec![false, true],
            vec![0.2, 0.9],
            Some(vec![1e-9, 2e-9]),
        );
        assert_eq!(o.probabilities().unwrap()[1], 0.9);
        assert_eq!(o.error_bounds().unwrap()[0], 1e-9);
    }
}
