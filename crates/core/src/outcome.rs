//! The result of checking a formula.

use mrmc_mrm::Partition;
use mrmc_numerics::ErrorBudget;

/// How the state space was reduced before checking (see
/// [`Reduction`](crate::Reduction)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionInfo {
    /// States in the original model.
    pub original_states: usize,
    /// States in the certified quotient the engines actually ran on.
    pub reduced_states: usize,
}

/// What the qualitative dataflow pre-pass decided before the outermost
/// operator's engine ran (see [`CheckOptions::slicing`](crate::CheckOptions)):
/// condensation size, certain-0/1 set sizes, how many states the slicer
/// pruned from the numerical solve, and the hash of the verified
/// [`QualitativeCertificate`](mrmc_analysis::QualitativeCertificate) the
/// pruning is justified by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataflowInfo {
    /// SCCs in the model's rate graph (Tarjan condensation).
    pub scc_count: usize,
    /// States proved to satisfy the until operator with probability 0.
    pub qual_zero_states: usize,
    /// States proved to satisfy the until operator with probability 1.
    pub qual_one_states: usize,
    /// States removed from the numerical solve beyond the engines' own
    /// dead-state skip. `0` guarantees the run was bitwise identical to
    /// an unsliced one.
    pub slice_states_removed: usize,
    /// Content hash of the independently re-verified certificate.
    pub certificate_hash: u64,
}

/// A bound-aware, three-valued verdict for one state.
///
/// When the computed probability's error budget straddles the threshold of
/// a `P⋈p`/`S⋈p` operator, the checker refuses to pick a side: the state
/// is [`Unknown`](Verdict::Unknown) rather than silently mis-classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The formula definitely holds (at every probability inside the
    /// budget interval).
    Holds,
    /// The formula definitely fails.
    Fails,
    /// The threshold lies inside the budget interval: undecidable at this
    /// accuracy. Request a tighter tolerance to resolve it.
    Unknown,
}

/// The outcome of `Sat(Φ)`: the satisfying set, the undecided set, plus —
/// when the outermost operator was probabilistic — the computed per-state
/// probabilities, error bounds and budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    sat: Vec<bool>,
    unknown: Vec<bool>,
    probabilities: Option<Vec<f64>>,
    error_bounds: Option<Vec<f64>>,
    budgets: Option<Vec<ErrorBudget>>,
    engine: Option<&'static str>,
    reduction: Option<ReductionInfo>,
    dataflow: Option<DataflowInfo>,
}

impl CheckOutcome {
    pub(crate) fn with_probabilities(
        sat: Vec<bool>,
        unknown: Vec<bool>,
        probabilities: Vec<f64>,
        error_bounds: Option<Vec<f64>>,
        budgets: Option<Vec<ErrorBudget>>,
        engine: &'static str,
        dataflow: Option<DataflowInfo>,
    ) -> Self {
        CheckOutcome {
            sat,
            unknown,
            probabilities: Some(probabilities),
            error_bounds,
            budgets,
            engine: Some(engine),
            reduction: None,
            dataflow,
        }
    }

    pub(crate) fn with_unknown(sat: Vec<bool>, unknown: Vec<bool>) -> Self {
        CheckOutcome {
            sat,
            unknown,
            probabilities: None,
            error_bounds: None,
            budgets: None,
            engine: None,
            reduction: None,
            dataflow: None,
        }
    }

    /// Lift a per-block outcome computed on a quotient back to the
    /// original state space: every state receives the result of its block,
    /// and the outcome records the reduction that took place.
    pub(crate) fn lift(self, partition: &Partition, info: ReductionInfo) -> Self {
        CheckOutcome {
            sat: partition.lift(&self.sat),
            unknown: partition.lift(&self.unknown),
            probabilities: self.probabilities.map(|p| partition.lift(&p)),
            error_bounds: self.error_bounds.map(|e| partition.lift(&e)),
            budgets: self.budgets.map(|b| partition.lift(&b)),
            engine: self.engine,
            reduction: Some(info),
            dataflow: self.dataflow,
        }
    }

    /// The characteristic vector of `Sat(Φ)` — the states where the
    /// formula *definitely* holds. Undecided states read `false` here;
    /// consult [`verdict`](Self::verdict) or [`unknown`](Self::unknown)
    /// to tell them apart from definite failures.
    pub fn sat(&self) -> &[bool] {
        &self.sat
    }

    /// The characteristic vector of the undecided states.
    pub fn unknown(&self) -> &[bool] {
        &self.unknown
    }

    /// `true` when `state` definitely satisfies the formula.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn holds_in(&self, state: usize) -> bool {
        self.sat[state]
    }

    /// The three-valued verdict for `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn verdict(&self, state: usize) -> Verdict {
        if self.sat[state] {
            Verdict::Holds
        } else if self.unknown[state] {
            Verdict::Unknown
        } else {
            Verdict::Fails
        }
    }

    /// Iterate over the indices of satisfying states.
    pub fn satisfying_states(&self) -> impl Iterator<Item = usize> + '_ {
        self.sat
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(s, _)| s)
    }

    /// Iterate over the indices of undecided states.
    pub fn unknown_states(&self) -> impl Iterator<Item = usize> + '_ {
        self.unknown
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(s, _)| s)
    }

    /// `true` when any state is undecided at the achieved accuracy.
    pub fn has_unknown(&self) -> bool {
        self.unknown.iter().any(|&b| b)
    }

    /// Number of satisfying states.
    pub fn count(&self) -> usize {
        self.sat.iter().filter(|&&b| b).count()
    }

    /// The per-state probabilities computed for the outermost `S`/`P`
    /// operator (absent for purely boolean formulas).
    pub fn probabilities(&self) -> Option<&[f64]> {
        self.probabilities.as_deref()
    }

    /// Per-state truncation error bounds, when the outermost operator used
    /// the uniformization engine.
    pub fn error_bounds(&self) -> Option<&[f64]> {
        self.error_bounds.as_deref()
    }

    /// Per-state error budgets for the outermost operator, when its
    /// engine accounts for its error (see
    /// [`ErrorBudget`](mrmc_numerics::ErrorBudget)).
    pub fn budgets(&self) -> Option<&[ErrorBudget]> {
        self.budgets.as_deref()
    }

    /// The engine that actually computed the outermost operator's
    /// probabilities — which the bound shape may override away from the
    /// configured [`UntilEngine`](crate::UntilEngine): `"reachability"`,
    /// `"baseline"`, `"uniformization"`, `"discretization"`,
    /// `"simulation"`, `"steady"`, or `"next"`. Absent for purely boolean
    /// formulas.
    pub fn engine(&self) -> Option<&'static str> {
        self.engine
    }

    /// The state-space reduction applied before checking, when the checker
    /// ran on a certified lumping quotient (see
    /// [`Reduction`](crate::Reduction)); `None` when the full model was
    /// checked.
    pub fn reduction(&self) -> Option<ReductionInfo> {
        self.reduction
    }

    /// The qualitative dataflow pre-pass result for the outermost
    /// operator, when slicing was enabled and an until engine ran with a
    /// verified certificate; `None` for boolean formulas, non-until
    /// operators, and `--no-slicing` runs.
    pub fn dataflow(&self) -> Option<DataflowInfo> {
        self.dataflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let o = CheckOutcome::with_unknown(vec![true, false, true], vec![false; 3]);
        assert_eq!(o.sat(), &[true, false, true]);
        assert!(o.holds_in(0));
        assert!(!o.holds_in(1));
        assert_eq!(o.satisfying_states().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(o.count(), 2);
        assert!(o.probabilities().is_none());
        assert!(o.error_bounds().is_none());
        assert!(o.budgets().is_none());
        assert!(!o.has_unknown());
        assert_eq!(o.verdict(0), Verdict::Holds);
        assert_eq!(o.verdict(1), Verdict::Fails);
    }

    #[test]
    fn probability_outcome() {
        let o = CheckOutcome::with_probabilities(
            vec![false, true],
            vec![false, false],
            vec![0.2, 0.9],
            Some(vec![1e-9, 2e-9]),
            Some(vec![
                ErrorBudget::from_truncation(1e-9),
                ErrorBudget::from_truncation(2e-9),
            ]),
            "uniformization",
            None,
        );
        assert_eq!(o.engine(), Some("uniformization"));
        assert_eq!(o.probabilities().unwrap()[1], 0.9);
        assert_eq!(o.error_bounds().unwrap()[0], 1e-9);
        assert_eq!(o.budgets().unwrap()[0].path_truncation, 1e-9);
    }

    #[test]
    fn lift_replicates_block_results_per_state() {
        // Blocks {0, 2} and {1, 3}: a 2-block outcome becomes a 4-state one.
        let p = Partition::from_assignment(&[0, 1, 0, 1]);
        let o = CheckOutcome::with_probabilities(
            vec![true, false],
            vec![false, true],
            vec![0.9, 0.4],
            Some(vec![1e-9, 2e-9]),
            None,
            "baseline",
            None,
        );
        assert_eq!(o.reduction(), None);
        let info = ReductionInfo {
            original_states: 4,
            reduced_states: 2,
        };
        let lifted = o.lift(&p, info);
        assert_eq!(lifted.engine(), Some("baseline"));
        assert_eq!(lifted.sat(), &[true, false, true, false]);
        assert_eq!(lifted.unknown(), &[false, true, false, true]);
        assert_eq!(lifted.probabilities().unwrap(), &[0.9, 0.4, 0.9, 0.4]);
        assert_eq!(lifted.error_bounds().unwrap(), &[1e-9, 2e-9, 1e-9, 2e-9]);
        assert_eq!(lifted.reduction(), Some(info));
    }

    #[test]
    fn unknown_states_are_not_satisfying() {
        let o = CheckOutcome::with_probabilities(
            vec![false, true, false],
            vec![true, false, false],
            vec![0.5, 0.9, 0.1],
            None,
            None,
            "steady",
            None,
        );
        assert_eq!(o.verdict(0), Verdict::Unknown);
        assert_eq!(o.verdict(1), Verdict::Holds);
        assert_eq!(o.verdict(2), Verdict::Fails);
        assert!(!o.holds_in(0));
        assert!(o.has_unknown());
        assert_eq!(o.unknown_states().collect::<Vec<_>>(), vec![0]);
        assert_eq!(o.count(), 1);
    }
}
