//! The `mrmc` command-line model checker, mirroring the thesis tool's
//! interface (Appendix: Usage Manual):
//!
//! ```text
//! mrmc <model.tra> <model.lab> <model.rewr> <model.rewi> [u=<w>|d=<d>] [NP]
//! ```
//!
//! * `u=<w>` — use uniformization with truncation probability `w` for
//!   reward-bounded until formulas (default: `u=1e-8`);
//! * `d=<d>` — use discretization with step `d` instead;
//! * `s=<n>` — use Monte-Carlo simulation with `n` samples (statistical
//!   estimate, no deterministic error bound);
//! * `--threads N` (or `--threads=N`) — run the uniformization path
//!   exploration on `N` worker threads (`0` = auto-detect). Results are
//!   bit-identical to the serial run at any thread count;
//! * `NP` — print only the satisfying states, not the computed
//!   probabilities.
//!
//! Formulas are read from standard input, one per line; empty lines and
//! `%`-comments are skipped. States are printed 1-indexed, matching the
//! model file format.

use std::io::BufRead;
use std::process::ExitCode;

use mrmc::{CheckOptions, ModelChecker, UntilEngine};

#[derive(Debug)]
struct Cli {
    tra: String,
    lab: String,
    rewr: String,
    rewi: String,
    engine: UntilEngine,
    threads: usize,
    print_probabilities: bool,
}

fn usage() -> &'static str {
    "usage: mrmc <model.tra> <model.lab> <model.rewr> <model.rewi> [u=<w>|d=<d>] [--threads N] [NP]\n\
     \n\
     Reads CSRL formulas from stdin, one per line, e.g.\n\
     \x20 P(>= 0.3) [a U[0,3][0,23] b]\n\
     \x20 S(> 0.5) (up)\n\
     \n\
     u=<w>        uniformization with path truncation probability w (default u=1e-8)\n\
     d=<d>        discretization with step size d\n\
     s=<n>        Monte-Carlo simulation with n samples (statistical estimate)\n\
     --threads N  worker threads for the uniformization engine (0 = auto,\n\
     \x20            default 1); results are bit-identical at any thread count\n\
     NP           suppress the computed probabilities"
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    if args.len() < 4 {
        return Err(usage().to_string());
    }
    let mut cli = Cli {
        tra: args[0].clone(),
        lab: args[1].clone(),
        rewr: args[2].clone(),
        rewi: args[3].clone(),
        engine: UntilEngine::default(),
        threads: 1,
        print_probabilities: true,
    };
    let mut rest = args[4..].iter();
    while let Some(arg) = rest.next() {
        if arg == "NP" {
            cli.print_probabilities = false;
        } else if arg == "--threads" || arg.starts_with("--threads=") {
            let value = match arg.strip_prefix("--threads=") {
                Some(v) => v.to_string(),
                None => rest
                    .next()
                    .ok_or_else(|| "--threads requires a value".to_string())?
                    .clone(),
            };
            cli.threads = value
                .parse()
                .map_err(|_| format!("invalid thread count `{value}`"))?;
        } else if let Some(w) = arg.strip_prefix("u=") {
            let w: f64 = w
                .parse()
                .map_err(|_| format!("invalid truncation probability `{w}`"))?;
            cli.engine = UntilEngine::uniformization(w);
        } else if let Some(d) = arg.strip_prefix("d=") {
            let d: f64 = d
                .parse()
                .map_err(|_| format!("invalid discretization step `{d}`"))?;
            cli.engine = UntilEngine::discretization(d);
        } else if let Some(n) = arg.strip_prefix("s=") {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("invalid sample count `{n}`"))?;
            cli.engine = UntilEngine::simulation(n);
        } else {
            return Err(format!("unrecognized argument `{arg}`\n\n{}", usage()));
        }
    }
    Ok(cli)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return Ok(());
    }
    let cli = parse_args(&args)?;

    let mrm = mrmc_mrm::io::load_model(&cli.tra, &cli.lab, &cli.rewr, &cli.rewi)
        .map_err(|e| e.to_string())?;
    println!(
        "loaded model: {} states, {} transitions, {} impulse rewards",
        mrm.num_states(),
        mrm.ctmc().rates().nnz(),
        mrm.impulse_rewards().len()
    );

    let options = CheckOptions::new()
        .with_engine(cli.engine)
        .with_threads(cli.threads);
    let checker = ModelChecker::new(mrm, options);

    let stdin = std::io::stdin();
    let mut any_error = false;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let text = match line.find('%') {
            Some(i) => line[..i].trim(),
            None => line.trim(),
        };
        if text.is_empty() {
            continue;
        }
        println!("formula: {text}");
        match checker.check_str(text) {
            Ok(outcome) => {
                let states: Vec<String> = outcome
                    .satisfying_states()
                    .map(|s| (s + 1).to_string())
                    .collect();
                if states.is_empty() {
                    println!("  satisfied by: (no states)");
                } else {
                    println!("  satisfied by: {}", states.join(" "));
                }
                if cli.print_probabilities {
                    if let Some(probs) = outcome.probabilities() {
                        for (s, p) in probs.iter().enumerate() {
                            match outcome.error_bounds() {
                                Some(errs) => println!(
                                    "  state {}: P = {:.12} (error bound {:.3e})",
                                    s + 1,
                                    p,
                                    errs[s]
                                ),
                                None => println!("  state {}: P = {:.12}", s + 1, p),
                            }
                        }
                    }
                }
            }
            Err(e) => {
                println!("  error: {e}");
                any_error = true;
            }
        }
    }
    if any_error {
        Err("one or more formulas failed".to_string())
    } else {
        Ok(())
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn minimal_invocation_defaults_to_uniformization() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi"])).unwrap();
        assert_eq!(cli.tra, "a.tra");
        assert_eq!(cli.rewi, "a.rewi");
        assert!(cli.print_probabilities);
        match cli.engine {
            UntilEngine::Uniformization(u) => assert_eq!(u.truncation, 1e-8),
            _ => panic!("expected uniformization"),
        }
    }

    #[test]
    fn engine_switches_parse() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi", "u=1e-11"])).unwrap();
        match cli.engine {
            UntilEngine::Uniformization(u) => assert_eq!(u.truncation, 1e-11),
            _ => panic!("expected uniformization"),
        }
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi", "d=0.25"])).unwrap();
        match cli.engine {
            UntilEngine::Discretization(d) => assert_eq!(d.step, 0.25),
            _ => panic!("expected discretization"),
        }
    }

    #[test]
    fn simulation_switch_parses() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi", "s=5000"])).unwrap();
        match cli.engine {
            UntilEngine::Simulation(s) => assert_eq!(s.samples, 5000),
            _ => panic!("expected simulation"),
        }
        assert!(parse_args(&args(&["a", "b", "c", "d", "s=-3"])).is_err());
    }

    #[test]
    fn threads_flag_parses_in_both_spellings() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi"])).unwrap();
        assert_eq!(cli.threads, 1);
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(cli.threads, 4);
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "--threads=0",
        ]))
        .unwrap();
        assert_eq!(cli.threads, 0);
        // Composes with an engine switch and NP.
        let cli = parse_args(&args(&[
            "a.tra",
            "a.lab",
            "a.rewr",
            "a.rewi",
            "u=1e-10",
            "--threads=2",
            "NP",
        ]))
        .unwrap();
        assert_eq!(cli.threads, 2);
        assert!(!cli.print_probabilities);
    }

    #[test]
    fn bad_threads_values_are_rejected() {
        assert!(parse_args(&args(&["a", "b", "c", "d", "--threads"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "--threads", "x"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "--threads=-2"])).is_err());
    }

    #[test]
    fn np_flag_suppresses_probabilities() {
        let cli = parse_args(&args(&["a.tra", "a.lab", "a.rewr", "a.rewi", "NP"])).unwrap();
        assert!(!cli.print_probabilities);
    }

    #[test]
    fn missing_files_show_usage() {
        let e = parse_args(&args(&["a.tra"])).unwrap_err();
        assert!(e.contains("usage:"));
    }

    #[test]
    fn bad_switches_are_rejected() {
        assert!(parse_args(&args(&["a", "b", "c", "d", "u=potato"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c", "d", "d=x"])).is_err());
        let e = parse_args(&args(&["a", "b", "c", "d", "--frob"])).unwrap_err();
        assert!(e.contains("--frob"));
    }
}
