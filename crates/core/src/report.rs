//! Rendering of checking results as the `--json` wire objects.
//!
//! One [`CheckOutcome`] (or failure) renders to exactly one JSON object on
//! one line. This module is the single source of truth for that shape: the
//! `mrmc` CLI prints these lines under `--json`, and `mrmc serve` uses the
//! very same renderer for its response records — a server-mode result is
//! byte-identical to the one-shot CLI line for the same check, which is
//! what the conformance suite pins.
//!
//! Rendering is hand-rolled (the workspace is dependency-free by policy)
//! but tiny: strings are escaped per RFC 8259, and `f64`s print in the
//! `{:e}` scientific form (`null` when non-finite, which JSON cannot
//! represent).

use mrmc_obs::RunMetrics;

use crate::error::CheckError;
use crate::outcome::{CheckOutcome, Verdict};

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON value (`null` for non-finite values, which
/// JSON cannot represent).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// The stable lowercase name of a verdict, as used in the JSON output.
pub fn verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::Holds => "holds",
        Verdict::Fails => "fails",
        Verdict::Unknown => "unknown",
    }
}

/// The stable `error_kind` discriminator of a failed check, as used in
/// the JSON output and for exit-code selection.
pub fn error_kind(e: &CheckError) -> &'static str {
    match e {
        CheckError::ToleranceNotMet { .. } => "tolerance_not_met",
        CheckError::Preflight(_) => "preflight",
        _ => "check_failed",
    }
}

/// One JSON object (a single line) describing a checked formula.
///
/// States are 1-indexed, matching the model file format. `metrics`, when
/// given, is embedded as a `metrics` object.
pub fn json_outcome(formula: &str, outcome: &CheckOutcome, metrics: Option<&RunMetrics>) -> String {
    let set = |states: Vec<usize>| {
        states
            .iter()
            .map(|s| (s + 1).to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut out = format!(
        "{{\"formula\":\"{}\",\"satisfied\":[{}],\"unknown\":[{}]",
        json_escape(formula),
        set(outcome.satisfying_states().collect()),
        set(outcome.unknown_states().collect()),
    );
    if let Some(engine) = outcome.engine() {
        out.push_str(&format!(",\"engine\":\"{engine}\""));
    }
    if let Some(r) = outcome.reduction() {
        out.push_str(&format!(
            ",\"original_states\":{},\"reduced_states\":{}",
            r.original_states, r.reduced_states
        ));
    }
    if let Some(d) = outcome.dataflow() {
        out.push_str(&format!(
            ",\"dataflow\":{{\"scc_count\":{},\"qual_zero_states\":{},\"qual_one_states\":{},\
             \"slice_states_removed\":{},\"certificate_hash\":\"{:016x}\"}}",
            d.scc_count,
            d.qual_zero_states,
            d.qual_one_states,
            d.slice_states_removed,
            d.certificate_hash
        ));
    }
    if let Some(probs) = outcome.probabilities() {
        out.push_str(",\"states\":[");
        for (s, &p) in probs.iter().enumerate() {
            if s > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"state\":{},\"probability\":{},\"verdict\":\"{}\"",
                s + 1,
                json_f64(p),
                verdict_name(outcome.verdict(s)),
            ));
            if let Some(errs) = outcome.error_bounds() {
                out.push_str(&format!(",\"error_bound\":{}", json_f64(errs[s])));
            }
            if let Some(budgets) = outcome.budgets() {
                let b = &budgets[s];
                out.push_str(",\"budget\":{");
                for (name, value) in b.components() {
                    out.push_str(&format!("\"{name}\":{},", json_f64(value)));
                }
                out.push_str(&format!(
                    "\"total\":{},\"dominant\":\"{}\"}}",
                    json_f64(b.total()),
                    b.dominant().0
                ));
            }
            out.push('}');
        }
        out.push(']');
    }
    if let Some(m) = metrics {
        out.push_str(",\"metrics\":");
        out.push_str(&m.to_json());
    }
    out.push('}');
    out
}

/// One JSON object (a single line) describing a failed formula, with the
/// stable [`error_kind`] discriminator.
pub fn json_error(formula: &str, e: &CheckError) -> String {
    format!(
        "{{\"formula\":\"{}\",\"error\":\"{}\",\"error_kind\":\"{}\"}}",
        json_escape(formula),
        json_escape(&e.to_string()),
        error_kind(e)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_the_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
        assert_eq!(json_f64(0.5), "5e-1");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn error_lines_carry_the_kind() {
        let e = CheckError::ToleranceNotMet {
            requested: 1e-9,
            achieved: 1e-6,
        };
        let line = json_error("P(> 0.5) [a U[0,1] b]", &e);
        assert!(
            line.contains("\"error_kind\":\"tolerance_not_met\""),
            "{line}"
        );
        assert!(line.starts_with('{') && line.ends_with('}'));
    }

    #[test]
    fn dataflow_object_renders_for_sliced_until_runs() {
        use crate::{CheckOptions, ModelChecker};
        use mrmc_ctmc::CtmcBuilder;
        let build = || {
            let mut b = CtmcBuilder::new(2);
            b.transition(0, 1, 0.1).transition(1, 0, 0.9);
            b.label(0, "up").label(1, "down");
            mrmc_mrm::Mrm::without_rewards(b.build().unwrap())
        };
        let formula = "P(> 0.5) [up U down]";
        let outcome = ModelChecker::new(build(), CheckOptions::new())
            .check_str(formula)
            .unwrap();
        let line = json_outcome(formula, &outcome, None);
        assert!(line.contains("\"dataflow\":{\"scc_count\":"), "{line}");
        assert!(line.contains("\"qual_zero_states\":"), "{line}");
        assert!(line.contains("\"slice_states_removed\":"), "{line}");
        assert!(line.contains("\"certificate_hash\":\""), "{line}");
        // --no-slicing runs carry no dataflow object at all.
        let unsliced = ModelChecker::new(build(), CheckOptions::new().without_slicing())
            .check_str(formula)
            .unwrap();
        let line = json_outcome(formula, &unsliced, None);
        assert!(!line.contains("dataflow"), "{line}");
    }

    #[test]
    fn outcome_lines_are_single_json_objects() {
        use crate::{CheckOptions, ModelChecker};
        use mrmc_ctmc::CtmcBuilder;
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 0.1).transition(1, 0, 0.9);
        b.label(0, "up").label(1, "down");
        let mrm = mrmc_mrm::Mrm::without_rewards(b.build().unwrap());
        let outcome = ModelChecker::new(mrm, CheckOptions::new())
            .check_str("S(>= 0.85) (up)")
            .unwrap();
        let line = json_outcome("S(>= 0.85) (up)", &outcome, None);
        assert!(!line.contains('\n'));
        assert!(line.contains("\"satisfied\":[1,2]"), "{line}");
        assert!(line.contains("\"verdict\":\"holds\""), "{line}");
    }
}
