//! `mrmc` — a CSRL model checker for Markov reward models with impulse
//! rewards.
//!
//! This crate is the primary contribution of *Model Checking Markov Reward
//! Models with Impulse Rewards* (Khattri & Pulungan, 2004 / DSN 2005): given
//! an [`Mrm`] and a CSRL formula, it computes the set of
//! states satisfying the formula, together with the computed probabilities
//! and error bounds.
//!
//! The checking procedure (Chapter 4) is a post-order traversal of the
//! formula (Algorithm 4.1) dispatching to:
//!
//! * steady-state formulas — BSCC analysis, per-BSCC steady-state solves,
//!   and reachability weighting (Algorithm 4.3);
//! * next formulas — the closed form of Eq. 3.4 over the `K(s, s')`
//!   intervals (Algorithm 4.4);
//! * until formulas — the make-absorbing transformation (Theorems 4.1–4.3)
//!   followed by one of two engines (Algorithm 4.5): uniformization with
//!   depth-first path generation, or discretization.
//!
//! # Quickstart
//!
//! ```
//! use mrmc::{ModelChecker, CheckOptions};
//! use mrmc_ctmc::CtmcBuilder;
//! use mrmc_mrm::Mrm;
//!
//! // A two-state chain: up --(0.1)--> down, down --(0.9)--> up.
//! let mut b = CtmcBuilder::new(2);
//! b.transition(0, 1, 0.1).transition(1, 0, 0.9);
//! b.label(0, "up").label(1, "down");
//! let mrm = Mrm::without_rewards(b.build()?);
//!
//! let checker = ModelChecker::new(mrm, CheckOptions::new());
//! // Long-run availability is 0.9: every state satisfies S(>= 0.85)(up).
//! let outcome = checker.check_str("S(>= 0.85) (up)")?;
//! assert!(outcome.satisfying_states().all(|s| s < 2));
//! assert_eq!(outcome.sat(), &[true, true]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod error;
mod next;
mod options;
mod outcome;
pub mod report;
mod sat;
pub mod session;
mod steady;
mod until;
pub mod witness;

pub use cache::{model_hash, options_fingerprint, with_sat_cache, SatCache, SatCtx};
pub use error::CheckError;
pub use next::next_probabilities;
pub use options::{CheckOptions, Reduction, UntilEngine};
pub use outcome::{CheckOutcome, DataflowInfo, ReductionInfo, Verdict};
pub use session::{CheckSession, ModelHandle, SessionStats};
pub use until::{until_probabilities, UntilAnalysis};
pub use witness::{most_probable_witness, Witness};

pub use mrmc_numerics::ErrorBudget;

// Re-export the static-analysis vocabulary so downstream users (and the
// CLI's `lint` subcommand) need not depend on `mrmc-analysis` directly.
pub use mrmc_analysis::{
    dataflow, diagnose_load_error, lumping, Analyzer, Diagnostic, EngineHint, Pass, Report, Scope,
    Severity,
};

use mrmc_csrl::StateFormula;
use mrmc_mrm::Mrm;

/// A model checker bound to one model and one set of numerical options.
#[derive(Debug, Clone)]
pub struct ModelChecker {
    mrm: Mrm,
    options: CheckOptions,
}

impl ModelChecker {
    /// Create a checker for `mrm` with the given options.
    pub fn new(mrm: Mrm, options: CheckOptions) -> Self {
        ModelChecker { mrm, options }
    }

    /// The model being checked.
    pub fn mrm(&self) -> &Mrm {
        &self.mrm
    }

    /// The active options.
    pub fn options(&self) -> &CheckOptions {
        &self.options
    }

    /// Run the static pre-flight lint for `formula` against this model
    /// and the configured engine, without starting any engine.
    ///
    /// This is the same report [`check`](ModelChecker::check) gates on;
    /// callers that want to surface Warning/Note findings (the CLI prints
    /// them to stderr) obtain them here.
    pub fn preflight(&self, formula: &StateFormula) -> mrmc_analysis::Report {
        mrmc_analysis::preflight(&self.mrm, formula, self.options.engine_hint())
    }

    /// Compute `Sat(Φ)` for a parsed formula.
    ///
    /// Unless [`CheckOptions::without_preflight`] was used, the static
    /// pre-flight lint runs first and Error-grade findings abort with
    /// [`CheckError::Preflight`] before any numerical engine starts.
    ///
    /// Under the default [`Reduction::Auto`] policy, the checker then
    /// analyzes the model for a formula-preserving lumping
    /// ([`mrmc_analysis::lumping`]); when a strictly smaller quotient
    /// exists *and* its certificate passes independent verification, the
    /// engines run on the quotient and the per-block results are lifted
    /// back to the full state space. The reduction is exact (bitwise), and
    /// [`CheckOutcome::reduction`] records when it was applied.
    ///
    /// # Errors
    ///
    /// [`CheckError`] for pre-flight lint errors (unknown atomic
    /// propositions, unsupported bounds — reported with stable diagnostic
    /// codes), [`CheckError::Reduction`] under [`Reduction::Require`] when
    /// no verified quotient exists, or numerical failures.
    pub fn check(&self, formula: &StateFormula) -> Result<CheckOutcome, CheckError> {
        if self.options.preflight {
            let _span = mrmc_obs::span("preflight");
            let report = self.preflight(formula);
            if report.has_errors() {
                return Err(CheckError::Preflight(report));
            }
        }
        let cert = {
            let _span = mrmc_obs::span("reduction");
            self.reduction_certificate(formula)?
        };
        if let Some(cert) = cert {
            let info = ReductionInfo {
                original_states: self.mrm.num_states(),
                reduced_states: cert.quotient.num_states(),
            };
            let _span = mrmc_obs::span("engine");
            let outcome = sat::satisfy(&cert.quotient, &self.options, formula)?;
            return Ok(outcome.lift(&cert.partition, info));
        }
        let _span = mrmc_obs::span("engine");
        sat::satisfy(&self.mrm, &self.options, formula)
    }

    /// The verified lumping certificate `check` would reduce with, or
    /// `None` when checking runs on the full model. Errors only under
    /// [`Reduction::Require`].
    fn reduction_certificate(
        &self,
        formula: &StateFormula,
    ) -> Result<Option<lumping::LumpingCertificate>, CheckError> {
        let require = match self.options.reduction {
            Reduction::Off => return Ok(None),
            Reduction::Auto => false,
            Reduction::Require => true,
        };
        match lumping::analyze(&self.mrm, formula).certificate {
            Some(cert) => match cert.verify(&self.mrm) {
                Ok(()) => Ok(Some(cert)),
                Err(e) if require => Err(CheckError::Reduction {
                    reason: format!("lumping certificate failed verification: {e}"),
                }),
                Err(_) => Ok(None),
            },
            None if require => Err(CheckError::Reduction {
                reason: "no nontrivial quotient exists for this formula".into(),
            }),
            None => Ok(None),
        }
    }

    /// Parse and check a formula given in concrete syntax.
    ///
    /// # Errors
    ///
    /// [`CheckError::Parse`] for syntax errors, otherwise as
    /// [`check`](ModelChecker::check).
    pub fn check_str(&self, formula: &str) -> Result<CheckOutcome, CheckError> {
        let parsed = mrmc_csrl::parse(formula)?;
        self.check(&parsed)
    }
}
