//! The checker's error type.

use std::error::Error;
use std::fmt;

use mrmc_csrl::ParseError;
use mrmc_ctmc::ModelError;
use mrmc_mrm::MrmError;
use mrmc_numerics::NumericsError;

/// An error raised while checking a formula.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// The formula text failed to parse.
    Parse(ParseError),
    /// An atomic proposition does not occur in the model's labeling.
    ///
    /// This is a warning-grade condition in some tools; this checker
    /// reports it as an error because a typo silently yields `ff`.
    UnknownProposition {
        /// The unmatched proposition.
        name: String,
    },
    /// The requested bounds fall outside what the numerical engines
    /// support (time/reward intervals must be of the form `[0, x]`; see
    /// Section 4.6 and Chapter 6 of the thesis).
    UnsupportedBounds {
        /// Which bound was out of scope.
        what: &'static str,
    },
    /// A numerical engine failed.
    Numerics(NumericsError),
    /// A chain-level analysis failed.
    Model(ModelError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Parse(e) => write!(f, "{e}"),
            CheckError::UnknownProposition { name } => {
                write!(f, "atomic proposition `{name}` does not label any state")
            }
            CheckError::UnsupportedBounds { what } => write!(
                f,
                "unsupported {what}: only [0, t] time and [0, r] reward bounds are supported for until formulas"
            ),
            CheckError::Numerics(e) => write!(f, "{e}"),
            CheckError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CheckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckError::Parse(e) => Some(e),
            CheckError::Numerics(e) => Some(e),
            CheckError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for CheckError {
    fn from(e: ParseError) -> Self {
        CheckError::Parse(e)
    }
}

impl From<NumericsError> for CheckError {
    fn from(e: NumericsError) -> Self {
        // Normalize the numerics-level unsupported-bounds report.
        if let NumericsError::UnsupportedBounds { what } = e {
            CheckError::UnsupportedBounds { what }
        } else {
            CheckError::Numerics(e)
        }
    }
}

impl From<ModelError> for CheckError {
    fn from(e: ModelError) -> Self {
        CheckError::Model(e)
    }
}

impl From<MrmError> for CheckError {
    fn from(e: MrmError) -> Self {
        CheckError::Numerics(NumericsError::Model(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = CheckError::UnknownProposition {
            name: "buzy".into(),
        };
        assert!(e.to_string().contains("buzy"));
        assert!(std::error::Error::source(&e).is_none());

        let e = CheckError::UnsupportedBounds {
            what: "time lower bound",
        };
        assert!(e.to_string().contains("[0, t]"));

        let e: CheckError = mrmc_csrl::parse("a &&").unwrap_err().into();
        assert!(matches!(e, CheckError::Parse(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: CheckError = NumericsError::UnsupportedBounds { what: "x" }.into();
        assert!(matches!(e, CheckError::UnsupportedBounds { what: "x" }));

        let e: CheckError = ModelError::EmptyModel.into();
        assert!(e.to_string().contains("no states"));
    }
}
