//! The checker's error type.

use std::error::Error;
use std::fmt;

use mrmc_csrl::ParseError;
use mrmc_ctmc::ModelError;
use mrmc_mrm::MrmError;
use mrmc_numerics::NumericsError;

/// An error raised while checking a formula.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// The formula text failed to parse.
    Parse(ParseError),
    /// An atomic proposition does not occur in the model's labeling.
    ///
    /// This is a warning-grade condition in some tools; this checker
    /// reports it as an error because a typo silently yields `ff`.
    UnknownProposition {
        /// The unmatched proposition.
        name: String,
    },
    /// The requested bounds fall outside what the numerical engines
    /// support (time/reward intervals must be of the form `[0, x]`; see
    /// Section 4.6 and Chapter 6 of the thesis).
    UnsupportedBounds {
        /// Which bound was out of scope.
        what: &'static str,
    },
    /// The adaptive driver could not refine the engine far enough to meet
    /// the requested [`tolerance`](crate::CheckOptions::tolerance).
    ToleranceNotMet {
        /// The tolerance the caller asked for.
        requested: f64,
        /// The tightest total error budget achieved.
        achieved: f64,
    },
    /// The static pre-flight lint found Error-grade diagnostics; no
    /// numerical engine was started. The report carries every finding
    /// (including any warnings and notes that accompanied the errors).
    Preflight(mrmc_analysis::Report),
    /// [`Reduction::Require`](crate::Reduction) was set but no verified,
    /// strictly smaller lumping quotient exists for this formula.
    Reduction {
        /// Why the reduction was unavailable.
        reason: String,
    },
    /// A numerical engine failed.
    Numerics(NumericsError),
    /// A chain-level analysis failed.
    Model(ModelError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Parse(e) => write!(f, "{e}"),
            CheckError::UnknownProposition { name } => {
                write!(f, "atomic proposition `{name}` does not label any state")
            }
            CheckError::UnsupportedBounds { what } => write!(
                f,
                "unsupported {what}: only [0, t] time and [0, r] reward bounds are supported for until formulas"
            ),
            CheckError::ToleranceNotMet {
                requested,
                achieved,
            } => write!(
                f,
                "tolerance not met: requested {requested:e}, achieved error bound {achieved:e}"
            ),
            CheckError::Preflight(report) => {
                write!(f, "pre-flight lint failed:")?;
                for d in report.errors() {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            CheckError::Reduction { reason } => {
                write!(f, "required model reduction unavailable: {reason}")
            }
            CheckError::Numerics(e) => write!(f, "{e}"),
            CheckError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CheckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckError::Parse(e) => Some(e),
            CheckError::Numerics(e) => Some(e),
            CheckError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for CheckError {
    fn from(e: ParseError) -> Self {
        CheckError::Parse(e)
    }
}

impl From<NumericsError> for CheckError {
    fn from(e: NumericsError) -> Self {
        // Normalize the numerics-level structured reports.
        match e {
            NumericsError::UnsupportedBounds { what } => CheckError::UnsupportedBounds { what },
            NumericsError::ToleranceNotMet {
                requested,
                achieved,
            } => CheckError::ToleranceNotMet {
                requested,
                achieved,
            },
            other => CheckError::Numerics(other),
        }
    }
}

impl From<ModelError> for CheckError {
    fn from(e: ModelError) -> Self {
        CheckError::Model(e)
    }
}

impl From<MrmError> for CheckError {
    fn from(e: MrmError) -> Self {
        CheckError::Numerics(NumericsError::Model(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = CheckError::UnknownProposition {
            name: "buzy".into(),
        };
        assert!(e.to_string().contains("buzy"));
        assert!(std::error::Error::source(&e).is_none());

        let e = CheckError::UnsupportedBounds {
            what: "time lower bound",
        };
        assert!(e.to_string().contains("[0, t]"));

        let e: CheckError = mrmc_csrl::parse("a &&").unwrap_err().into();
        assert!(matches!(e, CheckError::Parse(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: CheckError = NumericsError::UnsupportedBounds { what: "x" }.into();
        assert!(matches!(e, CheckError::UnsupportedBounds { what: "x" }));

        let e: CheckError = NumericsError::ToleranceNotMet {
            requested: 1e-6,
            achieved: 1e-4,
        }
        .into();
        assert!(matches!(
            e,
            CheckError::ToleranceNotMet {
                requested: 1e-6,
                achieved: 1e-4
            }
        ));
        assert!(e.to_string().contains("1e-6"));

        let e: CheckError = ModelError::EmptyModel.into();
        assert!(e.to_string().contains("no states"));
    }

    #[test]
    fn reduction_error_displays_the_reason() {
        let e = CheckError::Reduction {
            reason: "no nontrivial quotient exists for this formula".into(),
        };
        assert!(e.to_string().contains("required model reduction"));
        assert!(e.to_string().contains("nontrivial quotient"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn preflight_display_lists_the_error_diagnostics() {
        use mrmc_analysis::{Diagnostic, Report, Severity};
        let mut report = Report::new();
        report.push(Diagnostic::new(
            "F001",
            Severity::Error,
            "atomic proposition `buzzy` does not label any state",
        ));
        report.push(Diagnostic::new("M106", Severity::Warning, "unused label"));
        let e = CheckError::Preflight(report);
        let s = e.to_string();
        assert!(s.contains("pre-flight lint failed"));
        assert!(s.contains("error[F001]"));
        assert!(s.contains("buzzy"));
        // Only Error-grade findings are shown in the compact message.
        assert!(!s.contains("M106"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
