//! Session-scoped memoization of `Sat` sub-results.
//!
//! A [`SatCache`] stores the full result of every engine-backed subformula
//! (`S`/`P` operators) the recursion in `crate::sat` evaluates, keyed by
//! `(model content hash, canonical subformula text, options fingerprint)`.
//! All three key components pin everything a result depends on:
//!
//! * the **model hash** ([`model_hash`]) digests the transition structure
//!   (bitwise rate values), the labeling, and both reward structures, so
//!   two loads of byte-different files that parse to the same model share
//!   entries while *any* semantic change — a rate, a label, an impulse —
//!   produces a fresh key;
//! * the **subformula text** is the canonical printer rendering
//!   (round-trip tested in the CSRL corpus), so structurally identical
//!   subformulas share entries across enclosing formulas;
//! * the **options fingerprint** ([`options_fingerprint`]) digests every
//!   accuracy-relevant knob — engine and its parameters, solver method and
//!   tolerances, adaptive tolerance, reduction policy — but deliberately
//!   *not* thread counts: the parallel engines are bit-identical at every
//!   thread count (see `tests/cross_engine.rs`), so a result computed at
//!   one count may be served at any other.
//!
//! Serving a hit is exact: the engines are deterministic functions of
//! `(model, subformula, options)`, so a cached triple is bit-for-bit the
//! triple a fresh run would produce. The cache is installed with dynamic
//! scoping ([`with_sat_cache`]), mirroring `mrmc_obs::with_recorder` and
//! `mrmc_numerics::omega::with_omega_cache`: one-shot callers
//! ([`crate::ModelChecker`]) install nothing and keep the exact historical
//! behavior, while [`crate::CheckSession`] installs its cache around each
//! request.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mrmc_mrm::Mrm;

use crate::options::CheckOptions;
use crate::sat::Extras;

/// 64-bit FNV-1a, the workspace's hermetic content digest.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    pub(crate) fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    pub(crate) fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest `bytes` with FNV-1a (used for the load-once file store).
pub(crate) fn hash_bytes(bytes: &[u8]) -> u64 {
    Fnv::new().write(bytes).finish()
}

/// Content hash of a model: every ingredient a checking result can depend
/// on, independent of the byte representation it was loaded from.
pub fn model_hash(mrm: &Mrm) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(mrm.num_states() as u64);
    for (row, col, rate) in mrm.ctmc().rates().iter() {
        h.write_u64(row as u64)
            .write_u64(col as u64)
            .write_f64(rate);
    }
    // Per-state label sets, sorted: the labeling's iteration order is an
    // implementation detail the hash must not observe.
    for state in 0..mrm.num_states() {
        let mut aps: Vec<&str> = mrm.labeling().of_state(state).collect();
        aps.sort_unstable();
        h.write_u64(aps.len() as u64);
        for ap in aps {
            h.write(ap.as_bytes()).write(&[0]);
        }
    }
    for &r in mrm.state_rewards().as_slice() {
        h.write_f64(r);
    }
    let mut impulses: Vec<(usize, usize, f64)> = mrm.impulse_rewards().iter().collect();
    impulses.sort_by_key(|&(from, to, _)| (from, to));
    h.write_u64(impulses.len() as u64);
    for (from, to, value) in impulses {
        h.write_u64(from as u64)
            .write_u64(to as u64)
            .write_f64(value);
    }
    h.finish()
}

/// Fingerprint of every accuracy-relevant checking option.
///
/// Thread counts are normalized to `1` first — the parallel engines are
/// bit-identical at every thread count, so results may be shared across
/// counts. Everything else (engine knobs, solver method and tolerances,
/// adaptive tolerance, reduction policy, pre-flight) is digested via the
/// `Debug` rendering, whose `f64` formatting is shortest-round-trip and
/// therefore value-exact.
pub fn options_fingerprint(options: &CheckOptions) -> u64 {
    let normalized = options.with_threads(1);
    hash_bytes(format!("{normalized:?}").as_bytes())
}

/// The cache context: which model (by content hash) and which options the
/// results being read/written belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatCtx {
    /// Content hash of the model the recursion is running on (the
    /// quotient's hash when checking on a certified quotient).
    pub model_hash: u64,
    /// [`options_fingerprint`] of the active [`CheckOptions`].
    pub options_fp: u64,
}

/// One memoized sub-result: the full triple the recursion produced.
pub(crate) type CachedSat = (Vec<bool>, Vec<bool>, Option<Extras>);

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SatKey {
    model_hash: u64,
    options_fp: u64,
    formula: String,
}

/// A shareable store of memoized `Sat` sub-results with hit/miss
/// accounting (surfaced as the `sat_cache_hits`/`sat_cache_misses`
/// counters in the `mrmc_obs::counters` registry).
#[derive(Debug, Default)]
pub struct SatCache {
    entries: Mutex<BTreeMap<SatKey, CachedSat>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SatCache {
    /// An empty cache.
    pub fn new() -> Self {
        SatCache::default()
    }

    pub(crate) fn get(&self, ctx: SatCtx, formula: &str) -> Option<CachedSat> {
        let entries = self.entries.lock().expect("sat cache poisoned");
        let v = entries
            .get(&SatKey {
                model_hash: ctx.model_hash,
                options_fp: ctx.options_fp,
                formula: formula.to_string(),
            })
            .cloned();
        if v.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    pub(crate) fn insert(&self, ctx: SatCtx, formula: String, value: CachedSat) {
        let mut entries = self.entries.lock().expect("sat cache poisoned");
        entries.insert(
            SatKey {
                model_hash: ctx.model_hash,
                options_fp: ctx.options_fp,
                formula,
            },
            value,
        );
    }

    /// Number of memoized sub-results.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("sat cache poisoned").len()
    }

    /// `true` when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

thread_local! {
    static INSTALLED: RefCell<Option<(Arc<SatCache>, SatCtx)>> = const { RefCell::new(None) };
}

/// Install `cache` (with its model/options context) as this thread's
/// `Sat` memo for the duration of `f`.
///
/// Scoping is dynamic and re-entrant, mirroring
/// [`mrmc_numerics::omega::with_omega_cache`]: nested calls shadow the
/// outer cache and restore it on exit (also on unwind). While installed,
/// the recursion in `crate::sat` serves engine-backed subformulas from
/// the cache and stores misses — results are bit-identical to an uncached
/// run.
pub fn with_sat_cache<T>(cache: Arc<SatCache>, ctx: SatCtx, f: impl FnOnce() -> T) -> T {
    struct Restore {
        previous: Option<(Arc<SatCache>, SatCtx)>,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            INSTALLED.with(|c| *c.borrow_mut() = self.previous.take());
        }
    }
    let restore = Restore {
        previous: INSTALLED.with(|c| c.borrow_mut().replace((cache, ctx))),
    };
    let out = f();
    drop(restore);
    out
}

/// The cache and context installed on this thread, if any.
pub(crate) fn installed() -> Option<(Arc<SatCache>, SatCtx)> {
    INSTALLED.with(|c| c.borrow().clone())
}

/// A shareable store of Tarjan SCC decompositions keyed by
/// [`model_hash`], with hit/miss accounting. The condensation depends
/// only on the model's rate graph (which the hash digests), so one entry
/// serves every formula and option set checked against the same model —
/// the qualitative dataflow pre-pass asks for it once per until operator.
#[derive(Debug, Default)]
pub struct SccCache {
    entries: Mutex<BTreeMap<u64, Arc<mrmc_ctmc::bscc::SccDecomposition>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SccCache {
    /// An empty cache.
    pub fn new() -> Self {
        SccCache::default()
    }

    /// Number of memoized decompositions.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("scc cache poisoned").len()
    }

    /// `true` when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn get_or_compute(
        &self,
        hash: u64,
        compute: impl FnOnce() -> mrmc_ctmc::bscc::SccDecomposition,
    ) -> Arc<mrmc_ctmc::bscc::SccDecomposition> {
        if let Some(scc) = self
            .entries
            .lock()
            .expect("scc cache poisoned")
            .get(&hash)
            .cloned()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return scc;
        }
        // Compute outside the lock; a racing thread may duplicate the
        // work, but both arrive at the identical decomposition.
        let scc = Arc::new(compute());
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("scc cache poisoned")
            .entry(hash)
            .or_insert_with(|| scc.clone())
            .clone()
    }
}

thread_local! {
    static INSTALLED_SCC: RefCell<Option<Arc<SccCache>>> = const { RefCell::new(None) };
}

/// Install `cache` as this thread's condensation store for the duration
/// of `f` — dynamic scoping exactly like [`with_sat_cache`]. One-shot
/// callers install nothing and recompute per request;
/// [`crate::CheckSession`] installs its cache around each check so the
/// Tarjan pass runs once per model hash.
pub fn with_scc_cache<T>(cache: Arc<SccCache>, f: impl FnOnce() -> T) -> T {
    struct Restore {
        previous: Option<Arc<SccCache>>,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            INSTALLED_SCC.with(|c| *c.borrow_mut() = self.previous.take());
        }
    }
    let restore = Restore {
        previous: INSTALLED_SCC.with(|c| c.borrow_mut().replace(cache)),
    };
    let out = f();
    drop(restore);
    out
}

/// The SCC decomposition of `mrm`'s rate graph: served from the installed
/// [`SccCache`] (keyed by [`model_hash`]) when one is in scope, computed
/// fresh otherwise. The decomposition is a pure function of the rate
/// graph, so a cached value is identical to a recomputed one.
pub(crate) fn condensation_for(mrm: &Mrm) -> Arc<mrmc_ctmc::bscc::SccDecomposition> {
    let compute = || mrmc_ctmc::bscc::SccDecomposition::new(mrm.ctmc().rates());
    match INSTALLED_SCC.with(|c| c.borrow().clone()) {
        Some(cache) => cache.get_or_compute(model_hash(mrm), compute),
        None => Arc::new(compute()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UntilEngine;

    #[test]
    fn model_hash_distinguishes_semantic_changes() {
        use mrmc_ctmc::CtmcBuilder;
        let build = |rate: f64, label: &str, reward: f64| {
            let mut b = CtmcBuilder::new(2);
            b.transition(0, 1, rate).transition(1, 0, 0.9);
            b.label(0, label).label(1, "down");
            let ctmc = b.build().unwrap();
            let n = ctmc.num_states();
            Mrm::new(
                ctmc,
                mrmc_mrm::StateRewards::new(vec![reward; n]).unwrap(),
                mrmc_mrm::ImpulseRewards::new(),
            )
            .unwrap()
        };
        let base = model_hash(&build(0.1, "up", 1.0));
        assert_eq!(base, model_hash(&build(0.1, "up", 1.0)), "not stable");
        assert_ne!(base, model_hash(&build(0.2, "up", 1.0)), "rate ignored");
        assert_ne!(base, model_hash(&build(0.1, "on", 1.0)), "label ignored");
        assert_ne!(
            base,
            model_hash(&build(0.1, "up", 2.0)),
            "state reward ignored"
        );
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_knobs() {
        let base = CheckOptions::new();
        assert_eq!(
            options_fingerprint(&base),
            options_fingerprint(&base.with_threads(8)),
            "thread count must not split the cache"
        );
        assert_ne!(
            options_fingerprint(&base),
            options_fingerprint(&base.with_engine(UntilEngine::uniformization(1e-10))),
            "engine knob must split the cache"
        );
        assert_ne!(
            options_fingerprint(&base),
            options_fingerprint(&base.with_tolerance(1e-6)),
            "tolerance must split the cache"
        );
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = SatCache::new();
        let ctx = SatCtx {
            model_hash: 7,
            options_fp: 9,
        };
        assert!(cache.get(ctx, "S(> 0.5) (up)").is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(
            ctx,
            "S(> 0.5) (up)".to_string(),
            (vec![true], vec![false], None),
        );
        let (sat, unknown, extras) = cache.get(ctx, "S(> 0.5) (up)").unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(sat, vec![true]);
        assert_eq!(unknown, vec![false]);
        assert!(extras.is_none());
        // A different model hash misses.
        let other = SatCtx {
            model_hash: 8,
            options_fp: 9,
        };
        assert!(cache.get(other, "S(> 0.5) (up)").is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn scc_cache_memoizes_by_model_hash() {
        use mrmc_ctmc::CtmcBuilder;
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(1, 0, 1.0);
        let m = Mrm::without_rewards(b.build().unwrap());
        let cache = Arc::new(SccCache::new());
        assert!(cache.is_empty());
        let (a, b) = with_scc_cache(cache.clone(), || {
            (condensation_for(&m), condensation_for(&m))
        });
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be served");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(a.num_components(), 1);
        // Uninstalled: computed fresh, cache untouched.
        let fresh = condensation_for(&m);
        assert_eq!(fresh.num_components(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn install_is_scoped_and_reentrant() {
        let outer = Arc::new(SatCache::new());
        let inner = Arc::new(SatCache::new());
        let ctx = SatCtx {
            model_hash: 1,
            options_fp: 2,
        };
        assert!(installed().is_none());
        with_sat_cache(outer.clone(), ctx, || {
            assert!(Arc::ptr_eq(&installed().unwrap().0, &outer));
            with_sat_cache(inner.clone(), ctx, || {
                assert!(Arc::ptr_eq(&installed().unwrap().0, &inner));
            });
            assert!(Arc::ptr_eq(&installed().unwrap().0, &outer));
        });
        assert!(installed().is_none());
    }
}
