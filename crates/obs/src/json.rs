//! Minimal JSON support shared across the workspace: emission helpers
//! (used by the trace sink and the metrics/profile renderers) and a small
//! RFC 8259 reader/writer (used by the server protocol and the bench
//! comparison tooling).
//!
//! This crate sits at the bottom of the workspace and must stay
//! dependency-free, so serialization is hand-rolled: numbers use the `{:e}`
//! scientific form (round-trip exact for `f64`), non-finite values become
//! `null`, and strings are escaped per RFC 8259. The parser accepts all of
//! RFC 8259 (objects, arrays, strings with escapes and surrogate pairs,
//! numbers, literals); numbers are held as `f64`, which is exact for every
//! integer the workspace's protocols carry.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write;

/// Append `v` as a JSON number (`null` when non-finite).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        write!(out, "{v:e}").unwrap();
    } else {
        out.push_str("null");
    }
}

/// Append `s` as a JSON string literal.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not significant in the protocols, so a
    /// sorted map keeps lookups simple and `render` deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object, if this is an object and the key is present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render back to JSON text (integers without a fractional part,
    /// strings escaped, object keys in sorted order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(v) => {
                if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) {
                    write!(out, "{}", *v as i64).unwrap();
                } else if v.is_finite() {
                    write!(out, "{v:e}").unwrap();
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c if (c as u32) < 0x20 => {
                            write!(out, "\\u{:04x}", c as u32).unwrap();
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Value::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// A syntax error, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON value; trailing content is an error.
///
/// # Errors
///
/// [`ParseError`] with the offending byte offset.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing content after the value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.at,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.at..].starts_with(b"\\u") {
                                    self.at += 2;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 leaves `at` past the digits; undo the
                            // generic advance below.
                            self.at -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.at += 1;
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(b as char);
                    self.at += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so decode via
                    // the next char boundary.
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let digits = self
            .bytes
            .get(self.at..self.at + 4)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.at += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("invalid number"))?;
        text.parse()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_and_nonfinite() {
        let mut s = String::new();
        push_f64(&mut s, 0.5);
        assert_eq!(s, "5e-1");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        s.clear();
        push_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }

    #[test]
    fn strings_escape_specials() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -2.5e3 ").unwrap(), Value::Num(-2500.0));
        assert_eq!(parse("\"a b\"").unwrap(), Value::Str("a b".into()));
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse(r#"{"check":{"model":"m1","threads":4},"ids":[1,2,3]}"#).unwrap();
        let check = v.get("check").unwrap();
        assert_eq!(check.get("model").unwrap().as_str(), Some("m1"));
        assert_eq!(check.get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(
            v.get("ids").unwrap(),
            &Value::Arr(vec![Value::Num(1.0), Value::Num(2.0), Value::Num(3.0)])
        );
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse(r#""a\"b\\c\ndA😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA😀"));
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn renders_are_stable_json() {
        let v = parse(r#"{"b":1,"a":[true,null,"x"],"c":2.5}"#).unwrap();
        assert_eq!(v.render(), r#"{"a":[true,null,"x"],"b":1,"c":2.5e0}"#);
    }

    #[test]
    fn garbage_is_rejected_with_offsets() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{}extra").is_err());
        let e = parse("nul").unwrap_err();
        assert!(e.to_string().contains("byte 0"), "{e}");
    }
}
