//! Minimal JSON emission helpers, shared by the trace sink and
//! [`RunMetrics::to_json`](crate::RunMetrics::to_json).
//!
//! This crate sits at the bottom of the workspace and must stay
//! dependency-free, so serialization is hand-rolled: numbers use the `{:e}`
//! scientific form (round-trip exact for `f64`), non-finite values become
//! `null`, and strings are escaped per RFC 8259.

use std::fmt::Write;

/// Append `v` as a JSON number (`null` when non-finite).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        write!(out, "{v:e}").unwrap();
    } else {
        out.push_str("null");
    }
}

/// Append `s` as a JSON string literal.
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_and_nonfinite() {
        let mut s = String::new();
        push_f64(&mut s, 0.5);
        assert_eq!(s, "5e-1");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        s.clear();
        push_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }

    #[test]
    fn strings_escape_specials() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
