//! Wall-time profiling: [`ProfileRecorder`] folds the span event stream
//! into a hierarchical self/total time tree ([`ProfileReport`]).
//!
//! Spans arrive *flat*, in close order — a scoped timer emits one
//! [`Event::Span`] when it drops, carrying its duration and its close
//! timestamp on the process-wide timeline. Because scoped timers nest
//! properly on the emitting thread, the intervals form a laminar family,
//! and the tree can be reconstructed from the close-ordered stream alone:
//! when a span closes, every still-unadopted span that started at or
//! after it must lie inside it and becomes its child. Spans left over at
//! the end are roots (top-level checker phases).
//!
//! The reconstruction is pure observation — the recorder only listens to
//! events the engines emit anyway, so installing it cannot perturb a
//! verdict (the determinism contract of this crate, proven end-to-end by
//! `tests/telemetry.rs`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::event::Event;
use crate::hist::Histogram;
use crate::json::{push_f64, push_str};
use crate::Recorder;

/// One closed span on the shared timeline.
#[derive(Debug, Clone, Copy)]
struct Closed {
    name: &'static str,
    start_s: f64,
    end_s: f64,
}

/// A concrete (non-aggregated) tree node during reconstruction.
#[derive(Debug)]
struct Node {
    name: &'static str,
    start_s: f64,
    end_s: f64,
    children: Vec<Node>,
}

/// A [`Recorder`] that collects span events for wall-time profiling.
///
/// Install it (typically inside a
/// [`MultiRecorder`](crate::MultiRecorder)) and call
/// [`report`](Self::report) after the run to get the aggregated tree.
#[derive(Debug, Default)]
pub struct ProfileRecorder {
    closed: Mutex<Vec<Closed>>,
}

impl ProfileRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        ProfileRecorder::default()
    }

    /// Build the aggregated profile from everything recorded so far.
    pub fn report(&self) -> ProfileReport {
        let closed = self.closed.lock().expect("profile lock").clone();
        ProfileReport::from_closed(&closed)
    }
}

impl Recorder for ProfileRecorder {
    fn record(&self, event: &Event) {
        if let Event::Span {
            name,
            seconds,
            end_s,
        } = event
        {
            self.closed.lock().expect("profile lock").push(Closed {
                name,
                start_s: (end_s - seconds).max(0.0),
                end_s: *end_s,
            });
        }
    }
}

/// One node of the aggregated profile tree: all spans with the same name
/// under the same parent path, merged.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Span (phase) name.
    pub name: &'static str,
    /// How many spans were merged into this node.
    pub count: u64,
    /// Total wall-clock seconds across the merged spans.
    pub total_s: f64,
    /// Seconds not attributed to any child: `total_s` minus the
    /// children's `total_s` sum (clamped at zero against rounding).
    pub self_s: f64,
    /// Child phases, sorted by name.
    pub children: Vec<ProfileNode>,
}

/// The aggregated self/total wall-time tree plus per-phase latency
/// histograms, produced by [`ProfileRecorder::report`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Sum of the root nodes' `total_s` (all profiled wall time).
    pub total_s: f64,
    /// Top-level phases, sorted by name.
    pub roots: Vec<ProfileNode>,
    /// Per span-name duration histogram over every individual span.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl ProfileReport {
    fn from_closed(closed: &[Closed]) -> ProfileReport {
        // Reconstruct the forest. Unadopted roots are kept in close
        // order; laminarity makes their intervals disjoint, so their
        // start times increase and the spans contained in a closing span
        // form a suffix of the pending list.
        let mut pending: Vec<Node> = Vec::new();
        for span in closed {
            let mut children = Vec::new();
            while pending.last().is_some_and(|n| n.start_s >= span.start_s) {
                children.push(pending.pop().expect("non-empty pending"));
            }
            children.reverse();
            pending.push(Node {
                name: span.name,
                start_s: span.start_s,
                end_s: span.end_s,
                children,
            });
        }
        let roots = aggregate(pending);
        let total_s = roots.iter().map(|r| r.total_s).sum();
        let mut histograms: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        for span in closed {
            histograms
                .entry(span.name)
                .or_default()
                .observe_seconds(span.end_s - span.start_s);
        }
        ProfileReport {
            total_s,
            roots,
            histograms,
        }
    }

    /// Render as one JSON object with the fixed key order `total_s`,
    /// `spans`, `histograms`; every span node has the fixed key order
    /// `name`, `count`, `total_s`, `self_s`, `children`, and arrays/maps
    /// are sorted by name.
    pub fn to_json(&self) -> String {
        fn write_nodes(out: &mut String, nodes: &[ProfileNode]) {
            out.push('[');
            for (i, node) in nodes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                push_str(out, node.name);
                write!(out, ",\"count\":{},\"total_s\":", node.count).unwrap();
                push_f64(out, node.total_s);
                out.push_str(",\"self_s\":");
                push_f64(out, node.self_s);
                out.push_str(",\"children\":");
                write_nodes(out, &node.children);
                out.push('}');
            }
            out.push(']');
        }
        let mut s = String::from("{\"total_s\":");
        push_f64(&mut s, self.total_s);
        s.push_str(",\"spans\":");
        write_nodes(&mut s, &self.roots);
        s.push_str(",\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_str(&mut s, name);
            s.push(':');
            hist.write_json(&mut s);
        }
        s.push_str("}}");
        s
    }

    /// The human "flame table": one indented row per tree node with
    /// count, total and self seconds.
    pub fn table(&self) -> String {
        fn write_rows(out: &mut String, nodes: &[ProfileNode], depth: usize) {
            for node in nodes {
                let label = format!("{:indent$}{}", "", node.name, indent = 2 * depth);
                writeln!(
                    out,
                    "  {label:<30} {:>7} {:>12.6} {:>12.6}",
                    node.count, node.total_s, node.self_s
                )
                .unwrap();
                write_rows(out, &node.children, depth + 1);
            }
        }
        let mut out = String::new();
        writeln!(
            out,
            "  {:<30} {:>7} {:>12} {:>12}",
            "phase", "count", "total s", "self s"
        )
        .unwrap();
        write_rows(&mut out, &self.roots, 0);
        out
    }
}

/// Merge a forest of concrete nodes by name (recursively), computing
/// total and self times. Children sort by name for determinism.
fn aggregate(nodes: Vec<Node>) -> Vec<ProfileNode> {
    let mut by_name: BTreeMap<&'static str, (u64, f64, Vec<Node>)> = BTreeMap::new();
    for node in nodes {
        let slot = by_name.entry(node.name).or_insert((0, 0.0, Vec::new()));
        slot.0 += 1;
        slot.1 += node.end_s - node.start_s;
        slot.2.extend(node.children);
    }
    by_name
        .into_iter()
        .map(|(name, (count, total_s, grandchildren))| {
            let children = aggregate(grandchildren);
            let child_total: f64 = children.iter().map(|c| c.total_s).sum();
            // Children are disjoint sub-intervals of their parents, so a
            // negative residue can only be float rounding; clamp it.
            let self_s = (total_s - child_total).max(0.0);
            ProfileNode {
                name,
                count,
                total_s,
                self_s,
                children,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, with_recorder};
    use std::sync::Arc;

    fn feed(recorder: &ProfileRecorder, spans: &[(&'static str, f64, f64)]) {
        for &(name, start_s, end_s) in spans {
            recorder.record(&Event::Span {
                name,
                seconds: end_s - start_s,
                end_s,
            });
        }
    }

    #[test]
    fn close_order_reconstructs_the_nesting_tree() {
        let rec = ProfileRecorder::new();
        // engine [0.0, 1.0] containing solver [0.1, 0.3] and grid
        // [0.4, 0.9], grid containing solver [0.5, 0.6]; then a sibling
        // root phase [1.0, 1.2]. Close order: innermost first.
        feed(
            &rec,
            &[
                ("solver", 0.1, 0.3),
                ("solver", 0.5, 0.6),
                ("grid", 0.4, 0.9),
                ("engine", 0.0, 1.0),
                ("reduction", 1.0, 1.2),
            ],
        );
        let report = rec.report();
        assert_eq!(report.roots.len(), 2);
        let engine = &report.roots[0];
        assert_eq!(engine.name, "engine");
        assert_eq!(engine.count, 1);
        assert!((engine.total_s - 1.0).abs() < 1e-12);
        assert_eq!(engine.children.len(), 2);
        let grid = &engine.children[0];
        assert_eq!(grid.name, "grid");
        assert_eq!(grid.children.len(), 1);
        assert_eq!(grid.children[0].name, "solver");
        assert!((grid.self_s - 0.4).abs() < 1e-12);
        let solver = &engine.children[1];
        assert_eq!(solver.name, "solver");
        assert_eq!(solver.count, 1, "only the direct child merges here");
        assert!((engine.self_s - (1.0 - 0.5 - 0.2)).abs() < 1e-12);
        assert_eq!(report.roots[1].name, "reduction");
        assert!((report.total_s - 1.2).abs() < 1e-12);
    }

    #[test]
    fn repeated_phases_merge_by_name_per_level() {
        let rec = ProfileRecorder::new();
        // Two formulas, each with engine over solver.
        feed(
            &rec,
            &[
                ("solver", 0.1, 0.2),
                ("engine", 0.0, 0.5),
                ("solver", 0.6, 0.9),
                ("engine", 0.5, 1.5),
            ],
        );
        let report = rec.report();
        assert_eq!(report.roots.len(), 1);
        let engine = &report.roots[0];
        assert_eq!(engine.count, 2);
        assert!((engine.total_s - 1.5).abs() < 1e-12);
        assert_eq!(engine.children.len(), 1);
        assert_eq!(engine.children[0].count, 2);
        assert!((engine.children[0].total_s - 0.4).abs() < 1e-12);
        assert_eq!(report.histograms["engine"].count(), 2);
        assert_eq!(report.histograms["solver"].count(), 2);
    }

    #[test]
    fn children_never_exceed_parents() {
        let rec = ProfileRecorder::new();
        feed(
            &rec,
            &[("a", 0.0, 0.3), ("b", 0.3, 0.7), ("outer", 0.0, 0.7)],
        );
        let report = rec.report();
        fn check(node: &ProfileNode) {
            let child_total: f64 = node.children.iter().map(|c| c.total_s).sum();
            assert!(
                child_total <= node.total_s + 1e-12,
                "{}: children {child_total} > total {}",
                node.name,
                node.total_s
            );
            assert!(node.self_s >= 0.0);
            for child in &node.children {
                check(child);
            }
        }
        for root in &report.roots {
            check(root);
        }
        assert!((report.roots[0].self_s - 0.0).abs() < 1e-12);
    }

    #[test]
    fn json_and_table_have_the_documented_shape() {
        let rec = ProfileRecorder::new();
        feed(&rec, &[("solver", 0.25, 0.5), ("engine", 0.0, 1.0)]);
        let report = rec.report();
        let json = report.to_json();
        assert!(
            json.starts_with("{\"total_s\":1e0,\"spans\":[{\"name\":\"engine\""),
            "{json}"
        );
        assert!(
            json.contains(
                "\"children\":[{\"name\":\"solver\",\"count\":1,\
                 \"total_s\":2.5e-1,\"self_s\":2.5e-1,\"children\":[]}]"
            ),
            "{json}"
        );
        assert!(
            json.contains("\"histograms\":{\"engine\":{\"count\":1,"),
            "{json}"
        );
        // Parses as real JSON.
        crate::json::parse(&json).expect("profile JSON must parse");
        let table = report.table();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains("phase") && lines[0].contains("self s"));
        assert!(lines[1].trim_start().starts_with("engine"), "{table}");
        assert!(lines[2].trim_start().starts_with("solver"), "{table}");
    }

    #[test]
    fn live_spans_produce_a_nested_report() {
        let rec = Arc::new(ProfileRecorder::new());
        with_recorder(rec.clone(), || {
            let _outer = span("outer_phase");
            {
                let _inner = span("inner_phase");
                std::hint::black_box(0u64);
            }
        });
        let report = rec.report();
        assert_eq!(report.roots.len(), 1);
        assert_eq!(report.roots[0].name, "outer_phase");
        assert_eq!(report.roots[0].children.len(), 1);
        assert_eq!(report.roots[0].children[0].name, "inner_phase");
        assert!(report.roots[0].total_s >= report.roots[0].children[0].total_s);
    }

    #[test]
    fn non_span_events_are_ignored() {
        let rec = ProfileRecorder::new();
        rec.record(&Event::RunSummary {
            formulas: 1,
            failures: 0,
        });
        let report = rec.report();
        assert_eq!(report.roots.len(), 0);
        assert_eq!(report.total_s, 0.0);
        assert!(report.histograms.is_empty());
    }
}
