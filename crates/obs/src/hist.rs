//! Log2-bucketed latency histograms.
//!
//! A [`Histogram`] sorts durations into power-of-two nanosecond buckets:
//! bucket `i` holds durations `d` with `2^(i-1) ns < d <= 2^i ns`
//! (bucket 0 holds everything at or below one nanosecond). Sixty-four
//! buckets therefore cover every representable duration — from
//! nanoseconds to centuries — in a fixed-size array with no configuration
//! knobs, and merging two histograms is plain element-wise addition. The
//! same shape backs the `--profile` per-phase latency tables and the
//! server's per-request-kind latency metrics.

use std::fmt::Write as _;

use crate::json::push_f64;

/// Number of buckets; `2^63 ns` (roughly 292 years) tops out the range.
pub const BUCKET_COUNT: usize = 64;

const NANOS_PER_SEC: f64 = 1e9;

/// A fixed-shape log2 latency histogram over durations in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; BUCKET_COUNT],
    count: u64,
    sum_s: f64,
    max_s: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKET_COUNT],
            count: 0,
            sum_s: 0.0,
            max_s: 0.0,
        }
    }
}

/// The bucket index for a duration of `nanos` nanoseconds:
/// `ceil(log2(nanos))`, clamped into the array.
fn bucket_of(nanos: u64) -> usize {
    if nanos <= 1 {
        0
    } else {
        (u64::BITS - (nanos - 1).leading_zeros()).min(63) as usize
    }
}

/// The inclusive upper bound of bucket `i`, in seconds.
fn upper_bound_s(i: usize) -> f64 {
    2f64.powi(i32::try_from(i).expect("bucket index fits i32")) / NANOS_PER_SEC
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one duration. Negative or non-finite durations clamp to
    /// zero (they can only come from clock anomalies, never from data).
    pub fn observe_seconds(&mut self, seconds: f64) {
        let seconds = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        let nanos = (seconds * NANOS_PER_SEC).ceil();
        let nanos = if nanos >= u64::MAX as f64 {
            u64::MAX
        } else {
            nanos as u64
        };
        self.counts[bucket_of(nanos)] += 1;
        self.count += 1;
        self.sum_s += seconds;
        self.max_s = self.max_s.max(seconds);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed durations, in seconds.
    pub fn sum_s(&self) -> f64 {
        self.sum_s
    }

    /// Largest observed duration, in seconds.
    pub fn max_s(&self) -> f64 {
        self.max_s
    }

    /// `true` when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Add every observation of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_s += other.sum_s;
        self.max_s = self.max_s.max(other.max_s);
    }

    /// The occupied buckets as `(upper_bound_seconds, count)` pairs in
    /// increasing bucket order.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (upper_bound_s(i), c))
    }

    /// Render as one JSON object with the fixed key order
    /// `count`, `sum_s`, `max_s`, `buckets` — where `buckets` is an array
    /// of `{"le_s":…,"count":…}` objects for the occupied buckets only.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }

    pub(crate) fn write_json(&self, out: &mut String) {
        write!(out, "{{\"count\":{},\"sum_s\":", self.count).unwrap();
        push_f64(out, self.sum_s);
        out.push_str(",\"max_s\":");
        push_f64(out, self.max_s);
        out.push_str(",\"buckets\":[");
        for (i, (le_s, count)) in self.buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"le_s\":");
            push_f64(out, le_s);
            write!(out, ",\"count\":{count}}}").unwrap();
        }
        out.push_str("]}");
    }

    /// Append this histogram to `out` in Prometheus text-exposition
    /// format: cumulative `<name>_bucket{...,le="..."}` lines for the
    /// occupied buckets, the mandatory `le="+Inf"` line, then
    /// `<name>_sum` and `<name>_count`. `labels` are rendered verbatim as
    /// `key="value"` pairs on every line.
    pub fn write_prometheus(&self, out: &mut String, name: &str, labels: &[(&str, &str)]) {
        let label_prefix = |out: &mut String| {
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "{k}=\"{v}\"").unwrap();
            }
        };
        let mut cumulative = 0u64;
        for (le_s, count) in self.buckets() {
            cumulative += count;
            write!(out, "{name}_bucket{{").unwrap();
            label_prefix(out);
            if !labels.is_empty() {
                out.push(',');
            }
            writeln!(out, "le=\"{le_s:e}\"}} {cumulative}").unwrap();
        }
        write!(out, "{name}_bucket{{").unwrap();
        label_prefix(out);
        if !labels.is_empty() {
            out.push(',');
        }
        writeln!(out, "le=\"+Inf\"}} {}", self.count).unwrap();
        write!(out, "{name}_sum").unwrap();
        if !labels.is_empty() {
            out.push('{');
            label_prefix(out);
            out.push('}');
        }
        writeln!(out, " {:e}", self.sum_s).unwrap();
        write!(out, "{name}_count").unwrap();
        if !labels.is_empty() {
            out.push('{');
            label_prefix(out);
            out.push('}');
        }
        writeln!(out, " {}", self.count).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_nanoseconds() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(1025), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn observations_land_in_the_right_bucket() {
        let mut h = Histogram::new();
        h.observe_seconds(1e-9); // 1 ns -> bucket 0
        h.observe_seconds(1e-6); // 1000 ns -> bucket 10 (le 1024 ns)
        h.observe_seconds(1e-6);
        h.observe_seconds(2.0); // 2e9 ns -> bucket 31
        let buckets: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (1e-9, 1));
        assert_eq!(buckets[1], (1.024e-6, 2));
        assert_eq!(buckets[1].0, upper_bound_s(10));
        assert_eq!(buckets[2].1, 1);
        assert_eq!(h.count(), 4);
        assert!((h.sum_s() - 2.000002001).abs() < 1e-9);
        assert_eq!(h.max_s(), 2.0);
    }

    #[test]
    fn negative_and_nonfinite_clamp_to_zero() {
        let mut h = Histogram::new();
        h.observe_seconds(-1.0);
        h.observe_seconds(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_s(), 0.0);
        assert_eq!(h.buckets().collect::<Vec<_>>(), vec![(1e-9, 2)]);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = Histogram::new();
        a.observe_seconds(1e-6);
        let mut b = Histogram::new();
        b.observe_seconds(1e-6);
        b.observe_seconds(1e-3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        let buckets: Vec<(f64, u64)> = a.buckets().collect();
        assert_eq!(buckets[0].1, 2);
        assert_eq!(buckets[1].1, 1);
    }

    #[test]
    fn json_shape_is_fixed_and_empty_safe() {
        let empty = Histogram::new().to_json();
        assert_eq!(
            empty,
            "{\"count\":0,\"sum_s\":0e0,\"max_s\":0e0,\"buckets\":[]}"
        );
        let mut h = Histogram::new();
        h.observe_seconds(1e-9);
        assert_eq!(
            h.to_json(),
            "{\"count\":1,\"sum_s\":1e-9,\"max_s\":1e-9,\
             \"buckets\":[{\"le_s\":1e-9,\"count\":1}]}"
        );
    }

    #[test]
    fn prometheus_exposition_is_cumulative() {
        let mut h = Histogram::new();
        h.observe_seconds(1e-9);
        h.observe_seconds(1e-9);
        h.observe_seconds(1e-3);
        let mut out = String::new();
        h.write_prometheus(&mut out, "mrmc_request_seconds", &[("kind", "check")]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "mrmc_request_seconds_bucket{kind=\"check\",le=\"1e-9\"} 2"
        );
        assert!(lines[1]
            .starts_with("mrmc_request_seconds_bucket{kind=\"check\",le=\"1.048576e-3\"} 3"));
        assert_eq!(
            lines[2],
            "mrmc_request_seconds_bucket{kind=\"check\",le=\"+Inf\"} 3"
        );
        assert!(lines[3].starts_with("mrmc_request_seconds_sum{kind=\"check\"} "));
        assert_eq!(lines[4], "mrmc_request_seconds_count{kind=\"check\"} 3");
    }

    #[test]
    fn prometheus_exposition_without_labels() {
        let mut h = Histogram::new();
        h.observe_seconds(1e-9);
        let mut out = String::new();
        h.write_prometheus(&mut out, "mrmc_phase_seconds", &[]);
        assert!(
            out.contains("mrmc_phase_seconds_bucket{le=\"1e-9\"} 1"),
            "{out}"
        );
        assert!(out.contains("mrmc_phase_seconds_count 1"), "{out}");
    }
}
