//! Typed engine events.
//!
//! Every instrumentation point in the workspace emits one of these
//! variants. The variant set is a *stable public vocabulary*: the JSONL
//! trace format names each event by [`Event::kind`], scripts match on
//! those names, and the doc-sync test fails the build when a kind is
//! missing from `docs/USAGE.md` — so extend the enum deliberately and
//! document every addition.

/// The complete, ordered list of event-kind names ([`Event::kind`] values).
///
/// Used by the doc-sync test and by anything that wants to validate a
/// trace without constructing events.
pub const EVENT_KINDS: &[&str] = &[
    "solver_sweep",
    "solver_done",
    "poisson_window",
    "path_exploration",
    "parallel_task",
    "omega_table",
    "discretization_grid",
    "adaptive_attempt",
    "lumping_refinement",
    "progress",
    "span",
    "counter",
    "run_summary",
];

/// One structured telemetry event from an engine layer.
///
/// Events are pure observations: emitting (or not emitting) them never
/// changes a computed probability, verdict, or budget. Wall-clock data
/// appears only in [`Event::Span`]; everything else is deterministic for
/// a fixed input, so traces of two identical runs differ only in their
/// `span` lines.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One Gauss–Seidel sweep of a linear solve (residual = max update).
    SolverSweep {
        /// 1-based sweep number within this solve.
        iteration: u64,
        /// Maximum absolute component update of this sweep.
        residual: f64,
    },
    /// A linear solve finished (or gave up).
    SolverDone {
        /// Sweeps performed.
        iterations: u64,
        /// Final residual.
        residual: f64,
        /// Whether the tolerance was reached.
        converged: bool,
    },
    /// A Fox–Glynn Poisson window was computed.
    PoissonWindow {
        /// The Poisson parameter `Λt`.
        lambda_t: f64,
        /// Left truncation point.
        left: u64,
        /// Right truncation point.
        right: u64,
        /// Requested bound on the trimmed tail mass.
        tail_bound: f64,
    },
    /// One depth-first path exploration of the uniformization engine
    /// completed (Algorithm 4.7 statistics plus the Eq. 4.6 mass).
    PathExploration {
        /// Start state the exploration ran from.
        start_state: u64,
        /// Path-tree nodes visited.
        explored_nodes: u64,
        /// Paths stored into `(k, j)` classes (generated).
        stored_paths: u64,
        /// Paths pruned by the truncation rule.
        truncated_paths: u64,
        /// Deepest path expanded.
        max_depth: u64,
        /// Distinct `(k, j)` reward-count classes.
        num_classes: u64,
        /// Truncated probability mass charged by Eq. 4.6.
        truncated_mass: f64,
    },
    /// One parallel exploration subtree, reported by the coordinator
    /// during the deterministic ordered replay (so task order — and hence
    /// trace order — is identical for every thread count).
    ParallelTask {
        /// Task index in frontier (= replay) order.
        task: u64,
        /// Nodes visited inside the subtree.
        nodes: u64,
        /// Deepest node of the subtree.
        deepest: u64,
    },
    /// Omega-algorithm table statistics for one batch of conditional
    /// probabilities (Algorithm 4.8).
    OmegaTable {
        /// Number of reward coefficients (the table's column dimension).
        coefficients: u64,
        /// Conditional probabilities evaluated (table rows requested).
        requests: u64,
        /// Memo-table entries across all evaluators.
        cache_entries: u64,
        /// Deepest recursion reached by any evaluation.
        max_recursion_depth: u64,
    },
    /// One discretization run's grid dimensions (Algorithm 4.6).
    DiscretizationGrid {
        /// Time steps evolved (`t/d`).
        time_steps: u64,
        /// Reward cells per state row.
        reward_cells: u64,
        /// Integer scaling applied to the rewards.
        reward_scale: f64,
        /// The step size `d` used.
        step: f64,
    },
    /// One attempt of the adaptive tolerance driver, with the achieved
    /// budget breakdown (absent when the attempt failed outright).
    AdaptiveAttempt {
        /// 1-based attempt number.
        round: u64,
        /// Which knob was tried (`"truncation"`, `"step"`, `"samples"`).
        knob: &'static str,
        /// The knob's value for this attempt.
        value: f64,
        /// Achieved total budget, when the attempt produced a result.
        achieved: Option<f64>,
        /// Named budget components of the attempt (empty when it failed).
        components: Vec<(&'static str, f64)>,
    },
    /// A lumpability partition-refinement run finished.
    LumpingRefinement {
        /// Refinement rounds until the fixpoint.
        rounds: u64,
        /// States of the model analyzed.
        states: u64,
        /// Blocks of the resulting partition.
        blocks: u64,
    },
    /// Coarse progress for long runs; emission is throttled *by count* at
    /// the source (never by wall clock), so the event stream stays
    /// deterministic.
    Progress {
        /// What is being counted (`"states"`, `"grid"`).
        phase: &'static str,
        /// Units completed.
        done: u64,
        /// Total units.
        total: u64,
    },
    /// A named phase timer. The only event carrying wall-clock data.
    Span {
        /// Phase name (`"preflight"`, `"reduction"`, `"engine"`, ...).
        name: &'static str,
        /// Elapsed wall-clock seconds.
        seconds: f64,
        /// Close timestamp: seconds since the process-wide profiling
        /// origin (the first span ever started). Together with `seconds`
        /// this locates the span on a shared timeline, which is what lets
        /// [`ProfileRecorder`](crate::ProfileRecorder) reconstruct the
        /// nesting tree from a flat close-ordered event stream.
        end_s: f64,
    },
    /// A named monotone counter; sinks merge repeated observations by
    /// maximum, so emitting a stale (smaller) value is harmless.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Observed value.
        value: u64,
    },
    /// End-of-run marker: the final event of a CLI trace.
    RunSummary {
        /// Formulas checked.
        formulas: u64,
        /// Formulas that failed (error, preflight, or missed tolerance).
        failures: u64,
    },
}

impl Event {
    /// The stable kind name of this event (see [`EVENT_KINDS`]).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SolverSweep { .. } => "solver_sweep",
            Event::SolverDone { .. } => "solver_done",
            Event::PoissonWindow { .. } => "poisson_window",
            Event::PathExploration { .. } => "path_exploration",
            Event::ParallelTask { .. } => "parallel_task",
            Event::OmegaTable { .. } => "omega_table",
            Event::DiscretizationGrid { .. } => "discretization_grid",
            Event::AdaptiveAttempt { .. } => "adaptive_attempt",
            Event::LumpingRefinement { .. } => "lumping_refinement",
            Event::Progress { .. } => "progress",
            Event::Span { .. } => "span",
            Event::Counter { .. } => "counter",
            Event::RunSummary { .. } => "run_summary",
        }
    }

    /// Serialize the event's payload (everything after `"kind"`) as JSON
    /// object members, appended to `out` with a leading comma per field.
    pub(crate) fn write_json_fields(&self, out: &mut String) {
        use crate::json::{push_f64, push_str};
        use std::fmt::Write;
        match self {
            Event::SolverSweep {
                iteration,
                residual,
            } => {
                write!(out, ",\"iteration\":{iteration},\"residual\":").unwrap();
                push_f64(out, *residual);
            }
            Event::SolverDone {
                iterations,
                residual,
                converged,
            } => {
                write!(out, ",\"iterations\":{iterations},\"residual\":").unwrap();
                push_f64(out, *residual);
                write!(out, ",\"converged\":{converged}").unwrap();
            }
            Event::PoissonWindow {
                lambda_t,
                left,
                right,
                tail_bound,
            } => {
                out.push_str(",\"lambda_t\":");
                push_f64(out, *lambda_t);
                write!(out, ",\"left\":{left},\"right\":{right},\"tail_bound\":").unwrap();
                push_f64(out, *tail_bound);
            }
            Event::PathExploration {
                start_state,
                explored_nodes,
                stored_paths,
                truncated_paths,
                max_depth,
                num_classes,
                truncated_mass,
            } => {
                write!(
                    out,
                    ",\"start_state\":{start_state},\"explored_nodes\":{explored_nodes},\
                     \"stored_paths\":{stored_paths},\"truncated_paths\":{truncated_paths},\
                     \"max_depth\":{max_depth},\"num_classes\":{num_classes},\"truncated_mass\":"
                )
                .unwrap();
                push_f64(out, *truncated_mass);
            }
            Event::ParallelTask {
                task,
                nodes,
                deepest,
            } => {
                write!(
                    out,
                    ",\"task\":{task},\"nodes\":{nodes},\"deepest\":{deepest}"
                )
                .unwrap();
            }
            Event::OmegaTable {
                coefficients,
                requests,
                cache_entries,
                max_recursion_depth,
            } => {
                write!(
                    out,
                    ",\"coefficients\":{coefficients},\"requests\":{requests},\
                     \"cache_entries\":{cache_entries},\"max_recursion_depth\":{max_recursion_depth}"
                )
                .unwrap();
            }
            Event::DiscretizationGrid {
                time_steps,
                reward_cells,
                reward_scale,
                step,
            } => {
                write!(
                    out,
                    ",\"time_steps\":{time_steps},\"reward_cells\":{reward_cells},\"reward_scale\":"
                )
                .unwrap();
                push_f64(out, *reward_scale);
                out.push_str(",\"step\":");
                push_f64(out, *step);
            }
            Event::AdaptiveAttempt {
                round,
                knob,
                value,
                achieved,
                components,
            } => {
                write!(out, ",\"round\":{round},\"knob\":").unwrap();
                push_str(out, knob);
                out.push_str(",\"value\":");
                push_f64(out, *value);
                out.push_str(",\"achieved\":");
                match achieved {
                    Some(a) => push_f64(out, *a),
                    None => out.push_str("null"),
                }
                out.push_str(",\"components\":{");
                for (i, (name, v)) in components.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_str(out, name);
                    out.push(':');
                    push_f64(out, *v);
                }
                out.push('}');
            }
            Event::LumpingRefinement {
                rounds,
                states,
                blocks,
            } => {
                write!(
                    out,
                    ",\"rounds\":{rounds},\"states\":{states},\"blocks\":{blocks}"
                )
                .unwrap();
            }
            Event::Progress { phase, done, total } => {
                out.push_str(",\"phase\":");
                push_str(out, phase);
                write!(out, ",\"done\":{done},\"total\":{total}").unwrap();
            }
            Event::Span {
                name,
                seconds,
                end_s,
            } => {
                out.push_str(",\"name\":");
                push_str(out, name);
                out.push_str(",\"seconds\":");
                push_f64(out, *seconds);
                out.push_str(",\"end_s\":");
                push_f64(out, *end_s);
            }
            Event::Counter { name, value } => {
                out.push_str(",\"name\":");
                push_str(out, name);
                write!(out, ",\"value\":{value}").unwrap();
            }
            Event::RunSummary { formulas, failures } => {
                write!(out, ",\"formulas\":{formulas},\"failures\":{failures}").unwrap();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_kind_is_listed_exactly_once() {
        let sample = [
            Event::SolverSweep {
                iteration: 1,
                residual: 0.5,
            },
            Event::SolverDone {
                iterations: 3,
                residual: 1e-13,
                converged: true,
            },
            Event::PoissonWindow {
                lambda_t: 10.0,
                left: 2,
                right: 30,
                tail_bound: 1e-10,
            },
            Event::PathExploration {
                start_state: 0,
                explored_nodes: 10,
                stored_paths: 4,
                truncated_paths: 2,
                max_depth: 5,
                num_classes: 3,
                truncated_mass: 1e-9,
            },
            Event::ParallelTask {
                task: 0,
                nodes: 7,
                deepest: 4,
            },
            Event::OmegaTable {
                coefficients: 3,
                requests: 12,
                cache_entries: 40,
                max_recursion_depth: 6,
            },
            Event::DiscretizationGrid {
                time_steps: 100,
                reward_cells: 50,
                reward_scale: 1.0,
                step: 0.01,
            },
            Event::AdaptiveAttempt {
                round: 1,
                knob: "truncation",
                value: 1e-8,
                achieved: Some(1e-7),
                components: vec![("path_truncation", 1e-7)],
            },
            Event::LumpingRefinement {
                rounds: 2,
                states: 5,
                blocks: 3,
            },
            Event::Progress {
                phase: "states",
                done: 1,
                total: 5,
            },
            Event::Span {
                name: "engine",
                seconds: 0.25,
                end_s: 1.25,
            },
            Event::Counter {
                name: "threads",
                value: 4,
            },
            Event::RunSummary {
                formulas: 2,
                failures: 0,
            },
        ];
        let kinds: Vec<&str> = sample.iter().map(Event::kind).collect();
        assert_eq!(kinds, EVENT_KINDS, "EVENT_KINDS out of sync with variants");
    }

    #[test]
    fn json_fields_are_well_formed_fragments() {
        let e = Event::AdaptiveAttempt {
            round: 2,
            knob: "step",
            value: 0.125,
            achieved: None,
            components: vec![],
        };
        let mut s = String::new();
        e.write_json_fields(&mut s);
        assert!(s.contains("\"achieved\":null"), "{s}");
        assert!(s.contains("\"components\":{}"), "{s}");
        let e = Event::Progress {
            phase: "grid",
            done: 50,
            total: 100,
        };
        let mut s = String::new();
        e.write_json_fields(&mut s);
        assert_eq!(s, ",\"phase\":\"grid\",\"done\":50,\"total\":100");
    }
}
