//! Recorder sinks: the no-op recorder, the JSONL trace writer, the stderr
//! progress printer, and the fan-out combinator.

use std::fmt::Write as _;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::Recorder;

/// The explicit no-op sink.
///
/// Installing `NullRecorder` is equivalent to installing no recorder at
/// all: [`record`](crate::record) still short-circuits on the thread-local
/// enabled flag *before* constructing the event, so the disabled hot path
/// costs one `Cell` read and nothing else. The type exists so callers can
/// treat "no telemetry" as just another sink (e.g. the determinism
/// property test swaps it against the trace sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &Event) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// Streams every event as one JSON object per line (JSONL) to a file.
///
/// Each line is `{"seq":N,"kind":"...",...}` with `seq` increasing from 0.
/// The writer is buffered; [`flush`](Recorder::flush) (also called on
/// drop) pushes everything to disk.
#[derive(Debug)]
pub struct JsonlTraceRecorder {
    inner: Mutex<TraceInner>,
}

#[derive(Debug)]
struct TraceInner {
    seq: u64,
    out: BufWriter<std::fs::File>,
}

impl JsonlTraceRecorder {
    /// Create (truncate) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlTraceRecorder {
            inner: Mutex::new(TraceInner {
                seq: 0,
                out: BufWriter::new(file),
            }),
        })
    }
}

impl Recorder for JsonlTraceRecorder {
    fn record(&self, event: &Event) {
        let mut inner = self.inner.lock().expect("trace lock");
        let mut line = String::with_capacity(96);
        write!(
            line,
            "{{\"seq\":{},\"kind\":\"{}\"",
            inner.seq,
            event.kind()
        )
        .unwrap();
        event.write_json_fields(&mut line);
        line.push_str("}\n");
        inner.seq += 1;
        // Trace I/O errors must never abort a checking run; drop the line.
        let _ = inner.out.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.inner.lock().expect("trace lock").out.flush();
    }
}

impl Drop for JsonlTraceRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Prints a short progress line to stderr for [`Event::Progress`] events.
///
/// The default recorder prints every event it sees (emission sites
/// already throttle by count, so the line rate is bounded by
/// construction, not by wall clock). [`throttled`](Self::throttled) adds
/// a second count-based gate on top: a phase's line is printed only when
/// `done` advanced by at least the stride since the last printed line —
/// or when the phase completes (`done == total`), so the final line is
/// never swallowed. Both gates count events, never the wall clock, which
/// keeps stderr output deterministic for a fixed event stream.
#[derive(Debug, Default)]
pub struct ProgressRecorder {
    /// Minimum `done` advance between printed lines per phase (`<= 1`
    /// means print everything).
    stride: u64,
    /// Last printed `done` per phase.
    last: Mutex<std::collections::BTreeMap<&'static str, u64>>,
}

impl ProgressRecorder {
    /// A recorder that prints every progress event.
    pub fn new() -> Self {
        ProgressRecorder::default()
    }

    /// A recorder that prints a phase's line only every `stride` units of
    /// progress (and always on completion).
    pub fn throttled(stride: u64) -> Self {
        ProgressRecorder {
            stride,
            last: Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// The line this event should print, if any; advances the throttle
    /// state. Separated from [`Recorder::record`] so the gating logic is
    /// testable without capturing stderr.
    fn line(&self, event: &Event) -> Option<String> {
        let Event::Progress { phase, done, total } = event else {
            return None;
        };
        if self.stride > 1 && done != total {
            let mut last = self.last.lock().expect("progress lock");
            match last.get(phase) {
                Some(prev) if done.saturating_sub(*prev) < self.stride => return None,
                _ => {
                    last.insert(phase, *done);
                }
            }
        }
        Some(format!("mrmc: progress: {phase} {done}/{total}"))
    }
}

impl Recorder for ProgressRecorder {
    fn record(&self, event: &Event) {
        if let Some(line) = self.line(event) {
            eprintln!("{line}");
        }
    }
}

/// Fans every event out to several sinks (metrics + trace + progress in
/// one run).
pub struct MultiRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl MultiRecorder {
    /// Combine `sinks`; events are delivered in the given order.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        MultiRecorder { sinks }
    }
}

impl std::fmt::Debug for MultiRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MultiRecorder({} sinks)", self.sinks.len())
    }
}

impl Recorder for MultiRecorder {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRecorder;

    #[test]
    fn trace_writes_seq_numbered_jsonl() {
        let path =
            std::env::temp_dir().join(format!("mrmc-obs-trace-{}.jsonl", std::process::id()));
        let trace = JsonlTraceRecorder::create(&path).unwrap();
        trace.record(&Event::Counter {
            name: "a",
            value: 1,
        });
        trace.record(&Event::RunSummary {
            formulas: 1,
            failures: 0,
        });
        trace.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].starts_with("{\"seq\":0,\"kind\":\"counter\""),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with("{\"seq\":1,\"kind\":\"run_summary\""),
            "{}",
            lines[1]
        );
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_fans_out() {
        let a = Arc::new(MetricsRecorder::new());
        let b = Arc::new(MetricsRecorder::new());
        let multi = MultiRecorder::new(vec![a.clone(), b.clone()]);
        multi.record(&Event::Progress {
            phase: "states",
            done: 1,
            total: 2,
        });
        assert_eq!(a.snapshot().progress_events, 1);
        assert_eq!(b.snapshot().progress_events, 1);
    }

    #[test]
    fn progress_prints_only_progress_events() {
        let p = ProgressRecorder::new();
        assert_eq!(
            p.line(&Event::Progress {
                phase: "states",
                done: 1,
                total: 4,
            }),
            Some("mrmc: progress: states 1/4".to_owned())
        );
        assert_eq!(
            p.line(&Event::RunSummary {
                formulas: 1,
                failures: 0,
            }),
            None
        );
    }

    #[test]
    fn throttled_progress_gates_by_count_and_always_prints_completion() {
        let p = ProgressRecorder::throttled(10);
        let mut printed = Vec::new();
        for done in 1..=30 {
            let event = Event::Progress {
                phase: "grid",
                done,
                total: 30,
            };
            if p.line(&event).is_some() {
                printed.push(done);
            }
        }
        // First line, then every >=10 units, then the completion line.
        assert_eq!(printed, vec![1, 11, 21, 30]);
        // Re-running the same stream through a fresh recorder prints the
        // same lines: the gate counts events, not wall clock.
        let q = ProgressRecorder::throttled(10);
        let reprinted: Vec<u64> = (1..=30)
            .filter(|&done| {
                q.line(&Event::Progress {
                    phase: "grid",
                    done,
                    total: 30,
                })
                .is_some()
            })
            .collect();
        assert_eq!(printed, reprinted);
    }

    #[test]
    fn throttled_progress_tracks_phases_independently() {
        let p = ProgressRecorder::throttled(5);
        assert!(p
            .line(&Event::Progress {
                phase: "states",
                done: 1,
                total: 100,
            })
            .is_some());
        // A different phase has its own throttle window.
        assert!(p
            .line(&Event::Progress {
                phase: "grid",
                done: 1,
                total: 100,
            })
            .is_some());
        assert!(p
            .line(&Event::Progress {
                phase: "states",
                done: 2,
                total: 100,
            })
            .is_none());
    }

    /// A sink that logs `(label, kind)` into a shared journal, for
    /// observing delivery order across sinks.
    struct TagSink {
        label: &'static str,
        journal: Arc<Mutex<Vec<(&'static str, &'static str)>>>,
    }

    impl Recorder for TagSink {
        fn record(&self, event: &Event) {
            self.journal
                .lock()
                .unwrap()
                .push((self.label, event.kind()));
        }
    }

    #[test]
    fn multi_delivers_each_event_to_every_sink_in_order() {
        let journal = Arc::new(Mutex::new(Vec::new()));
        let multi = MultiRecorder::new(vec![
            Arc::new(TagSink {
                label: "a",
                journal: journal.clone(),
            }),
            Arc::new(TagSink {
                label: "b",
                journal: journal.clone(),
            }),
        ]);
        multi.record(&Event::Counter {
            name: "threads",
            value: 2,
        });
        multi.record(&Event::Progress {
            phase: "states",
            done: 1,
            total: 2,
        });
        multi.record(&Event::RunSummary {
            formulas: 1,
            failures: 0,
        });
        // Fan-out is depth-first per event: both sinks see event N before
        // either sees event N+1, and sinks are visited in construction
        // order — so trace/metrics/profile sinks observe identical
        // streams.
        assert_eq!(
            *journal.lock().unwrap(),
            vec![
                ("a", "counter"),
                ("b", "counter"),
                ("a", "progress"),
                ("b", "progress"),
                ("a", "run_summary"),
                ("b", "run_summary"),
            ]
        );
    }

    #[test]
    fn null_recorder_reports_disabled() {
        assert!(!NullRecorder.is_enabled());
        NullRecorder.record(&Event::RunSummary {
            formulas: 0,
            failures: 0,
        });
    }
}
