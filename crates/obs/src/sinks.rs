//! Recorder sinks: the no-op recorder, the JSONL trace writer, the stderr
//! progress printer, and the fan-out combinator.

use std::fmt::Write as _;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::Recorder;

/// The explicit no-op sink.
///
/// Installing `NullRecorder` is equivalent to installing no recorder at
/// all: [`record`](crate::record) still short-circuits on the thread-local
/// enabled flag *before* constructing the event, so the disabled hot path
/// costs one `Cell` read and nothing else. The type exists so callers can
/// treat "no telemetry" as just another sink (e.g. the determinism
/// property test swaps it against the trace sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &Event) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// Streams every event as one JSON object per line (JSONL) to a file.
///
/// Each line is `{"seq":N,"kind":"...",...}` with `seq` increasing from 0.
/// The writer is buffered; [`flush`](Recorder::flush) (also called on
/// drop) pushes everything to disk.
#[derive(Debug)]
pub struct JsonlTraceRecorder {
    inner: Mutex<TraceInner>,
}

#[derive(Debug)]
struct TraceInner {
    seq: u64,
    out: BufWriter<std::fs::File>,
}

impl JsonlTraceRecorder {
    /// Create (truncate) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlTraceRecorder {
            inner: Mutex::new(TraceInner {
                seq: 0,
                out: BufWriter::new(file),
            }),
        })
    }
}

impl Recorder for JsonlTraceRecorder {
    fn record(&self, event: &Event) {
        let mut inner = self.inner.lock().expect("trace lock");
        let mut line = String::with_capacity(96);
        write!(
            line,
            "{{\"seq\":{},\"kind\":\"{}\"",
            inner.seq,
            event.kind()
        )
        .unwrap();
        event.write_json_fields(&mut line);
        line.push_str("}\n");
        inner.seq += 1;
        // Trace I/O errors must never abort a checking run; drop the line.
        let _ = inner.out.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.inner.lock().expect("trace lock").out.flush();
    }
}

impl Drop for JsonlTraceRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Prints a short progress line to stderr for every [`Event::Progress`]
/// it sees (emission sites throttle by count, so the line rate is bounded
/// by construction, not by wall clock).
#[derive(Debug, Default, Clone, Copy)]
pub struct ProgressRecorder;

impl Recorder for ProgressRecorder {
    fn record(&self, event: &Event) {
        if let Event::Progress { phase, done, total } = event {
            eprintln!("mrmc: progress: {phase} {done}/{total}");
        }
    }
}

/// Fans every event out to several sinks (metrics + trace + progress in
/// one run).
pub struct MultiRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl MultiRecorder {
    /// Combine `sinks`; events are delivered in the given order.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        MultiRecorder { sinks }
    }
}

impl std::fmt::Debug for MultiRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MultiRecorder({} sinks)", self.sinks.len())
    }
}

impl Recorder for MultiRecorder {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRecorder;

    #[test]
    fn trace_writes_seq_numbered_jsonl() {
        let path =
            std::env::temp_dir().join(format!("mrmc-obs-trace-{}.jsonl", std::process::id()));
        let trace = JsonlTraceRecorder::create(&path).unwrap();
        trace.record(&Event::Counter {
            name: "a",
            value: 1,
        });
        trace.record(&Event::RunSummary {
            formulas: 1,
            failures: 0,
        });
        trace.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].starts_with("{\"seq\":0,\"kind\":\"counter\""),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with("{\"seq\":1,\"kind\":\"run_summary\""),
            "{}",
            lines[1]
        );
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_fans_out() {
        let a = Arc::new(MetricsRecorder::new());
        let b = Arc::new(MetricsRecorder::new());
        let multi = MultiRecorder::new(vec![a.clone(), b.clone()]);
        multi.record(&Event::Progress {
            phase: "states",
            done: 1,
            total: 2,
        });
        assert_eq!(a.snapshot().progress_events, 1);
        assert_eq!(b.snapshot().progress_events, 1);
    }

    #[test]
    fn null_recorder_reports_disabled() {
        assert!(!NullRecorder.is_enabled());
        NullRecorder.record(&Event::RunSummary {
            formulas: 0,
            failures: 0,
        });
    }
}
