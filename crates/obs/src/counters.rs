//! Well-known [`Event::Counter`](crate::Event::Counter) names.
//!
//! `Counter` events carry a free-form `&'static str` name, but the
//! counters the engines actually emit are part of the workspace's
//! observable surface: they appear in `--metrics` tables, in JSONL
//! traces, and in the committed `BENCH_*.json` snapshots, and they are
//! documented in `docs/USAGE.md` (a doc-sync test keeps the table in
//! step with [`COUNTER_NAMES`]). Emitters reference these constants
//! instead of repeating string literals so the name can never drift from
//! the documentation.
//!
//! Counters are merged by **maximum** in
//! [`RunMetrics`](crate::RunMetrics), so emitters report cumulative
//! totals and may safely re-emit.

/// Number of color classes the multicolor Gauss–Seidel solver partitioned
/// the system's rows into (emitted once per solve).
pub const SOLVER_COLORS: &str = "solver_colors";

/// Cumulative Omega-term cache hits: per-class conditional probabilities
/// `Ω(r', k)` served from an installed cache instead of being recomputed
/// by the Omega recursion.
pub const OMEGA_CACHE_HITS: &str = "omega_cache_hits";

/// Every counter name the engines emit, for doc-sync and validation.
pub const COUNTER_NAMES: &[&str] = &[SOLVER_COLORS, OMEGA_CACHE_HITS];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_identifier_like() {
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{name}"
            );
            assert!(!COUNTER_NAMES[..i].contains(name), "duplicate {name}");
        }
    }
}
