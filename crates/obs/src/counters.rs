//! Well-known [`Event::Counter`](crate::Event::Counter) names.
//!
//! `Counter` events carry a free-form `&'static str` name, but the
//! counters the engines actually emit are part of the workspace's
//! observable surface: they appear in `--metrics` tables, in JSONL
//! traces, and in the committed `BENCH_*.json` snapshots, and they are
//! documented in `docs/USAGE.md` (a doc-sync test keeps the table in
//! step with [`COUNTER_NAMES`]). Emitters reference these constants
//! instead of repeating string literals so the name can never drift from
//! the documentation.
//!
//! Counters are merged by **maximum** in
//! [`RunMetrics`](crate::RunMetrics), so emitters report cumulative
//! totals and may safely re-emit.

/// Number of color classes the multicolor Gauss–Seidel solver partitioned
/// the system's rows into (emitted once per solve).
pub const SOLVER_COLORS: &str = "solver_colors";

/// Cumulative Omega-term cache hits: per-class conditional probabilities
/// `Ω(r', k)` served from an installed cache instead of being recomputed
/// by the Omega recursion.
pub const OMEGA_CACHE_HITS: &str = "omega_cache_hits";

/// Cumulative memoized-`Sat` cache hits over a session's lifetime:
/// engine-backed subformulas (`S`/`P` operators) whose full result —
/// probabilities, verdicts, budgets — was served from the session cache
/// keyed by `(model_hash, subformula, options)` instead of re-running the
/// engines.
pub const SAT_CACHE_HITS: &str = "sat_cache_hits";

/// Cumulative memoized-`Sat` cache misses: engine-backed subformulas that
/// had to be computed and were then stored for later requests.
pub const SAT_CACHE_MISSES: &str = "sat_cache_misses";

/// Cumulative lumping-certificate cache hits: `(model, formula)` pairs
/// whose verified certificate (or the verified absence of a nontrivial
/// quotient) was reused from the session instead of re-running partition
/// refinement.
pub const CERT_CACHE_HITS: &str = "cert_cache_hits";

/// Distinct model contents parsed into a session so far: a reload of
/// unchanged files is served from the load-once store and does not bump
/// this counter, while changed content (same path, different bytes) does.
pub const MODELS_LOADED: &str = "models_loaded";

/// Number of SCCs the qualitative dataflow pass found in the model's rate
/// graph (Tarjan condensation, computed once per model hash).
pub const SCC_COUNT: &str = "scc_count";

/// States the qualitative analysis proved to satisfy the current until
/// operator with probability exactly 0 (the certain-zero set).
pub const QUAL_ZERO_STATES: &str = "qual_zero_states";

/// States the qualitative analysis proved to satisfy the current until
/// operator with probability exactly 1 (the certain-one set; for bounded
/// operators conservatively the goal states themselves).
pub const QUAL_ONE_STATES: &str = "qual_one_states";

/// States formula-driven slicing removed from the numerical solve beyond
/// the engines' own dead-state skip: certain-zero invariant states and
/// certain-one non-goal states, pre-assigned their exact 0/1 verdicts.
pub const SLICE_STATES_REMOVED: &str = "slice_states_removed";

/// Every counter name the engines emit, for doc-sync and validation.
pub const COUNTER_NAMES: &[&str] = &[
    SOLVER_COLORS,
    OMEGA_CACHE_HITS,
    SAT_CACHE_HITS,
    SAT_CACHE_MISSES,
    CERT_CACHE_HITS,
    MODELS_LOADED,
    SCC_COUNT,
    QUAL_ZERO_STATES,
    QUAL_ONE_STATES,
    SLICE_STATES_REMOVED,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_identifier_like() {
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{name}"
            );
            assert!(!COUNTER_NAMES[..i].contains(name), "duplicate {name}");
        }
    }
}
