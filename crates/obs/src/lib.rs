//! Hermetic telemetry substrate for the `mrmc` workspace.
//!
//! Every numerical layer of the checker — the sparse solvers, the Poisson
//! windows, the uniformization path exploration, the Omega recursion, the
//! discretization grid, the adaptive driver, the lumping refinement —
//! emits typed [`Event`]s through a thread-local, dynamically scoped
//! [`Recorder`]. The provided sinks:
//!
//! * [`NullRecorder`] — the no-op (equivalently: install nothing at all);
//! * [`MetricsRecorder`] — aggregates the stream into a [`RunMetrics`]
//!   snapshot (the CLI's `--metrics` table / JSON object);
//! * [`JsonlTraceRecorder`] — streams every event as one JSON line to a
//!   file (the CLI's `--trace <file>`);
//! * [`ProfileRecorder`] — folds the span stream into a hierarchical
//!   self/total wall-time tree with per-phase latency histograms (the
//!   CLI's `--profile [FILE]`).
//!
//! # The determinism contract
//!
//! Instrumentation is **observation-only**: emitting events never reorders
//! a floating-point operation, takes a different branch, or perturbs a
//! seed, so verdicts, probabilities, and error budgets are bit-for-bit
//! identical whether recording is on or off, at every thread count.
//! Concretely:
//!
//! * emission sites only *read* values the engines computed anyway;
//! * parallel workers never emit from their own threads — per-subtree
//!   counters are reported by the coordinator during the deterministic
//!   ordered replay, so even the trace's event order is reproducible;
//! * wall-clock data appears only in [`Event::Span`] payloads (and the
//!   `phases` map of [`RunMetrics`]) — never in anything a verdict
//!   depends on.
//!
//! # The disabled hot path
//!
//! [`record`] takes a *closure*: when no recorder is installed the call is
//! one thread-local `Cell` read and the event is never even constructed,
//! so instrumenting a hot loop costs nothing in the default configuration.
//!
//! ```
//! use std::sync::Arc;
//! use mrmc_obs::{record, with_recorder, Event, MetricsRecorder};
//!
//! let metrics = Arc::new(MetricsRecorder::new());
//! with_recorder(metrics.clone(), || {
//!     record(|| Event::Counter { name: "widgets", value: 3 });
//! });
//! assert_eq!(metrics.snapshot().counters["widgets"], 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
mod event;
pub mod hist;
pub mod json;
mod metrics;
mod profile;
mod sinks;

pub use event::{Event, EVENT_KINDS};
pub use hist::Histogram;
pub use metrics::{MetricsRecorder, RunMetrics};
pub use profile::{ProfileNode, ProfileRecorder, ProfileReport};
pub use sinks::{JsonlTraceRecorder, MultiRecorder, NullRecorder, ProgressRecorder};

use std::cell::{Cell, RefCell};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A telemetry sink: receives every [`Event`] emitted while it is
/// installed (see [`with_recorder`]).
///
/// Implementations must be cheap and must never panic on any event — a
/// sink failure must not break a checking run.
pub trait Recorder: Send + Sync {
    /// Consume one event.
    fn record(&self, event: &Event);

    /// Push any buffered output (trace files) to its destination.
    fn flush(&self) {}

    /// `false` for sinks that ignore everything ([`NullRecorder`]):
    /// installing such a sink keeps the fast no-op path.
    fn is_enabled(&self) -> bool {
        true
    }
}

thread_local! {
    static RECORDER: RefCell<Option<Arc<dyn Recorder>>> = const { RefCell::new(None) };
    static ENABLED: Cell<bool> = const { Cell::new(false) };
}

/// Install `recorder` as this thread's sink for the duration of `f`.
///
/// Scoping is dynamic and re-entrant: nested calls shadow the outer
/// recorder and restore it on exit (also on unwind). The recorder is
/// thread-local on purpose — engine worker threads spawned *inside* the
/// scope see no recorder and stay on the free no-op path, which is what
/// the determinism contract requires (only coordinators emit).
pub fn with_recorder<T>(recorder: Arc<dyn Recorder>, f: impl FnOnce() -> T) -> T {
    struct Restore {
        previous: Option<Arc<dyn Recorder>>,
        was_enabled: bool,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            RECORDER.with(|r| *r.borrow_mut() = self.previous.take());
            ENABLED.with(|e| e.set(self.was_enabled));
        }
    }
    let enabled = recorder.is_enabled();
    let restore = Restore {
        previous: RECORDER.with(|r| r.borrow_mut().replace(recorder)),
        was_enabled: ENABLED.with(Cell::get),
    };
    ENABLED.with(|e| e.set(enabled));
    let out = f();
    drop(restore);
    out
}

/// `true` when a (non-null) recorder is installed on this thread.
///
/// Emission sites can use this to skip *computing* expensive event inputs,
/// not just constructing the event.
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Emit one event to the installed recorder, if any.
///
/// The closure runs only when recording is enabled, so building the event
/// (allocation included) is free on the disabled path.
pub fn record(make: impl FnOnce() -> Event) {
    if !enabled() {
        return;
    }
    let event = make();
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow().as_ref() {
            rec.record(&event);
        }
    });
}

/// Ask the installed recorder to flush buffered output.
pub fn flush() {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow().as_ref() {
            rec.flush();
        }
    });
}

/// The process-wide profiling origin: pinned to the start instant of the
/// first span ever constructed, so every span's `end_s` is non-negative
/// and all spans of one process share a single timeline.
static ORIGIN: OnceLock<Instant> = OnceLock::new();

/// A phase timer: records an [`Event::Span`] with the elapsed wall-clock
/// seconds and the close timestamp (seconds since the process-wide
/// origin) when dropped. Inert (no clock read at all) when recording is
/// disabled at construction time.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let end = Instant::now();
            let seconds = end.duration_since(start).as_secs_f64();
            // The origin was pinned no later than `start`, so this is a
            // saturating-at-zero subtraction only in theory.
            let end_s = end
                .duration_since(*ORIGIN.get_or_init(|| start))
                .as_secs_f64();
            record(|| Event::Span {
                name: self.name,
                seconds,
                end_s,
            });
        }
    }
}

/// Start timing a named phase; the span reports itself when dropped.
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: enabled().then(|| {
            let now = Instant::now();
            ORIGIN.get_or_init(|| now);
            now
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_path_never_builds_events() {
        let mut built = false;
        record(|| {
            built = true;
            Event::RunSummary {
                formulas: 0,
                failures: 0,
            }
        });
        assert!(!built, "event closure ran without a recorder");
        assert!(!enabled());
    }

    #[test]
    fn scoped_install_and_restore() {
        let outer = Arc::new(MetricsRecorder::new());
        let inner = Arc::new(MetricsRecorder::new());
        with_recorder(outer.clone(), || {
            assert!(enabled());
            record(|| Event::Counter {
                name: "outer",
                value: 1,
            });
            with_recorder(inner.clone(), || {
                record(|| Event::Counter {
                    name: "inner",
                    value: 1,
                });
            });
            record(|| Event::Counter {
                name: "outer",
                value: 2,
            });
        });
        assert!(!enabled(), "recorder leaked past its scope");
        assert_eq!(outer.snapshot().counters["outer"], 2);
        assert!(!outer.snapshot().counters.contains_key("inner"));
        assert_eq!(inner.snapshot().counters["inner"], 1);
    }

    #[test]
    fn null_recorder_keeps_the_fast_path() {
        with_recorder(Arc::new(NullRecorder), || {
            assert!(!enabled(), "null sink must not enable recording");
            let mut built = false;
            record(|| {
                built = true;
                Event::RunSummary {
                    formulas: 0,
                    failures: 0,
                }
            });
            assert!(!built);
        });
    }

    #[test]
    fn spans_report_on_drop() {
        let metrics = Arc::new(MetricsRecorder::new());
        with_recorder(metrics.clone(), || {
            let _s = span("phase_a");
        });
        let snap = metrics.snapshot();
        let (count, secs) = snap.phases["phase_a"];
        assert_eq!(count, 1);
        assert!(secs >= 0.0);
    }

    #[test]
    fn worker_threads_do_not_inherit_the_recorder() {
        let metrics = Arc::new(MetricsRecorder::new());
        with_recorder(metrics.clone(), || {
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    assert!(!enabled(), "recorder crossed a thread boundary");
                    record(|| Event::Counter {
                        name: "worker",
                        value: 1,
                    });
                });
            });
        });
        assert!(metrics.snapshot().counters.is_empty());
    }
}
