//! In-memory aggregation: [`MetricsRecorder`] folds the event stream into
//! a [`RunMetrics`] snapshot.
//!
//! Aggregation is *monotone*: counts add up, extrema take the maximum (or
//! minimum, for the Poisson left point), so merging the same events in any
//! grouping yields the same snapshot. Wall-clock data is confined to the
//! [`phases`](RunMetrics::phases) map — every other field is a
//! deterministic function of the (deterministic) event stream.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::event::Event;
use crate::json::{push_f64, push_str};
use crate::Recorder;

/// Aggregated work counters for one run (or one formula), produced by
/// [`MetricsRecorder`].
///
/// All fields are plain data; `Default` is the all-zero snapshot. The JSON
/// rendering ([`to_json`](Self::to_json)) always contains every key, zero
/// or not, so consumers can rely on the shape.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunMetrics {
    /// Linear solves completed.
    pub solver_solves: u64,
    /// Gauss–Seidel sweeps across all solves.
    pub solver_iterations: u64,
    /// Final residual of the last completed solve.
    pub solver_last_residual: f64,
    /// Fox–Glynn windows computed.
    pub poisson_windows: u64,
    /// Smallest left truncation point seen (0 when no window was computed).
    pub poisson_left: u64,
    /// Largest right truncation point seen.
    pub poisson_right: u64,
    /// Largest requested tail bound.
    pub poisson_tail_bound: f64,
    /// Path-tree nodes visited by the uniformization engine.
    pub nodes_explored: u64,
    /// Paths generated (stored into reward-count classes).
    pub paths_generated: u64,
    /// Paths pruned by the truncation rule.
    pub paths_pruned: u64,
    /// Deepest path expanded.
    pub path_max_depth: u64,
    /// Distinct `(k, j)` classes accumulated.
    pub path_classes: u64,
    /// Largest Eq. 4.6 truncated mass of any exploration.
    pub truncated_mass: f64,
    /// Parallel subtree tasks replayed.
    pub parallel_tasks: u64,
    /// Omega conditional probabilities requested.
    pub omega_requests: u64,
    /// Omega memo-table entries (summed over evaluators).
    pub omega_cache_entries: u64,
    /// Deepest Omega recursion.
    pub omega_max_depth: u64,
    /// Discretization runs (including Richardson companion runs).
    pub grid_runs: u64,
    /// Time steps evolved, summed over runs.
    pub grid_time_steps: u64,
    /// Largest reward-cell count of any grid.
    pub grid_reward_cells: u64,
    /// Adaptive-driver attempts.
    pub adaptive_attempts: u64,
    /// Lumping refinement rounds, summed over analyses.
    pub lumping_rounds: u64,
    /// Progress events observed.
    pub progress_events: u64,
    /// Per-phase wall-clock: name → (times entered, total seconds).
    pub phases: BTreeMap<&'static str, (u64, f64)>,
    /// Named monotone counters, merged by maximum.
    pub counters: BTreeMap<&'static str, u64>,
}

impl RunMetrics {
    /// Fold one event into the snapshot.
    pub fn observe(&mut self, event: &Event) {
        match event {
            Event::SolverSweep { .. } => self.solver_iterations += 1,
            Event::SolverDone { residual, .. } => {
                self.solver_solves += 1;
                self.solver_last_residual = *residual;
            }
            Event::PoissonWindow {
                left,
                right,
                tail_bound,
                ..
            } => {
                self.poisson_left = if self.poisson_windows == 0 {
                    *left
                } else {
                    self.poisson_left.min(*left)
                };
                self.poisson_windows += 1;
                self.poisson_right = self.poisson_right.max(*right);
                self.poisson_tail_bound = self.poisson_tail_bound.max(*tail_bound);
            }
            Event::PathExploration {
                explored_nodes,
                stored_paths,
                truncated_paths,
                max_depth,
                num_classes,
                truncated_mass,
                ..
            } => {
                self.nodes_explored += explored_nodes;
                self.paths_generated += stored_paths;
                self.paths_pruned += truncated_paths;
                self.path_max_depth = self.path_max_depth.max(*max_depth);
                self.path_classes += num_classes;
                self.truncated_mass = self.truncated_mass.max(*truncated_mass);
            }
            Event::ParallelTask { .. } => self.parallel_tasks += 1,
            Event::OmegaTable {
                requests,
                cache_entries,
                max_recursion_depth,
                ..
            } => {
                self.omega_requests += requests;
                self.omega_cache_entries += cache_entries;
                self.omega_max_depth = self.omega_max_depth.max(*max_recursion_depth);
            }
            Event::DiscretizationGrid {
                time_steps,
                reward_cells,
                ..
            } => {
                self.grid_runs += 1;
                self.grid_time_steps += time_steps;
                self.grid_reward_cells = self.grid_reward_cells.max(*reward_cells);
            }
            Event::AdaptiveAttempt { .. } => self.adaptive_attempts += 1,
            Event::LumpingRefinement { rounds, .. } => self.lumping_rounds += rounds,
            Event::Progress { .. } => self.progress_events += 1,
            Event::Span { name, seconds, .. } => {
                let slot = self.phases.entry(name).or_insert((0, 0.0));
                slot.0 += 1;
                slot.1 += seconds;
            }
            Event::Counter { name, value } => {
                let slot = self.counters.entry(name).or_insert(0);
                *slot = (*slot).max(*value);
            }
            Event::RunSummary { .. } => {}
        }
    }

    /// Render the snapshot as one JSON object with a fixed key set and
    /// order (the golden-shape contract pinned by the CLI tests).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let counts: [(&str, u64); 18] = [
            ("solver_solves", self.solver_solves),
            ("solver_iterations", self.solver_iterations),
            ("poisson_windows", self.poisson_windows),
            ("poisson_left", self.poisson_left),
            ("poisson_right", self.poisson_right),
            ("nodes_explored", self.nodes_explored),
            ("paths_generated", self.paths_generated),
            ("paths_pruned", self.paths_pruned),
            ("path_max_depth", self.path_max_depth),
            ("path_classes", self.path_classes),
            ("parallel_tasks", self.parallel_tasks),
            ("omega_requests", self.omega_requests),
            ("omega_cache_entries", self.omega_cache_entries),
            ("omega_max_depth", self.omega_max_depth),
            ("grid_runs", self.grid_runs),
            ("grid_time_steps", self.grid_time_steps),
            ("grid_reward_cells", self.grid_reward_cells),
            ("adaptive_attempts", self.adaptive_attempts),
        ];
        for (name, v) in counts {
            write!(s, "\"{name}\":{v},").unwrap();
        }
        for (name, v) in [
            ("solver_last_residual", self.solver_last_residual),
            ("poisson_tail_bound", self.poisson_tail_bound),
            ("truncated_mass", self.truncated_mass),
        ] {
            write!(s, "\"{name}\":").unwrap();
            push_f64(&mut s, v);
            s.push(',');
        }
        write!(
            s,
            "\"lumping_rounds\":{},\"progress_events\":{},",
            self.lumping_rounds, self.progress_events
        )
        .unwrap();
        s.push_str("\"phases\":{");
        for (i, (name, (count, secs))) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_str(&mut s, name);
            write!(s, ":{{\"count\":{count},\"seconds\":").unwrap();
            push_f64(&mut s, *secs);
            s.push('}');
        }
        s.push_str("},\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_str(&mut s, name);
            write!(s, ":{value}").unwrap();
        }
        s.push_str("}}");
        s
    }

    /// Human-readable `(label, value)` rows for the non-zero metrics, in
    /// a stable order — the CLI's `--metrics` table.
    pub fn table_rows(&self) -> Vec<(String, String)> {
        let mut rows = Vec::new();
        let counts = [
            ("paths generated", self.paths_generated),
            ("paths pruned", self.paths_pruned),
            ("nodes explored", self.nodes_explored),
            ("path classes", self.path_classes),
            ("max path depth", self.path_max_depth),
            ("parallel tasks", self.parallel_tasks),
            ("omega requests", self.omega_requests),
            ("omega cache entries", self.omega_cache_entries),
            ("omega max depth", self.omega_max_depth),
            ("poisson windows", self.poisson_windows),
        ];
        for (label, v) in counts {
            if v > 0 {
                rows.push((label.to_owned(), v.to_string()));
            }
        }
        if self.poisson_windows > 0 {
            rows.push((
                "poisson window".to_owned(),
                format!("[{}, {}]", self.poisson_left, self.poisson_right),
            ));
        }
        let counts = [
            ("solver solves", self.solver_solves),
            ("solver iterations", self.solver_iterations),
            ("grid runs", self.grid_runs),
            ("grid time steps", self.grid_time_steps),
            ("grid reward cells", self.grid_reward_cells),
            ("adaptive attempts", self.adaptive_attempts),
            ("lumping rounds", self.lumping_rounds),
        ];
        for (label, v) in counts {
            if v > 0 {
                rows.push((label.to_owned(), v.to_string()));
            }
        }
        if self.truncated_mass > 0.0 {
            rows.push((
                "truncated mass".to_owned(),
                format!("{:e}", self.truncated_mass),
            ));
        }
        for (name, (n, secs)) in &self.phases {
            rows.push((format!("phase {name}"), format!("{secs:.6} s (x{n})")));
        }
        for (name, value) in &self.counters {
            rows.push(((*name).to_owned(), value.to_string()));
        }
        rows
    }
}

/// A [`Recorder`] that aggregates the event stream into [`RunMetrics`].
///
/// Thread-safe; [`take`](Self::take) returns the snapshot accumulated
/// since the last call and resets, which is how the CLI scopes metrics to
/// one formula.
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    inner: Mutex<RunMetrics>,
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    /// Clone the current snapshot without resetting.
    pub fn snapshot(&self) -> RunMetrics {
        self.inner.lock().expect("metrics lock").clone()
    }

    /// Return the accumulated snapshot and reset to zero.
    pub fn take(&self) -> RunMetrics {
        std::mem::take(&mut *self.inner.lock().expect("metrics lock"))
    }
}

impl Recorder for MetricsRecorder {
    fn record(&self, event: &Event) {
        self.inner.lock().expect("metrics lock").observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_is_monotone_and_shaped() {
        let m = MetricsRecorder::new();
        m.record(&Event::PathExploration {
            start_state: 0,
            explored_nodes: 10,
            stored_paths: 4,
            truncated_paths: 6,
            max_depth: 3,
            num_classes: 2,
            truncated_mass: 1e-9,
        });
        m.record(&Event::PathExploration {
            start_state: 1,
            explored_nodes: 5,
            stored_paths: 2,
            truncated_paths: 1,
            max_depth: 7,
            num_classes: 1,
            truncated_mass: 1e-12,
        });
        m.record(&Event::PoissonWindow {
            lambda_t: 5.0,
            left: 2,
            right: 20,
            tail_bound: 1e-10,
        });
        m.record(&Event::PoissonWindow {
            lambda_t: 50.0,
            left: 10,
            right: 90,
            tail_bound: 1e-10,
        });
        m.record(&Event::Span {
            name: "engine",
            seconds: 0.5,
            end_s: 0.5,
        });
        m.record(&Event::Counter {
            name: "threads",
            value: 4,
        });
        m.record(&Event::Counter {
            name: "threads",
            value: 2,
        });
        let s = m.snapshot();
        assert_eq!(s.paths_generated, 6);
        assert_eq!(s.paths_pruned, 7);
        assert_eq!(s.path_max_depth, 7);
        assert_eq!(s.poisson_left, 2);
        assert_eq!(s.poisson_right, 90);
        assert_eq!(s.truncated_mass, 1e-9);
        assert_eq!(s.counters["threads"], 4, "counters merge by max");
        assert_eq!(s.phases["engine"].0, 1);

        let json = s.to_json();
        for key in [
            "\"paths_generated\":6",
            "\"paths_pruned\":7",
            "\"poisson_left\":2",
            "\"poisson_right\":90",
            "\"solver_iterations\":0",
            "\"grid_time_steps\":0",
            "\"adaptive_attempts\":0",
            "\"phases\":{\"engine\":{\"count\":1,\"seconds\":",
            "\"counters\":{\"threads\":4}",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }

        let taken = m.take();
        assert_eq!(taken.paths_generated, 6);
        assert_eq!(m.snapshot(), RunMetrics::default(), "take resets");
    }

    #[test]
    fn empty_json_still_has_every_key() {
        let json = RunMetrics::default().to_json();
        for key in [
            "solver_solves",
            "solver_iterations",
            "poisson_left",
            "poisson_right",
            "paths_generated",
            "paths_pruned",
            "grid_reward_cells",
            "adaptive_attempts",
            "lumping_rounds",
            "phases",
            "counters",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        assert!(RunMetrics::default().table_rows().is_empty());
    }
}
