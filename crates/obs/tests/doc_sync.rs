//! Doc-sync guard: every well-known counter name the engines emit
//! ([`mrmc_obs::counters::COUNTER_NAMES`]) must be documented in the
//! telemetry counter table of `docs/USAGE.md`. Counters surface in
//! `--metrics` tables, JSONL traces, and the committed `BENCH_*.json`
//! snapshots — shipping an undocumented one is a bug, so this test fails
//! the build until the table is updated.

use std::path::Path;

#[test]
fn every_counter_name_is_documented_in_usage_md() {
    assert!(
        !mrmc_obs::counters::COUNTER_NAMES.is_empty(),
        "counter registry is empty — the scan below would pass vacuously"
    );

    let usage = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/USAGE.md");
    let usage = std::fs::read_to_string(usage).expect("docs/USAGE.md exists");

    let undocumented: Vec<&&str> = mrmc_obs::counters::COUNTER_NAMES
        .iter()
        .filter(|name| !usage.contains(&format!("`{name}`")))
        .collect();
    assert!(
        undocumented.is_empty(),
        "counter names missing from the docs/USAGE.md telemetry table: {undocumented:?}"
    );
}
