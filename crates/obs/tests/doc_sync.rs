//! Doc-sync guard: every well-known counter name the engines emit
//! ([`mrmc_obs::counters::COUNTER_NAMES`]) must be documented in the
//! telemetry counter table of `docs/USAGE.md`. Counters surface in
//! `--metrics` tables, JSONL traces, and the committed `BENCH_*.json`
//! snapshots — shipping an undocumented one is a bug, so this test fails
//! the build until the table is updated.

use std::path::Path;

/// The wall-time observability surface — the `--profile` flag, the
/// pinned timing fields, the server latency stats, and the Prometheus
/// exposition family names — is a stable interface like the counter
/// table; docs/USAGE.md must name every piece of it.
#[test]
fn the_timing_observability_surface_is_documented_in_usage_md() {
    let usage = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/USAGE.md");
    let usage = std::fs::read_to_string(usage).expect("docs/USAGE.md exists");

    let undocumented: Vec<&&str> = [
        "--profile",
        "bench diff",
        "elapsed_s",
        "phase_times",
        "total_s",
        "self_s",
        "uptime_s",
        "sat_hit_ratio",
        "slow request",
        "mrmc_uptime_seconds",
        "mrmc_request_seconds",
    ]
    .iter()
    .filter(|needle| !usage.contains(**needle))
    .collect();
    assert!(
        undocumented.is_empty(),
        "timing-surface names missing from docs/USAGE.md: {undocumented:?}"
    );
}

#[test]
fn every_counter_name_is_documented_in_usage_md() {
    assert!(
        !mrmc_obs::counters::COUNTER_NAMES.is_empty(),
        "counter registry is empty — the scan below would pass vacuously"
    );

    let usage = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/USAGE.md");
    let usage = std::fs::read_to_string(usage).expect("docs/USAGE.md exists");

    let undocumented: Vec<&&str> = mrmc_obs::counters::COUNTER_NAMES
        .iter()
        .filter(|name| !usage.contains(&format!("`{name}`")))
        .collect();
    assert!(
        undocumented.is_empty(),
        "counter names missing from the docs/USAGE.md telemetry table: {undocumented:?}"
    );
}
