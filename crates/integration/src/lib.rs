//! Carrier crate for the workspace-level integration tests (`tests/`) and
//! examples (`examples/`) at the repository root.
//!
//! The test and example sources live outside the crate directory (see the
//! `[[test]]`/`[[example]]` path entries in `Cargo.toml`), matching the
//! repository layout described in `DESIGN.md`. The crate itself exports
//! nothing.

#![forbid(unsafe_code)]
