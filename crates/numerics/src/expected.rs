//! Expected accumulated reward `E[Y(t)]` by uniformization.
//!
//! A standard companion measure to the distribution `Pr{Y(t) ≤ r}` the
//! thesis computes: the *mean* of the performability variable, covering
//! both reward kinds,
//!
//! ```text
//! E[Y(t)] = Σ_s g(s) · ∫_0^t π_s(u) du,
//! g(s)    = ρ(s) + Σ_{s'} R(s, s') · ι(s, s'),
//! ```
//!
//! since residing in `s` earns rate reward `ρ(s)` and generates impulse
//! reward at expected rate `Σ R(s,s')·ι(s,s')`. The integral of the
//! transient distribution follows from uniformization:
//!
//! ```text
//! ∫_0^t p(u) du = (1/Λ) · Σ_{n≥0} Pr{N_{Λt} ≥ n+1} · p(0)·P^n.
//! ```

use mrmc_ctmc::poisson;
use mrmc_mrm::Mrm;

use crate::error::NumericsError;

/// Compute `E[Y(t)]` from the distribution `initial`, truncating the
/// uniformization sum once the remaining Poisson mass is below `epsilon`.
///
/// ```
/// use mrmc_numerics::expected::expected_accumulated_reward;
///
/// // A single always-on state earning 3 per hour: E[Y(2)] = 6.
/// let ctmc = mrmc_ctmc::CtmcBuilder::new(1).build()?;
/// let mrm = mrmc_mrm::Mrm::new(
///     ctmc,
///     mrmc_mrm::StateRewards::new(vec![3.0])?,
///     mrmc_mrm::ImpulseRewards::new(),
/// )?;
/// let e = expected_accumulated_reward(&mrm, &[1.0], 2.0, 1e-10)?;
/// assert!((e - 6.0).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// [`NumericsError`] for a wrong-length initial distribution or invalid
/// parameters.
pub fn expected_accumulated_reward(
    mrm: &Mrm,
    initial: &[f64],
    t: f64,
    epsilon: f64,
) -> Result<f64, NumericsError> {
    let n = mrm.num_states();
    if initial.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: initial.len(),
        });
    }
    if !(t.is_finite() && t >= 0.0) {
        return Err(NumericsError::InvalidParameter {
            name: "t",
            value: t,
            requirement: "must be finite and non-negative",
        });
    }
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(NumericsError::InvalidParameter {
            name: "epsilon",
            value: epsilon,
            requirement: "must be in (0, 1)",
        });
    }
    if t == 0.0 {
        return Ok(0.0);
    }

    // Total reward-generation rate per state.
    let gain: Vec<f64> = (0..n)
        .map(|s| {
            let impulse_rate: f64 = mrm
                .ctmc()
                .rates()
                .row(s)
                .map(|(target, rate)| rate * mrm.impulse_reward(s, target))
                .sum();
            mrm.state_reward(s) + impulse_rate
        })
        .collect();

    let (uni, lambda) = mrm.ctmc().uniformized(None)?;
    let p = uni.probabilities();
    let lambda_t = lambda * t;

    let mut v = initial.to_vec();
    let mut total = 0.0;
    let mut step: u64 = 0;
    loop {
        // Weight of the n-th term: Pr{N ≥ n+1} / Λ. Also the remaining
        // contribution is bounded by t·max|g| times the same tail, so it
        // doubles as the truncation criterion.
        let tail = poisson::upper_tail(lambda_t, step + 1);
        if tail < epsilon {
            break;
        }
        let term: f64 = v.iter().zip(&gain).map(|(pv, g)| pv * g).sum();
        total += term * tail / lambda;
        v = p.vec_mul(&v);
        step += 1;
        // ∑ tail/Λ = t exactly, so the loop always terminates: the tail is
        // strictly decreasing beyond the mode.
        debug_assert!(step < 100_000_000, "runaway uniformization sum");
    }
    Ok(total)
}

/// The long-run reward rate `lim_{t→∞} E[Y(t)]/t = Σ_s g(s)·π(s)`, with
/// `π` the long-run state distribution from `initial` (BSCC-weighted for
/// reducible chains) and `g(s) = ρ(s) + Σ_{s'} R(s,s')·ι(s,s')` the total
/// reward-generation rate of state `s`.
///
/// # Errors
///
/// [`NumericsError`] for a wrong-length initial distribution or solver
/// failures.
pub fn long_run_reward_rate(
    mrm: &Mrm,
    initial: &[f64],
    solver: mrmc_sparse::solver::SolverOptions,
) -> Result<f64, NumericsError> {
    let n = mrm.num_states();
    if initial.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: initial.len(),
        });
    }
    let analysis = mrmc_ctmc::steady::SteadyStateAnalysis::new(mrm.ctmc(), solver)?;
    let mut rate = 0.0;
    for (start, &weight) in initial.iter().enumerate() {
        if weight == 0.0 {
            continue;
        }
        let pi = analysis.distribution_from(start);
        for (s, &p) in pi.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let impulse_rate: f64 = mrm
                .ctmc()
                .rates()
                .row(s)
                .map(|(target, r)| r * mrm.impulse_reward(s, target))
                .sum();
            rate += weight * p * (mrm.state_reward(s) + impulse_rate);
        }
    }
    Ok(rate)
}

/// Convenience: `E[Y(t)]` from a single start state.
///
/// # Errors
///
/// See [`expected_accumulated_reward`].
pub fn expected_accumulated_reward_from(
    mrm: &Mrm,
    start: usize,
    t: f64,
    epsilon: f64,
) -> Result<f64, NumericsError> {
    if start >= mrm.num_states() {
        return Err(NumericsError::SizeMismatch {
            expected: mrm.num_states(),
            found: start,
        });
    }
    let mut initial = vec![0.0; mrm.num_states()];
    initial[start] = 1.0;
    expected_accumulated_reward(mrm, &initial, t, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::{estimate_expected_reward, SimulationOptions};
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_mrm::{ImpulseRewards, StateRewards};

    #[test]
    fn single_state_is_linear_in_t() {
        let ctmc = CtmcBuilder::new(1).build().unwrap();
        let m = Mrm::new(
            ctmc,
            StateRewards::new(vec![3.0]).unwrap(),
            ImpulseRewards::new(),
        )
        .unwrap();
        for &t in &[0.0, 0.5, 2.0, 10.0] {
            let e = expected_accumulated_reward_from(&m, 0, t, 1e-12).unwrap();
            assert!((e - 3.0 * t).abs() < 1e-9, "t = {t}: {e}");
        }
    }

    #[test]
    fn pure_impulse_matches_jump_probability() {
        // 0 →(2) 1 absorbing with impulse 1: E[Y(t)] = 1 − e^{−2t}.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 2.0);
        let ctmc = b.build().unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(0, 1, 1.0).unwrap();
        let m = Mrm::new(ctmc, StateRewards::zero(2), iota).unwrap();
        for &t in &[0.1, 1.0, 3.0] {
            let e = expected_accumulated_reward_from(&m, 0, t, 1e-12).unwrap();
            let exact = 1.0 - (-2.0 * t).exp();
            assert!((e - exact).abs() < 1e-8, "t = {t}: {e} vs {exact}");
        }
    }

    #[test]
    fn rate_reward_on_absorbing_two_state_chain() {
        // 0 →(λ) 1, ρ = (a, b):
        // E[Y(t)] = b·t + (a − b)·(1 − e^{−λt})/λ.
        let (lambda, a, bb) = (1.5, 4.0, 1.0);
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, lambda);
        let ctmc = b.build().unwrap();
        let m = Mrm::new(
            ctmc,
            StateRewards::new(vec![a, bb]).unwrap(),
            ImpulseRewards::new(),
        )
        .unwrap();
        for &t in &[0.2, 1.0, 5.0] {
            let e = expected_accumulated_reward_from(&m, 0, t, 1e-13).unwrap();
            let exact = bb * t + (a - bb) * (1.0 - (-lambda * t).exp()) / lambda;
            assert!((e - exact).abs() < 1e-8, "t = {t}: {e} vs {exact}");
        }
    }

    #[test]
    fn agrees_with_simulation_on_the_wavelan_model() {
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 0.1);
        b.transition(1, 0, 0.05).transition(1, 2, 5.0);
        b.transition(2, 1, 12.0)
            .transition(2, 3, 1.5)
            .transition(2, 4, 0.75);
        b.transition(3, 2, 10.0);
        b.transition(4, 2, 15.0);
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![0.0, 80.0, 1319.0, 1675.0, 1425.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(0, 1, 0.02).unwrap();
        iota.set(1, 2, 0.32975).unwrap();
        iota.set(2, 3, 0.42545).unwrap();
        iota.set(2, 4, 0.36195).unwrap();
        let m = Mrm::new(ctmc, rho, iota).unwrap();

        let exact = expected_accumulated_reward_from(&m, 1, 2.0, 1e-12).unwrap();
        let sim =
            estimate_expected_reward(&m, 2.0, 1, SimulationOptions::with_samples(40_000)).unwrap();
        assert!(
            sim.is_consistent_with(exact, 4.5),
            "uniformization {exact} vs simulation {} ± {}",
            sim.mean,
            sim.std_error
        );
    }

    #[test]
    fn long_run_rate_of_a_two_state_chain() {
        // up(ρ=2) ↔ down(ρ=10), rates 1 and 3: π = (3/4, 1/4), plus the
        // repair impulse 8 on down→up at long-run frequency π_down·3.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(1, 0, 3.0);
        let ctmc = b.build().unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(1, 0, 8.0).unwrap();
        let m = Mrm::new(ctmc, StateRewards::new(vec![2.0, 10.0]).unwrap(), iota).unwrap();
        let rate = long_run_reward_rate(&m, &[1.0, 0.0], mrmc_sparse::solver::SolverOptions::new())
            .unwrap();
        let exact = 0.75 * 2.0 + 0.25 * 10.0 + 0.25 * 3.0 * 8.0;
        assert!((rate - exact).abs() < 1e-8, "{rate} vs {exact}");
    }

    #[test]
    fn long_run_rate_matches_expected_reward_slope() {
        // For an irreducible chain, E[Y(t)]/t converges to the long-run
        // rate.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 0.5).transition(1, 0, 2.0);
        let ctmc = b.build().unwrap();
        let m = Mrm::new(
            ctmc,
            StateRewards::new(vec![1.0, 6.0]).unwrap(),
            ImpulseRewards::new(),
        )
        .unwrap();
        let rate = long_run_reward_rate(&m, &[1.0, 0.0], mrmc_sparse::solver::SolverOptions::new())
            .unwrap();
        let t = 400.0;
        let ey = expected_accumulated_reward_from(&m, 0, t, 1e-12).unwrap();
        assert!((ey / t - rate).abs() < 0.01, "{} vs {rate}", ey / t);
    }

    #[test]
    fn long_run_rate_respects_absorbing_structure() {
        // Everything is eventually absorbed in a zero-reward state: the
        // long-run rate is zero.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0);
        let ctmc = b.build().unwrap();
        let m = Mrm::new(
            ctmc,
            StateRewards::new(vec![5.0, 0.0]).unwrap(),
            ImpulseRewards::new(),
        )
        .unwrap();
        let rate = long_run_reward_rate(&m, &[1.0, 0.0], mrmc_sparse::solver::SolverOptions::new())
            .unwrap();
        assert!(rate.abs() < 1e-10);
    }

    #[test]
    fn weighted_initial_distribution() {
        let ctmc = CtmcBuilder::new(1).build().unwrap();
        let single = Mrm::new(
            ctmc,
            StateRewards::new(vec![2.0]).unwrap(),
            ImpulseRewards::new(),
        )
        .unwrap();
        // A point mass must equal the convenience wrapper.
        let a = expected_accumulated_reward(&single, &[1.0], 3.0, 1e-12).unwrap();
        let b = expected_accumulated_reward_from(&single, 0, 3.0, 1e-12).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let ctmc = CtmcBuilder::new(1).build().unwrap();
        let m = Mrm::without_rewards(ctmc);
        assert!(expected_accumulated_reward(&m, &[1.0, 0.0], 1.0, 1e-10).is_err());
        assert!(expected_accumulated_reward(&m, &[1.0], -1.0, 1e-10).is_err());
        assert!(expected_accumulated_reward(&m, &[1.0], 1.0, 0.0).is_err());
        assert!(expected_accumulated_reward_from(&m, 5, 1.0, 1e-10).is_err());
        assert_eq!(
            expected_accumulated_reward_from(&m, 0, 0.0, 1e-10).unwrap(),
            0.0
        );
    }
}
