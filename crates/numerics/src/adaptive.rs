//! Adaptive refinement: drive an engine until its *reported* error budget
//! meets a requested tolerance.
//!
//! The engines expose raw accuracy knobs (`w`, `d`, sample counts); this
//! module closes the loop the thesis leaves to the user: the caller states
//! a tolerance `ε` on the probability and the driver tightens the knob
//! geometrically — truncation `w` by [`AdaptiveOptions::refinement`] per
//! round, step `d` by halving, samples by Hoeffding sizing — until
//! `budget.total() ≤ ε` or the work cap is hit, in which case a structured
//! [`NumericsError::ToleranceNotMet`] carries the tightest bound achieved.
//!
//! The uniformization driver always enables potential-based pruning: the
//! thesis' literal rule discards the root outright once `e^{−Λt} < w`
//! (the error blow-up visible in Table 5.3 at large `t`), which would make
//! the budget *non-monotone* in `w` and defeat refinement.

use std::sync::Arc;

use mrmc_mrm::Mrm;

use crate::discretization::{self, DiscretizationOptions, DiscretizationResult};
use crate::error::NumericsError;
use crate::monte_carlo::{self, Estimate, SimulationOptions};
use crate::omega::{cache_installed, with_omega_cache, OmegaTermCache};
use crate::uniformization::{self, UniformOptions, UntilResult};

/// Confidence parameter for Hoeffding sizing of the simulation driver:
/// the statistical budget holds with probability `1 − δ`.
pub const SIMULATION_DELTA: f64 = 1e-6;

/// Hard cap on the Hoeffding-sized sample count; tolerances requiring more
/// samples fail upfront with `ToleranceNotMet`.
pub const MAX_SAMPLES: u64 = 10_000_000;

/// Refinement policy shared by the adaptive drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// The target: drive the reported `budget.total()` to at most this.
    pub tolerance: f64,
    /// Maximum refinement rounds before giving up. Default `12`.
    pub max_rounds: u32,
    /// Factor applied to the truncation probability `w` per round
    /// (uniformization only; the discretization driver halves `d`).
    /// Default `1e-3`.
    pub refinement: f64,
}

impl AdaptiveOptions {
    /// Default policy for the given tolerance: 12 rounds, `w ×= 1e-3`.
    pub fn new(tolerance: f64) -> Self {
        AdaptiveOptions {
            tolerance,
            max_rounds: 12,
            refinement: 1e-3,
        }
    }

    /// Change the round cap.
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    fn validate(&self) -> Result<(), NumericsError> {
        if !(self.tolerance > 0.0 && self.tolerance < 1.0) {
            return Err(NumericsError::InvalidParameter {
                name: "tolerance",
                value: self.tolerance,
                requirement: "must be in (0, 1)",
            });
        }
        if !(self.refinement > 0.0 && self.refinement < 1.0) {
            return Err(NumericsError::InvalidParameter {
                name: "refinement",
                value: self.refinement,
                requirement: "must be in (0, 1)",
            });
        }
        if self.max_rounds == 0 {
            return Err(NumericsError::InvalidParameter {
                name: "max_rounds",
                value: 0.0,
                requirement: "must be positive",
            });
        }
        Ok(())
    }

    /// Initial truncation for a base `w`: no looser than the base, and at
    /// least two decades below the tolerance so round one has a chance.
    fn initial_truncation(&self, base: f64) -> f64 {
        base.min(self.tolerance * 1e-2).max(1e-300)
    }
}

/// Drive the uniformization engine from one start state until
/// `budget.total() ≤ tolerance`.
///
/// # Errors
///
/// [`NumericsError::ToleranceNotMet`] when the round cap is reached or a
/// round stops making progress (the floating-point floor of the budget
/// cannot be refined away by `w`); other [`NumericsError`]s as for
/// [`uniformization::until_probability`].
#[allow(clippy::too_many_arguments)]
pub fn uniformization_until(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    r: f64,
    start: usize,
    base: UniformOptions,
    adaptive: AdaptiveOptions,
) -> Result<UntilResult, NumericsError> {
    adaptive.validate()?;
    // Successive rounds tighten `w`, re-generating most of the previous
    // round's path classes; a per-run Omega-term cache lets re-attempts
    // reuse the tables already computed (Ω is pure, so results are
    // bit-identical). An externally installed cache is honored instead,
    // which also shares tables across runs.
    if !cache_installed() {
        return with_omega_cache(Arc::new(OmegaTermCache::new()), || {
            uniformization_until_rounds(mrm, phi, psi, t, r, start, base, adaptive)
        });
    }
    uniformization_until_rounds(mrm, phi, psi, t, r, start, base, adaptive)
}

#[allow(clippy::too_many_arguments)]
fn uniformization_until_rounds(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    r: f64,
    start: usize,
    base: UniformOptions,
    adaptive: AdaptiveOptions,
) -> Result<UntilResult, NumericsError> {
    let mut w = adaptive.initial_truncation(base.truncation);
    let mut best: Option<UntilResult> = None;
    for round in 0..adaptive.max_rounds {
        let opts = base.with_truncation(w).with_improved_pruning();
        let res = uniformization::until_probability(mrm, phi, psi, t, r, start, opts)?;
        let achieved = res.budget.total();
        mrmc_obs::record(|| mrmc_obs::Event::AdaptiveAttempt {
            round: u64::from(round) + 1,
            knob: "truncation",
            value: w,
            achieved: Some(achieved),
            components: res.budget.components().to_vec(),
        });
        if achieved <= adaptive.tolerance {
            return Ok(res);
        }
        let stalled = best
            .as_ref()
            .is_some_and(|b| achieved > 0.9 * b.budget.total());
        if best.as_ref().is_none_or(|b| achieved < b.budget.total()) {
            best = Some(res);
        }
        if stalled || w <= 1e-300 {
            break;
        }
        w *= adaptive.refinement;
    }
    Err(NumericsError::ToleranceNotMet {
        requested: adaptive.tolerance,
        achieved: best.map_or(1.0, |b| b.budget.total()),
    })
}

/// Drive the uniformization engine for **every** state at once: the whole
/// vector is refined under one `w` until the *worst* per-state budget
/// meets the tolerance, sharing the absorbed model across states.
///
/// # Errors
///
/// See [`uniformization_until`].
pub fn uniformization_until_all(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    r: f64,
    base: UniformOptions,
    adaptive: AdaptiveOptions,
) -> Result<Vec<UntilResult>, NumericsError> {
    adaptive.validate()?;
    // Same per-run Omega-term cache as `uniformization_until`; here the
    // reuse also spans start states within one round.
    if !cache_installed() {
        return with_omega_cache(Arc::new(OmegaTermCache::new()), || {
            uniformization_until_all_rounds(mrm, phi, psi, t, r, base, adaptive)
        });
    }
    uniformization_until_all_rounds(mrm, phi, psi, t, r, base, adaptive)
}

fn uniformization_until_all_rounds(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    r: f64,
    base: UniformOptions,
    adaptive: AdaptiveOptions,
) -> Result<Vec<UntilResult>, NumericsError> {
    let worst = |v: &[UntilResult]| v.iter().map(|r| r.budget.total()).fold(0.0f64, f64::max);
    let mut w = adaptive.initial_truncation(base.truncation);
    let mut best: Option<Vec<UntilResult>> = None;
    for round in 0..adaptive.max_rounds {
        let opts = base.with_truncation(w).with_improved_pruning();
        let res = uniformization::until_probabilities_all(mrm, phi, psi, t, r, opts)?;
        let achieved = worst(&res);
        mrmc_obs::record(|| mrmc_obs::Event::AdaptiveAttempt {
            round: u64::from(round) + 1,
            knob: "truncation",
            value: w,
            achieved: Some(achieved),
            components: Vec::new(),
        });
        if achieved <= adaptive.tolerance {
            return Ok(res);
        }
        let stalled = best.as_ref().is_some_and(|b| achieved > 0.9 * worst(b));
        if best.as_ref().is_none_or(|b| achieved < worst(b)) {
            best = Some(res);
        }
        if stalled || w <= 1e-300 {
            break;
        }
        w *= adaptive.refinement;
    }
    Err(NumericsError::ToleranceNotMet {
        requested: adaptive.tolerance,
        achieved: best.map_or(1.0, |b| worst(&b)),
    })
}

/// Drive the discretization engine: halve `d` until the reported budget
/// (Richardson estimate + float accumulation) meets the tolerance.
///
/// The starting step is clamped to the stability limit `1/max_s E(s)` and
/// to `t`, so a too-coarse base step refines instead of erroring.
///
/// # Errors
///
/// [`NumericsError::ToleranceNotMet`] when the round cap or the reward-grid
/// memory guard halts refinement first; other [`NumericsError`]s as for
/// [`discretization::until_probability`].
#[allow(clippy::too_many_arguments)]
pub fn discretization_until(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    r: f64,
    start: usize,
    base: DiscretizationOptions,
    adaptive: AdaptiveOptions,
) -> Result<DiscretizationResult, NumericsError> {
    adaptive.validate()?;
    let max_exit = mrm
        .ctmc()
        .exit_rates()
        .iter()
        .fold(0.0f64, |m, &e| m.max(e));
    let mut d = base.step;
    if max_exit > 0.0 {
        d = d.min(1.0 / max_exit);
    }
    d = d.min(t);
    let mut best: Option<DiscretizationResult> = None;
    for round in 0..adaptive.max_rounds {
        let mut opts = base;
        opts.step = d;
        let res = match discretization::until_probability(mrm, phi, psi, t, r, start, opts) {
            Ok(res) => res,
            // The memory guard reports the step as invalid; if refinement
            // already produced a result, report the bound it achieved.
            Err(e @ NumericsError::InvalidParameter { name: "step", .. }) => {
                return match best {
                    Some(b) => Err(NumericsError::ToleranceNotMet {
                        requested: adaptive.tolerance,
                        achieved: b.budget.total(),
                    }),
                    None => Err(e),
                };
            }
            Err(e) => return Err(e),
        };
        let achieved = res.budget.total();
        mrmc_obs::record(|| mrmc_obs::Event::AdaptiveAttempt {
            round: u64::from(round) + 1,
            knob: "step",
            value: d,
            achieved: Some(achieved),
            components: res.budget.components().to_vec(),
        });
        if achieved <= adaptive.tolerance {
            return Ok(res);
        }
        if best.as_ref().is_none_or(|b| achieved < b.budget.total()) {
            best = Some(res);
        }
        d *= 0.5;
    }
    Err(NumericsError::ToleranceNotMet {
        requested: adaptive.tolerance,
        achieved: best.map_or(1.0, |b| b.budget.total()),
    })
}

/// Size the Monte-Carlo estimator by the Hoeffding bound: the smallest
/// sample count with `√(ln(2/δ)/2n) ≤ tolerance` at `δ =`
/// [`SIMULATION_DELTA`], then run once. The statistical budget component
/// is the realized radius.
///
/// # Errors
///
/// [`NumericsError::ToleranceNotMet`] upfront when more than
/// [`MAX_SAMPLES`] trajectories would be needed — the achieved bound is
/// the radius at the cap; other [`NumericsError`]s as for
/// [`monte_carlo::estimate_until`].
#[allow(clippy::too_many_arguments)]
pub fn simulation_until(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    r: f64,
    start: usize,
    base: SimulationOptions,
    adaptive: AdaptiveOptions,
) -> Result<Estimate, NumericsError> {
    adaptive.validate()?;
    let needed = monte_carlo::hoeffding_samples(adaptive.tolerance, SIMULATION_DELTA);
    let samples = match needed {
        Some(n) if n <= MAX_SAMPLES => n.max(base.samples),
        _ => {
            return Err(NumericsError::ToleranceNotMet {
                requested: adaptive.tolerance,
                achieved: monte_carlo::hoeffding_radius(MAX_SAMPLES, SIMULATION_DELTA),
            })
        }
    };
    let mut opts = base;
    opts.samples = samples;
    mrmc_obs::record(|| mrmc_obs::Event::AdaptiveAttempt {
        round: 1,
        knob: "samples",
        value: samples as f64,
        achieved: None,
        components: Vec::new(),
    });
    monte_carlo::estimate_until(mrm, phi, psi, t, r, start, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_mrm::{ImpulseRewards, StateRewards};

    fn wavelan() -> Mrm {
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 0.1);
        b.transition(1, 0, 0.05).transition(1, 2, 5.0);
        b.transition(2, 1, 12.0)
            .transition(2, 3, 1.5)
            .transition(2, 4, 0.75);
        b.transition(3, 2, 10.0);
        b.transition(4, 2, 15.0);
        b.label(2, "idle");
        b.label(3, "busy");
        b.label(4, "busy");
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![0.0, 80.0, 1319.0, 1675.0, 1425.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(2, 3, 0.42545).unwrap();
        iota.set(2, 4, 0.36195).unwrap();
        Mrm::new(ctmc, rho, iota).unwrap()
    }

    #[test]
    fn uniformization_meets_the_requested_tolerance() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        for &eps in &[1e-3, 1e-6] {
            let res = uniformization_until(
                &m,
                &phi,
                &psi,
                2.0,
                2000.0,
                2,
                UniformOptions::new(),
                AdaptiveOptions::new(eps),
            )
            .unwrap();
            assert!(
                res.budget.total() <= eps,
                "eps = {eps}: budget {}",
                res.budget.total()
            );
            // Example 3.6 closed form: the answer itself must be right.
            assert!((res.probability - 0.15789).abs() < eps + 1e-3);
        }
    }

    #[test]
    fn unreachable_tolerance_reports_the_achieved_bound() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        // 1e-16 sits below the floating-point accumulation floor of the
        // Omega fold (~1e-13 here): no truncation refinement can reach it,
        // and the stall detector must stop the loop with the achieved bound.
        let err = uniformization_until(
            &m,
            &phi,
            &psi,
            2.0,
            2000.0,
            2,
            UniformOptions::new(),
            AdaptiveOptions::new(1e-16).with_max_rounds(6),
        )
        .unwrap_err();
        match err {
            NumericsError::ToleranceNotMet {
                requested,
                achieved,
            } => {
                assert_eq!(requested, 1e-16);
                assert!(achieved > 1e-16 && achieved <= 1.0, "achieved {achieved}");
            }
            other => panic!("expected ToleranceNotMet, got {other:?}"),
        }
    }

    #[test]
    fn all_states_driver_bounds_every_state() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let all = uniformization_until_all(
            &m,
            &phi,
            &psi,
            1.0,
            2000.0,
            UniformOptions::new(),
            AdaptiveOptions::new(1e-6),
        )
        .unwrap();
        assert_eq!(all.len(), m.num_states());
        for (s, r) in all.iter().enumerate() {
            assert!(r.budget.total() <= 1e-6, "state {s}: {}", r.budget.total());
        }
    }

    #[test]
    fn discretization_driver_refines_the_step() {
        // Reward-free two-state chain: the exact answer is 1 − e^{−2t}.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 2.0);
        b.label(1, "goal");
        let m = Mrm::without_rewards(b.build().unwrap());
        let phi = vec![true, true];
        let psi = vec![false, true];
        let res = discretization_until(
            &m,
            &phi,
            &psi,
            1.0,
            10.0,
            0,
            // Deliberately unstable base step: the driver must clamp it.
            DiscretizationOptions::with_step(5.0),
            AdaptiveOptions::new(1e-3).with_max_rounds(16),
        )
        .unwrap();
        assert!(res.budget.total() <= 1e-3, "{}", res.budget.total());
        let exact = 1.0 - (-2.0f64).exp();
        assert!(
            (res.probability - exact).abs() <= res.budget.total(),
            "{} vs {exact} (budget {})",
            res.probability,
            res.budget.total()
        );
    }

    #[test]
    fn simulation_driver_sizes_samples_by_hoeffding() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 2.0);
        b.label(1, "goal");
        let m = Mrm::without_rewards(b.build().unwrap());
        let phi = vec![true, true];
        let psi = vec![false, true];
        let est = simulation_until(
            &m,
            &phi,
            &psi,
            1.0,
            f64::INFINITY,
            0,
            SimulationOptions::with_samples(1_000),
            AdaptiveOptions::new(5e-3),
        )
        .unwrap();
        assert!(est.hoeffding_radius(SIMULATION_DELTA) <= 5e-3);
        assert!(est.samples >= monte_carlo::hoeffding_samples(5e-3, SIMULATION_DELTA).unwrap());
        // A tolerance needing more than the cap fails upfront.
        let err = simulation_until(
            &m,
            &phi,
            &psi,
            1.0,
            f64::INFINITY,
            0,
            SimulationOptions::with_samples(1_000),
            AdaptiveOptions::new(1e-6),
        )
        .unwrap_err();
        assert!(matches!(err, NumericsError::ToleranceNotMet { .. }));
    }

    #[test]
    fn bad_adaptive_parameters_rejected() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        for eps in [0.0, 1.0, -1e-3, f64::NAN] {
            assert!(matches!(
                uniformization_until(
                    &m,
                    &phi,
                    &psi,
                    1.0,
                    100.0,
                    2,
                    UniformOptions::new(),
                    AdaptiveOptions::new(eps),
                ),
                Err(NumericsError::InvalidParameter {
                    name: "tolerance",
                    ..
                })
            ));
        }
        assert!(matches!(
            uniformization_until(
                &m,
                &phi,
                &psi,
                1.0,
                100.0,
                2,
                UniformOptions::new(),
                AdaptiveOptions::new(1e-3).with_max_rounds(0),
            ),
            Err(NumericsError::InvalidParameter {
                name: "max_rounds",
                ..
            })
        ));
    }
}
