//! Exact CSRL path-formula semantics on concrete trajectories
//! (Definition 3.6), for *general* closed time and reward intervals.
//!
//! The numerical engines are restricted to `[0, t]`/`[0, r]` bounds
//! (Section 4.6); evaluating the satisfaction relation on sampled paths has
//! no such restriction, which is what makes the statistical checker in
//! [`crate::monte_carlo`] able to handle the thesis' "future work" bounds.
//!
//! Satisfaction of `Φ U^I_J Ψ` on a path σ requires a witness time
//! `τ ∈ I` with `σ@τ ⊨ Ψ`, `y_σ(τ) ∈ J`, and `σ@τ' ⊨ Φ` for all
//! `τ' < τ`. Within one residence period the accumulated reward is an
//! affine function of τ, so the witness search reduces to interval
//! intersections per period — evaluated exactly, without discretizing the
//! trajectory.

use mrmc_csrl::Interval;
use mrmc_mrm::{Mrm, TimedPath};

use crate::error::NumericsError;

fn validate_sets(mrm: &Mrm, phi: &[bool], psi: &[bool]) -> Result<(), NumericsError> {
    let n = mrm.num_states();
    if phi.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: phi.len(),
        });
    }
    if psi.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: psi.len(),
        });
    }
    Ok(())
}

/// Does the (finite prefix of a) path satisfy `Φ U^I_J Ψ`?
///
/// The final recorded state is treated as held forever, matching
/// [`TimedPath`]'s convention; for sampled paths make sure the recorded
/// horizon covers `sup I` (or ends in an absorbing state).
///
/// # Errors
///
/// [`NumericsError::SizeMismatch`] when `phi`/`psi` have the wrong length
/// or the path mentions out-of-range states.
pub fn until_holds(
    mrm: &Mrm,
    path: &TimedPath,
    phi: &[bool],
    psi: &[bool],
    time: &Interval,
    reward: &Interval,
) -> Result<bool, NumericsError> {
    validate_sets(mrm, phi, psi)?;
    for &s in path.states() {
        if s >= mrm.num_states() {
            return Err(NumericsError::SizeMismatch {
                expected: mrm.num_states(),
                found: s,
            });
        }
    }

    // Walk the residence periods [a, b) of each recorded state; the last
    // period is unbounded. `y0` is the accumulated reward at period start.
    let mut a = 0.0_f64;
    let mut y0 = 0.0_f64;
    for (i, &state) in path.states().iter().enumerate() {
        let is_last = i + 1 == path.len();
        let b = if is_last {
            f64::INFINITY
        } else {
            a + path.sojourns()[i]
        };
        let rho = mrm.state_reward(state);

        if psi[state] {
            // Witness window within this period. Φ must hold strictly
            // before τ: earlier periods were all checked below, and within
            // this period σ@τ' = state for τ' ∈ (a, τ), so a ¬Φ Ψ-state only
            // admits the boundary witness τ = a.
            let window_hi = if phi[state] { b } else { a };
            // τ constraints: τ ∈ [a, window_hi] ∩ I and y0 + ρ·(τ − a) ∈ J.
            let lo = a.max(time.lo());
            let hi = window_hi.min(time.hi());
            if lo <= hi {
                if rho == 0.0 {
                    if reward.contains(y0) {
                        return Ok(true);
                    }
                } else {
                    // y(τ) ∈ [J.lo, J.hi] ⇔ τ ∈ [a + (J.lo − y0)/ρ, …].
                    let tau_lo = lo.max(a + (reward.lo() - y0) / rho);
                    let tau_hi = if reward.hi() == f64::INFINITY {
                        hi
                    } else {
                        hi.min(a + (reward.hi() - y0) / rho)
                    };
                    if tau_lo <= tau_hi {
                        return Ok(true);
                    }
                }
            }
        }

        if !phi[state] {
            // No later witness is possible: Φ fails from this period on.
            return Ok(false);
        }
        if a > time.hi() {
            return Ok(false); // past the timing window, no witness left
        }
        if is_last {
            return Ok(false);
        }
        y0 += rho * path.sojourns()[i];
        y0 += mrm.impulse_reward(state, path.states()[i + 1]);
        a = b;
    }
    Ok(false)
}

/// Does the path satisfy `X^I_J Φ` (Definition 3.6): the first transition
/// happens at a time in `I`, reaches a Φ-state, and the reward accumulated
/// up to it (sojourn rate reward — the entry impulse is earned *at* the
/// transition and counted, matching `K(s, s')` of Section 3.8) lies in `J`?
///
/// # Errors
///
/// See [`until_holds`].
pub fn next_holds(
    mrm: &Mrm,
    path: &TimedPath,
    phi: &[bool],
    time: &Interval,
    reward: &Interval,
) -> Result<bool, NumericsError> {
    let n = mrm.num_states();
    if phi.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: phi.len(),
        });
    }
    if path.len() < 2 {
        return Ok(false); // σ[1] undefined
    }
    let first = path.state(0);
    let second = path.state(1);
    if first >= n || second >= n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: first.max(second),
        });
    }
    let t0 = path.sojourns()[0];
    let y = mrm.state_reward(first) * t0 + mrm.impulse_reward(first, second);
    Ok(phi[second] && time.contains(t0) && reward.contains(y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_mrm::{ImpulseRewards, StateRewards};

    fn wavelan() -> Mrm {
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 0.1);
        b.transition(1, 0, 0.05).transition(1, 2, 5.0);
        b.transition(2, 1, 12.0)
            .transition(2, 3, 1.5)
            .transition(2, 4, 0.75);
        b.transition(3, 2, 10.0);
        b.transition(4, 2, 15.0);
        b.label(2, "idle");
        b.label(3, "busy");
        b.label(4, "busy");
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![0.0, 80.0, 1319.0, 1675.0, 1425.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(0, 1, 0.02).unwrap();
        iota.set(1, 2, 0.32975).unwrap();
        iota.set(2, 3, 0.42545).unwrap();
        iota.set(2, 4, 0.36195).unwrap();
        Mrm::new(ctmc, rho, iota).unwrap()
    }

    /// The Example 3.4 path: 1 →100 2 →40 3 →20 4 →37.5 3 →10 5 →25 3 …
    fn example_path() -> TimedPath {
        TimedPath::new(
            vec![0, 1, 2, 3, 2, 4, 2],
            vec![100.0, 40.0, 20.0, 37.5, 10.0, 25.0],
        )
        .unwrap()
    }

    #[test]
    fn example_3_4_satisfies_the_until() {
        // σ ⊨ tt U^{[0,600]}_{[0,50000]} busy (the thesis' 50 J in mJ after
        // scaling: the witness at τ = 160 carries y ≈ 29581 mJ).
        let m = wavelan();
        let p = example_path();
        let phi = vec![true; 5];
        let psi = m.labeling().states_with("busy");
        assert!(until_holds(
            &m,
            &p,
            &phi,
            &psi,
            &Interval::upto(600.0),
            &Interval::upto(50_000.0),
        )
        .unwrap());
        // A reward bound below the witness reward (~29.58 kJ·ms) fails at
        // τ = 160 but a later cheaper witness cannot exist (reward grows):
        assert!(!until_holds(
            &m,
            &p,
            &phi,
            &psi,
            &Interval::upto(600.0),
            &Interval::upto(20_000.0),
        )
        .unwrap());
    }

    #[test]
    fn phi_constraint_cuts_paths() {
        // Φ = idle only: the prefix passes through off/sleep, so the until
        // fails immediately.
        let m = wavelan();
        let p = example_path();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        assert!(!until_holds(
            &m,
            &p,
            &phi,
            &psi,
            &Interval::unbounded(),
            &Interval::unbounded(),
        )
        .unwrap());
    }

    #[test]
    fn time_lower_bounds_are_respected() {
        let m = wavelan();
        let p = example_path();
        let phi = vec![true; 5];
        let psi = m.labeling().states_with("busy");
        // The path is busy during [160, 197.5) and [207.5, 232.5).
        let in_window = Interval::new(170.0, 180.0).unwrap();
        assert!(until_holds(&m, &p, &phi, &psi, &in_window, &Interval::unbounded()).unwrap());
        let between_visits = Interval::new(198.0, 207.0).unwrap();
        assert!(!until_holds(&m, &p, &phi, &psi, &between_visits, &Interval::unbounded()).unwrap());
        let after_everything = Interval::new(1000.0, 2000.0).unwrap();
        assert!(!until_holds(
            &m,
            &p,
            &phi,
            &psi,
            &after_everything,
            &Interval::unbounded()
        )
        .unwrap());
    }

    #[test]
    fn reward_lower_bounds_pick_later_witnesses() {
        let m = wavelan();
        let p = example_path();
        let phi = vec![true; 5];
        let psi = m.labeling().states_with("busy");
        // y at first busy entry (τ = 160) is ≈ 29580.77; requiring at least
        // 40000 forces the witness into a later part of a busy period.
        let reward = Interval::new(40_000.0, f64::INFINITY).unwrap();
        assert!(until_holds(&m, &p, &phi, &psi, &Interval::unbounded(), &reward).unwrap());
        // Between 29581 and the reward at τ=197.5 end of first busy period
        // (29580.77 + 1675·37.5 = 92393): a mid-period witness exists.
        let mid = Interval::new(50_000.0, 60_000.0).unwrap();
        assert!(until_holds(&m, &p, &phi, &psi, &Interval::unbounded(), &mid).unwrap());
    }

    #[test]
    fn psi_state_that_fails_phi_admits_only_the_boundary_witness() {
        // 0 (Φ) → 1 (Ψ ∧ ¬Φ): the witness must be the entry instant.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0);
        let ctmc = b.build().unwrap();
        let m = Mrm::new(
            ctmc,
            StateRewards::new(vec![1.0, 1.0]).unwrap(),
            ImpulseRewards::new(),
        )
        .unwrap();
        let p = TimedPath::new(vec![0, 1], vec![2.0]).unwrap();
        let phi = vec![true, false];
        let psi = vec![false, true];
        // Entry at τ = 2 with y = 2: a reward window above it fails because
        // later times in the Ψ-period violate the Φ-before-τ requirement.
        assert!(until_holds(
            &m,
            &p,
            &phi,
            &psi,
            &Interval::unbounded(),
            &Interval::new(1.9, 2.1).unwrap(),
        )
        .unwrap());
        assert!(!until_holds(
            &m,
            &p,
            &phi,
            &psi,
            &Interval::unbounded(),
            &Interval::new(3.0, 4.0).unwrap(),
        )
        .unwrap());
    }

    #[test]
    fn psi_start_state_is_an_immediate_witness() {
        let m = wavelan();
        let p = TimedPath::new(vec![3], vec![]).unwrap();
        let phi = vec![true; 5];
        let psi = m.labeling().states_with("busy");
        assert!(until_holds(
            &m,
            &p,
            &phi,
            &psi,
            &Interval::unbounded(),
            &Interval::upto(0.0),
        )
        .unwrap());
    }

    #[test]
    fn next_semantics_match_example_intervals() {
        let m = wavelan();
        let p = example_path();
        let busy = m.labeling().states_with("busy");
        let sleep: Vec<bool> = (0..5).map(|s| s == 1).collect();
        // First transition: 0 → 1 (sleep) at t0 = 100 with y = 0·100 + 0.02.
        assert!(next_holds(
            &m,
            &p,
            &sleep,
            &Interval::new(50.0, 150.0).unwrap(),
            &Interval::upto(1.0),
        )
        .unwrap());
        assert!(!next_holds(
            &m,
            &p,
            &busy,
            &Interval::unbounded(),
            &Interval::unbounded()
        )
        .unwrap());
        assert!(!next_holds(
            &m,
            &p,
            &sleep,
            &Interval::upto(50.0),
            &Interval::unbounded(),
        )
        .unwrap());
        // Reward must include the impulse: a window excluding 0.02 fails.
        assert!(!next_holds(
            &m,
            &p,
            &sleep,
            &Interval::unbounded(),
            &Interval::upto(0.01),
        )
        .unwrap());
        // Single-state path: σ[1] undefined.
        let single = TimedPath::new(vec![0], vec![]).unwrap();
        assert!(!next_holds(
            &m,
            &single,
            &sleep,
            &Interval::unbounded(),
            &Interval::unbounded()
        )
        .unwrap());
    }

    #[test]
    fn size_mismatches_rejected() {
        let m = wavelan();
        let p = example_path();
        assert!(until_holds(
            &m,
            &p,
            &[true],
            &[false],
            &Interval::unbounded(),
            &Interval::unbounded(),
        )
        .is_err());
        assert!(next_holds(
            &m,
            &p,
            &[true],
            &Interval::unbounded(),
            &Interval::unbounded()
        )
        .is_err());
    }
}
