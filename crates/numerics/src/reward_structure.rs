//! Reward-class indexing for path characterization (Section 4.6.2).
//!
//! A trajectory of length `n` is characterized by two count vectors:
//!
//! * `k = ⟨k_1, …, k_{K+1}⟩` — `k_i` residences in states with the `i`-th
//!   largest distinct state reward (`Σ k_i = n + 1`);
//! * `j = ⟨j_1, …, j_J⟩` — `j_i` occurrences of transitions carrying the
//!   `i`-th largest distinct impulse reward (`Σ j_i = n`, the zero impulse
//!   included as the last class).
//!
//! [`RewardClasses`] precomputes, for a (typically absorbed) model, the
//! class index of every state and a lookup from impulse value to class.

use mrmc_mrm::UniformizedMrm;

/// Precomputed reward-class structure of a uniformized MRM.
#[derive(Debug, Clone, PartialEq)]
pub struct RewardClasses {
    /// Distinct state rewards `r_1 > … > r_{K+1}`.
    state_rewards: Vec<f64>,
    /// Per-state index into `state_rewards`.
    class_of_state: Vec<usize>,
    /// Distinct impulse rewards `i_1 > … > i_J` (the final entry is always
    /// `0`).
    impulse_rewards: Vec<f64>,
}

impl RewardClasses {
    /// Analyse the reward structure of a uniformized MRM.
    pub fn new(uni: &UniformizedMrm) -> Self {
        let mut state_rewards: Vec<f64> = uni.state_rewards().to_vec();
        state_rewards.sort_by(|a, b| b.partial_cmp(a).expect("rewards are finite"));
        state_rewards.dedup();

        let class_of_state = uni
            .state_rewards()
            .iter()
            .map(|r| {
                state_rewards
                    .iter()
                    .position(|x| x == r)
                    .expect("every reward is listed")
            })
            .collect();

        let mut impulse_rewards: Vec<f64> = Vec::new();
        for s in 0..uni.num_states() {
            for (_, _, imp) in uni.transitions(s) {
                impulse_rewards.push(imp);
            }
        }
        impulse_rewards.push(0.0);
        impulse_rewards.sort_by(|a, b| b.partial_cmp(a).expect("impulses are finite"));
        impulse_rewards.dedup();

        RewardClasses {
            state_rewards,
            class_of_state,
            impulse_rewards,
        }
    }

    /// `K + 1`: number of distinct state rewards.
    pub fn num_state_classes(&self) -> usize {
        self.state_rewards.len()
    }

    /// `J`: number of distinct impulse rewards (including zero).
    pub fn num_impulse_classes(&self) -> usize {
        self.impulse_rewards.len()
    }

    /// Distinct state rewards, strictly decreasing.
    pub fn state_rewards(&self) -> &[f64] {
        &self.state_rewards
    }

    /// Distinct impulse rewards, strictly decreasing (last entry `0`).
    pub fn impulse_rewards(&self) -> &[f64] {
        &self.impulse_rewards
    }

    /// Class index of `state`'s reward.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn state_class(&self, state: usize) -> usize {
        self.class_of_state[state]
    }

    /// Class index of an impulse value.
    ///
    /// # Panics
    ///
    /// Panics if `impulse` is not one of the model's impulse values (the
    /// lookup is exact: impulses come from the model itself).
    pub fn impulse_class(&self, impulse: f64) -> usize {
        self.impulse_rewards
            .iter()
            .position(|&x| x == impulse)
            .expect("impulse value stems from the model")
    }

    /// The smallest distinct state reward `r_{K+1}`.
    pub fn min_state_reward(&self) -> f64 {
        *self
            .state_rewards
            .last()
            .expect("non-empty by construction")
    }

    /// The Omega coefficients `c_l = r_l − r_{K+1}` (strictly decreasing,
    /// ending in `0`), per the order-statistics construction of
    /// Section 4.6.3.
    pub fn omega_coefficients(&self) -> Vec<f64> {
        let min = self.min_state_reward();
        self.state_rewards.iter().map(|r| r - min).collect()
    }

    /// `Σ_i i_i · j_i` for an impulse-count vector `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j.len()` differs from the number of impulse classes.
    pub fn impulse_total(&self, j: &[u32]) -> f64 {
        assert_eq!(j.len(), self.impulse_rewards.len(), "impulse vector length");
        self.impulse_rewards
            .iter()
            .zip(j)
            .map(|(&i, &count)| i * f64::from(count))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_mrm::{ImpulseRewards, Mrm, StateRewards};

    fn model() -> UniformizedMrm {
        let mut b = CtmcBuilder::new(4);
        b.transition(0, 1, 1.0)
            .transition(1, 2, 2.0)
            .transition(2, 3, 3.0)
            .transition(3, 0, 1.0);
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![5.0, 1.0, 5.0, 0.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(0, 1, 2.0).unwrap();
        iota.set(1, 2, 0.5).unwrap();
        iota.set(2, 3, 2.0).unwrap();
        let mrm = Mrm::new(ctmc, rho, iota).unwrap();
        UniformizedMrm::new(&mrm, None).unwrap()
    }

    #[test]
    fn state_classes_are_descending_and_complete() {
        let rc = RewardClasses::new(&model());
        assert_eq!(rc.state_rewards(), &[5.0, 1.0, 0.0]);
        assert_eq!(rc.num_state_classes(), 3);
        assert_eq!(rc.state_class(0), 0);
        assert_eq!(rc.state_class(1), 1);
        assert_eq!(rc.state_class(2), 0);
        assert_eq!(rc.state_class(3), 2);
    }

    #[test]
    fn impulse_classes_include_zero() {
        let rc = RewardClasses::new(&model());
        assert_eq!(rc.impulse_rewards(), &[2.0, 0.5, 0.0]);
        assert_eq!(rc.impulse_class(2.0), 0);
        assert_eq!(rc.impulse_class(0.5), 1);
        assert_eq!(rc.impulse_class(0.0), 2);
    }

    #[test]
    fn omega_coefficients_shift_by_minimum() {
        let rc = RewardClasses::new(&model());
        assert_eq!(rc.omega_coefficients(), vec![5.0, 1.0, 0.0]);
        assert_eq!(rc.min_state_reward(), 0.0);
    }

    #[test]
    fn omega_coefficients_with_positive_minimum() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(1, 0, 1.0);
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![7.0, 3.0]).unwrap();
        let mrm = Mrm::new(ctmc, rho, ImpulseRewards::new()).unwrap();
        let rc = RewardClasses::new(&UniformizedMrm::new(&mrm, None).unwrap());
        assert_eq!(rc.state_rewards(), &[7.0, 3.0]);
        assert_eq!(rc.omega_coefficients(), vec![4.0, 0.0]);
        assert_eq!(rc.min_state_reward(), 3.0);
    }

    #[test]
    fn impulse_total_weights_counts() {
        let rc = RewardClasses::new(&model());
        // j = ⟨4, 2, 0⟩ over impulses ⟨2.0, 0.5, 0.0⟩: total = 9.
        assert_eq!(rc.impulse_total(&[4, 2, 0]), 9.0);
        assert_eq!(rc.impulse_total(&[0, 0, 5]), 0.0);
    }

    #[test]
    fn constant_reward_model_has_single_class() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(1, 0, 1.0);
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![2.0, 2.0]).unwrap();
        let mrm = Mrm::new(ctmc, rho, ImpulseRewards::new()).unwrap();
        let rc = RewardClasses::new(&UniformizedMrm::new(&mrm, None).unwrap());
        assert_eq!(rc.num_state_classes(), 1);
        assert_eq!(rc.omega_coefficients(), vec![0.0]);
        assert_eq!(rc.num_impulse_classes(), 1);
    }
}
