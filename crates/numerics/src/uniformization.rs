//! Uniformization-based evaluation of time- and reward-bounded until
//! (Section 4.6) and of the performability distribution `Pr{Y(t) ≤ r}`
//! (Eq. 4.4).
//!
//! The pipeline for `P^M(s, Φ U^{[0,t]}_{[0,r]} Ψ)`:
//!
//! 1. make all `(¬Φ ∨ Ψ)`-states absorbing (Theorems 4.1/4.3);
//! 2. uniformize the absorbed MRM (Definition 4.2);
//! 3. generate paths depth-first with truncation probability `w`
//!    (Algorithm 4.7), aggregating by `(k, j)` reward-count classes;
//! 4. per class, evaluate the conditional probability
//!    `Pr{Y(t) ≤ r | n, k, j}` with the Omega algorithm (Eq. 4.9,
//!    Algorithm 4.8);
//! 5. sum `P(σ, t) · Pr{Y(t) ≤ r | σ}` over the stored classes (Eq. 4.5) and
//!    report the truncation error bound (Eq. 4.6).

use mrmc_ctmc::poisson;
use mrmc_mrm::{transform::make_absorbing, Mrm, UniformizedMrm};

use crate::budget::ErrorBudget;
use crate::error::NumericsError;
use crate::kahan::KahanSum;
use crate::parallel::{self, TermRequest};
use crate::path_classes::PathClasses;
use crate::reward_structure::RewardClasses;

/// Threading options for the path-exploration engine.
///
/// The parallel engine (module [`parallel`]) is
/// **deterministic**: for any `threads` and `chunk_size` the result is
/// bit-for-bit identical to the serial engine, so these knobs only trade
/// wall-clock time, never accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Number of worker threads. `1` (the default) runs the serial engine;
    /// `0` auto-detects the available CPU parallelism.
    pub threads: usize,
    /// Target number of work items *per thread*: the sequential frontier
    /// pass is deepened until at least `threads × chunk_size` subtrees are
    /// available, so the atomic work queue can balance uneven subtree
    /// sizes. Default `8`.
    pub chunk_size: usize,
}

impl ParallelOptions {
    /// Serial defaults: one thread, chunk size 8.
    pub fn new() -> Self {
        ParallelOptions {
            threads: 1,
            chunk_size: 8,
        }
    }

    /// The actual worker count: resolves `threads == 0` to the available
    /// CPU parallelism (at least 1).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        } else {
            self.threads
        }
    }
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions::new()
    }
}

/// Options for the uniformization engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformOptions {
    /// The path truncation probability `w`: paths with
    /// `P(σ, t) < w` are discarded (Definition 4.6). Default `1e-8`, the
    /// thesis tool's default.
    pub truncation: f64,
    /// Explicit uniformization rate `Λ`; `None` picks
    /// `1.02 · max_s E(s)`.
    pub lambda: Option<f64>,
    /// Hard cap on the exploration depth (a safety net; the truncation
    /// probability is the intended control). Default `1_000_000`.
    pub max_depth: u64,
    /// Use potential-based pruning instead of the thesis' literal rule.
    ///
    /// The thesis discards a prefix σ as soon as `P(σ, t) = ψ_n(Λt)·P(σ)`
    /// falls below `w` — but for `n` below the Poisson mode the weight of an
    /// *extension* of σ can exceed `P(σ, t)`, so the literal rule
    /// over-truncates whenever `e^{−Λt} < w` (visible as the error blow-up
    /// at large `t` in Table 5.3). With this flag a prefix is discarded only
    /// when `P(σ)·max_{m ≥ n} ψ_m(Λt) < w`. Off by default for fidelity;
    /// the ablation bench compares both rules.
    pub improved_pruning: bool,
    /// Threading configuration; serial by default. Any setting produces
    /// bit-identical results (see [`ParallelOptions`]).
    pub parallel: ParallelOptions,
}

impl UniformOptions {
    /// The defaults used by the thesis tool: `w = 1e-8`, automatic `Λ`.
    pub fn new() -> Self {
        UniformOptions {
            truncation: 1e-8,
            lambda: None,
            max_depth: 1_000_000,
            improved_pruning: false,
            parallel: ParallelOptions::new(),
        }
    }

    /// Replace the truncation probability `w`.
    pub fn with_truncation(mut self, w: f64) -> Self {
        self.truncation = w;
        self
    }

    /// Pin the uniformization rate.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = Some(lambda);
        self
    }

    /// Enable potential-based pruning (see
    /// [`improved_pruning`](UniformOptions::improved_pruning)).
    pub fn with_improved_pruning(mut self) -> Self {
        self.improved_pruning = true;
        self
    }

    /// Set the worker-thread count (`0` = auto-detect, `1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.parallel.threads = threads;
        self
    }

    /// Replace the full threading configuration.
    pub fn with_parallel(mut self, parallel: ParallelOptions) -> Self {
        self.parallel = parallel;
        self
    }
}

impl Default for UniformOptions {
    fn default() -> Self {
        UniformOptions::new()
    }
}

/// The outcome of a uniformization-based until evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct UntilResult {
    /// The computed probability (Eq. 4.5), clamped into `[0, 1]`.
    pub probability: f64,
    /// The truncation error bound `E` (Eq. 4.6). Kept as the engine-native
    /// bound; equals `budget.path_truncation`.
    pub error_bound: f64,
    /// The full error decomposition. For this engine the Eq. 4.6 mass
    /// already covers the Poisson tail of every discarded path suffix
    /// (each pruned prefix is charged `P(σ)·Pr{N ≥ n}`), so
    /// `budget.poisson_tail` is zero and the only other component is the
    /// floating-point accumulation of the Omega evaluation and final fold.
    pub budget: ErrorBudget,
    /// Number of distinct `(k, j)` path classes stored.
    pub num_classes: usize,
    /// Number of DFS nodes expanded.
    pub explored_nodes: u64,
    /// Number of stored (Ψ-ending) path prefixes.
    pub stored_paths: u64,
    /// Number of truncated path prefixes contributing to the error bound.
    pub truncated_paths: u64,
    /// Deepest path length reached.
    pub max_depth: u64,
}

impl UntilResult {
    /// An exact result (`t = 0` membership tests and dead start states):
    /// no exploration, zero budget.
    fn trivial(probability: f64) -> Self {
        UntilResult {
            probability,
            error_bound: 0.0,
            budget: ErrorBudget::zero(),
            num_classes: 0,
            explored_nodes: 0,
            stored_paths: 0,
            truncated_paths: 0,
            max_depth: 0,
        }
    }
}

fn validate_inputs(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    r: f64,
    start: usize,
    options: &UniformOptions,
) -> Result<(), NumericsError> {
    let n = mrm.num_states();
    if phi.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: phi.len(),
        });
    }
    if psi.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: psi.len(),
        });
    }
    if start >= n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: start,
        });
    }
    if !(t.is_finite() && t >= 0.0) {
        return Err(NumericsError::InvalidParameter {
            name: "t",
            value: t,
            requirement: "must be finite and non-negative",
        });
    }
    if r.is_nan() || r < 0.0 {
        return Err(NumericsError::InvalidParameter {
            name: "r",
            value: r,
            requirement: "must be non-negative",
        });
    }
    if !(options.truncation > 0.0 && options.truncation < 1.0) {
        return Err(NumericsError::InvalidParameter {
            name: "truncation",
            value: options.truncation,
            requirement: "must be in (0, 1)",
        });
    }
    Ok(())
}

/// Evaluate `P^M(start, Φ U^{[0,t]}_{[0,r]} Ψ)` by uniformization.
///
/// `phi` and `psi` are characteristic vectors of the Φ- and Ψ-states; `r`
/// may be `f64::INFINITY` (the reward bound then never binds and the result
/// matches plain time-bounded until).
///
/// # Errors
///
/// [`NumericsError`] for size mismatches, bad parameters, or model problems.
pub fn until_probability(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    r: f64,
    start: usize,
    options: UniformOptions,
) -> Result<UntilResult, NumericsError> {
    validate_inputs(mrm, phi, psi, t, r, start, &options)?;
    if t == 0.0 {
        // At time zero the accumulated reward is zero: the formula holds iff
        // the start state is a Ψ-state.
        return Ok(UntilResult::trivial(if psi[start] { 1.0 } else { 0.0 }));
    }

    // Theorem 4.1: absorb (¬Φ ∨ Ψ)-states.
    let absorb: Vec<bool> = phi.iter().zip(psi).map(|(&p, &q)| !p || q).collect();
    let absorbed = make_absorbing(mrm, &absorb)?;
    let uni = UniformizedMrm::new(&absorbed, options.lambda)?;
    let classes_def = RewardClasses::new(&uni);

    let _span = mrmc_obs::span("path");
    let classes = generate_path_classes(
        &uni,
        &classes_def,
        phi,
        psi,
        start,
        uni.lambda() * t,
        &options,
    );
    record_exploration(start, &classes);
    evaluate_classes(
        &classes,
        &classes_def,
        uni.lambda() * t,
        t,
        r,
        options.parallel.effective_threads(),
    )
}

/// Emit the path-exploration telemetry for one start state (no-op without
/// an installed recorder).
fn record_exploration(start: usize, classes: &PathClasses) {
    mrmc_obs::record(|| mrmc_obs::Event::PathExploration {
        start_state: start as u64,
        explored_nodes: classes.explored_nodes(),
        stored_paths: classes.stored_paths(),
        truncated_paths: classes.truncated_paths(),
        max_depth: classes.max_depth(),
        num_classes: classes.num_classes() as u64,
        truncated_mass: classes.error_bound(),
    });
}

/// Evaluate `P^M(s, Φ U^{[0,t]}_{[0,r]} Ψ)` for **every** state, sharing
/// the absorbed model, its uniformization and the reward-class structure
/// across start states (the per-state work is then only the path
/// exploration itself).
///
/// States satisfying neither Φ nor Ψ get probability zero without any
/// exploration.
///
/// # Errors
///
/// See [`until_probability`].
pub fn until_probabilities_all(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    r: f64,
    options: UniformOptions,
) -> Result<Vec<UntilResult>, NumericsError> {
    validate_inputs(mrm, phi, psi, t, r, 0, &options)?;
    let n = mrm.num_states();
    let zero = |is_psi: bool| UntilResult::trivial(if is_psi { 1.0 } else { 0.0 });
    if t == 0.0 {
        return Ok((0..n).map(|s| zero(psi[s])).collect());
    }

    let absorb: Vec<bool> = phi.iter().zip(psi).map(|(&p, &q)| !p || q).collect();
    let absorbed = make_absorbing(mrm, &absorb)?;
    let uni = UniformizedMrm::new(&absorbed, options.lambda)?;
    let classes_def = RewardClasses::new(&uni);
    let lambda_t = uni.lambda() * t;

    let mut out = Vec::with_capacity(n);
    // Progress is throttled by state count, not wall clock, so the event
    // sequence is reproducible: at most ~100 progress lines per sweep.
    let progress_step = (n as u64).div_ceil(100).max(1);
    for s in 0..n {
        if !phi[s] && !psi[s] {
            out.push(zero(false));
        } else {
            let _span = mrmc_obs::span("path");
            let classes =
                generate_path_classes(&uni, &classes_def, phi, psi, s, lambda_t, &options);
            record_exploration(s, &classes);
            out.push(evaluate_classes(
                &classes,
                &classes_def,
                lambda_t,
                t,
                r,
                options.parallel.effective_threads(),
            )?);
        }
        if (s as u64 + 1).is_multiple_of(progress_step) || s + 1 == n {
            mrmc_obs::record(|| mrmc_obs::Event::Progress {
                phase: "states",
                done: s as u64 + 1,
                total: n as u64,
            });
        }
    }
    Ok(out)
}

/// Evaluate the performability distribution `Pr{Y(t) ≤ r}` from `start`
/// (Eq. 4.4) — no state restriction and no absorbing transformation.
///
/// # Errors
///
/// See [`until_probability`].
pub fn performability(
    mrm: &Mrm,
    t: f64,
    r: f64,
    start: usize,
    options: UniformOptions,
) -> Result<UntilResult, NumericsError> {
    let all = vec![true; mrm.num_states()];
    validate_inputs(mrm, &all, &all, t, r, start, &options)?;
    if t == 0.0 {
        return Ok(UntilResult::trivial(1.0));
    }
    let uni = UniformizedMrm::new(mrm, options.lambda)?;
    let classes_def = RewardClasses::new(&uni);
    let classes = generate_path_classes(
        &uni,
        &classes_def,
        &all,
        &all,
        start,
        uni.lambda() * t,
        &options,
    );
    record_exploration(start, &classes);
    evaluate_classes(
        &classes,
        &classes_def,
        uni.lambda() * t,
        t,
        r,
        options.parallel.effective_threads(),
    )
}

/// Run Algorithm 4.7 (depth-first path generation) and return the aggregated
/// path classes. Exposed publicly so the exploration itself can be tested
/// and benchmarked (Figure 4.3).
///
/// With `options.parallel.threads > 1` the exploration runs on the
/// multi-threaded engine of the [`parallel`] module; the
/// result is bit-for-bit identical to the serial run.
#[allow(clippy::too_many_arguments)]
pub fn generate_path_classes(
    uni: &UniformizedMrm,
    classes_def: &RewardClasses,
    phi: &[bool],
    psi: &[bool],
    start: usize,
    lambda_t: f64,
    options: &UniformOptions,
) -> PathClasses {
    parallel::explore(uni, classes_def, phi, psi, start, lambda_t, options)
}

/// Combine stored path classes into the final probability (Eq. 4.5) using
/// the Omega algorithm for the conditional probabilities (Eq. 4.9).
///
/// Two phases: the per-class terms `ψ_n(Λt)·P(σ)·Ω(r', k)` are pure
/// functions of their class and may be computed by parallel workers
/// ([`parallel::omega_terms`]); the final fold is a single ordered
/// Kahan-compensated sum over classes in `BTreeMap` key order, so the
/// result does not depend on the thread count.
fn evaluate_classes(
    classes: &PathClasses,
    classes_def: &RewardClasses,
    lambda_t: f64,
    t: f64,
    r: f64,
    threads: usize,
) -> Result<UntilResult, NumericsError> {
    let r_min = classes_def.min_state_reward();

    let entries: Vec<_> = classes.iter().collect();
    let requests: Vec<TermRequest<'_>> = entries
        .iter()
        .map(|(key, path_prob)| {
            let n = key.path_length();
            // r' = r/t − r_{K+1} − (1/t)·Σ_i i_i·j_i   (Eq. 4.9/4.10).
            let r_prime = if r.is_infinite() {
                f64::INFINITY
            } else {
                r / t - r_min - classes_def.impulse_total(&key.j) / t
            };
            TermRequest {
                r_prime,
                k: &key.k,
                weight: poisson::pmf(lambda_t, n) * path_prob,
            }
        })
        .collect();
    let terms = parallel::omega_terms(&requests, classes_def.omega_coefficients(), threads)?;

    // First-order floating-point error model alongside the Eq. 4.5 fold:
    // each term `ψ_n(Λt)·P(σ)·Ω(r', k)` is produced by O(n + L) operations
    // (L omega coefficients, the pmf product, the r' setup), each bounded
    // relative to the term's magnitude; the compensated fold itself adds at
    // most `2ε` per unit of summed magnitude, and the log-space Poisson pmf
    // carries ~1e-13 relative error from the Lanczos `ln_gamma` — budgeted
    // at 1e-12 for headroom. Pure post-processing of the ordered term list,
    // so the parallel-determinism guarantee is untouched.
    let eps = f64::EPSILON;
    let num_coeffs = classes_def.omega_coefficients().len() as f64;
    let mut probability = KahanSum::new();
    let mut float_accumulation = 0.0;
    let mut magnitude = 0.0;
    for (term, (key, _)) in terms.iter().zip(&entries) {
        probability.add(*term);
        let ops = key.path_length() as f64 + num_coeffs + 2.0;
        float_accumulation += term.abs() * ops * eps;
        magnitude += term.abs();
    }
    float_accumulation += (2.0 * eps + 1e-12) * magnitude;

    let budget = ErrorBudget {
        path_truncation: classes.error_bound(),
        float_accumulation,
        ..ErrorBudget::zero()
    };
    Ok(UntilResult {
        probability: probability.value().clamp(0.0, 1.0),
        error_bound: classes.error_bound(),
        budget,
        num_classes: classes.num_classes(),
        explored_nodes: classes.explored_nodes(),
        stored_paths: classes.stored_paths(),
        truncated_paths: classes.truncated_paths(),
        max_depth: classes.max_depth(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_mrm::{ImpulseRewards, StateRewards};

    fn wavelan() -> Mrm {
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 0.1);
        b.transition(1, 0, 0.05).transition(1, 2, 5.0);
        b.transition(2, 1, 12.0)
            .transition(2, 3, 1.5)
            .transition(2, 4, 0.75);
        b.transition(3, 2, 10.0);
        b.transition(4, 2, 15.0);
        b.label(0, "off");
        b.label(1, "sleep");
        b.label(2, "idle");
        b.label(3, "busy");
        b.label(4, "busy");
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![0.0, 80.0, 1319.0, 1675.0, 1425.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(0, 1, 0.02).unwrap();
        iota.set(1, 2, 0.32975).unwrap();
        iota.set(2, 3, 0.42545).unwrap();
        iota.set(2, 4, 0.36195).unwrap();
        Mrm::new(ctmc, rho, iota).unwrap()
    }

    /// A two-state chain 0 →(λ) 1 with 1 absorbing.
    fn two_state(lambda: f64) -> Mrm {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, lambda);
        b.label(0, "a");
        b.label(1, "goal");
        Mrm::without_rewards(b.build().unwrap())
    }

    #[test]
    fn reward_free_until_matches_exponential_cdf() {
        let m = two_state(2.0);
        let phi = vec![true, true];
        let psi = vec![false, true];
        for &t in &[0.1, 0.5, 1.0, 2.0] {
            let res = until_probability(
                &m,
                &phi,
                &psi,
                t,
                f64::INFINITY,
                0,
                UniformOptions::new().with_truncation(1e-12),
            )
            .unwrap();
            let expect = 1.0 - (-2.0 * t).exp();
            assert!(
                (res.probability - expect).abs() < 1e-8,
                "t = {t}: {} vs {expect} (err bound {})",
                res.probability,
                res.error_bound
            );
        }
    }

    #[test]
    fn example_3_6_until_with_rewards() {
        // P(3, idle U^[0,2]_[0,2000] busy) = 0.15789… (closed form in the
        // thesis; the reward bound permits staying idle for up to
        // a ≈ 1.516 h before jumping).
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        // e^{-Λt} ≈ 4e-13 bounds every P(σ, t) from above at the root, so
        // the truncation probability must sit well below it.
        let res = until_probability(
            &m,
            &phi,
            &psi,
            2.0,
            2000.0,
            2,
            UniformOptions::new()
                .with_truncation(1e-16)
                .with_lambda(14.25),
        )
        .unwrap();
        assert!(
            (res.probability - 0.15789).abs() < 2e-4,
            "got {} (error bound {})",
            res.probability,
            res.error_bound
        );
    }

    #[test]
    fn example_3_6_without_reward_bound_is_larger() {
        // Without the reward bound the probability is
        // (λ_IR + λ_IT)/E(3) · (1 − e^{−E(3)·2}) ≈ 0.157894…
        // With the generous bound of 2000 the values are extremely close;
        // with a small bound the probability drops.
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let opts = UniformOptions::new()
            .with_truncation(1e-17)
            .with_lambda(14.25);
        let generous = until_probability(&m, &phi, &psi, 2.0, f64::INFINITY, 2, opts)
            .unwrap()
            .probability;
        let tight = until_probability(&m, &phi, &psi, 2.0, 700.0, 2, opts)
            .unwrap()
            .probability;
        let tiny = until_probability(&m, &phi, &psi, 2.0, 0.3, 2, opts)
            .unwrap()
            .probability;
        assert!(tight < generous);
        assert!(tiny < tight);
        // With r = 0.3 even a single impulse (0.42545) exceeds the bound
        // unless the jump happens at reward < 0.3 − impulse < 0: impossible.
        assert!(tiny < 1e-9, "tiny = {tiny}");
    }

    #[test]
    fn psi_start_state_counts_when_it_stays() {
        // Starting in a Ψ-state: the until holds if we are still there at
        // time t — in the absorbed model, always (Ψ-states are absorbing).
        let m = two_state(1.0);
        let phi = vec![true, true];
        let psi = vec![false, true];
        let res = until_probability(&m, &phi, &psi, 1.0, f64::INFINITY, 1, UniformOptions::new())
            .unwrap();
        assert!((res.probability - 1.0).abs() < 1e-7);
    }

    #[test]
    fn dead_start_state_gives_zero() {
        let m = two_state(1.0);
        let phi = vec![false, false];
        let psi = vec![false, true];
        let res = until_probability(&m, &phi, &psi, 1.0, 10.0, 0, UniformOptions::new()).unwrap();
        assert_eq!(res.probability, 0.0);
        assert_eq!(res.explored_nodes, 0);
    }

    #[test]
    fn t_zero_is_membership_test() {
        let m = two_state(1.0);
        let phi = vec![true, true];
        let psi = vec![false, true];
        let r0 = until_probability(&m, &phi, &psi, 0.0, 5.0, 0, UniformOptions::new()).unwrap();
        assert_eq!(r0.probability, 0.0);
        let r1 = until_probability(&m, &phi, &psi, 0.0, 5.0, 1, UniformOptions::new()).unwrap();
        assert_eq!(r1.probability, 1.0);
    }

    #[test]
    fn tighter_truncation_reduces_error_bound() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let loose = until_probability(
            &m,
            &phi,
            &psi,
            0.5,
            2000.0,
            2,
            UniformOptions::new().with_truncation(1e-5),
        )
        .unwrap();
        let tight = until_probability(
            &m,
            &phi,
            &psi,
            0.5,
            2000.0,
            2,
            UniformOptions::new().with_truncation(1e-10),
        )
        .unwrap();
        assert!(tight.error_bound < loose.error_bound);
        assert!(tight.explored_nodes >= loose.explored_nodes);
        // Both estimates agree within the looser error bound.
        assert!((tight.probability - loose.probability).abs() <= loose.error_bound + 1e-12);
    }

    #[test]
    fn probability_is_monotone_in_reward_bound() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let opts = UniformOptions::new()
            .with_truncation(1e-15)
            .with_lambda(14.25);
        let mut prev = 0.0;
        for &r in &[0.0, 100.0, 500.0, 1000.0, 2000.0, 5000.0] {
            let p = until_probability(&m, &phi, &psi, 2.0, r, 2, opts)
                .unwrap()
                .probability;
            assert!(p + 1e-9 >= prev, "r = {r}: {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn performability_distribution_is_monotone_and_reaches_one() {
        // Path exploration on the *un-absorbed* model is exponential in Λt
        // (the thesis' own complexity caveat), so keep the horizon short.
        let m = wavelan();
        let opts = UniformOptions::new().with_truncation(1e-7);
        // Pr{Y(0.2) ≤ r} from the sleep state (state 1).
        let mut prev = 0.0;
        for &r in &[0.0, 10.0, 50.0, 200.0, 1000.0] {
            let p = performability(&m, 0.2, r, 1, opts).unwrap().probability;
            assert!(p + 1e-9 >= prev, "r = {r}");
            prev = p;
        }
        let total = performability(&m, 0.2, f64::INFINITY, 1, opts).unwrap();
        assert!(
            (total.probability - 1.0).abs() <= total.error_bound + 1e-6,
            "{} vs error {}",
            total.probability,
            total.error_bound
        );
    }

    #[test]
    fn figure_4_3_exploration_order_and_classes() {
        // Make (¬idle ∨ busy)-states absorbing and explore from state 3
        // (0-indexed 2) to depth 2 — the setting of Figure 4.3.
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let absorb: Vec<bool> = phi.iter().zip(&psi).map(|(&p, &q)| !p || q).collect();
        let absorbed = make_absorbing(&m, &absorb).unwrap();
        let uni = UniformizedMrm::new(&absorbed, None).unwrap();
        let rc = RewardClasses::new(&uni);
        let opts = UniformOptions {
            truncation: 1e-30,
            max_depth: 2,
            ..UniformOptions::new()
        };
        let classes = generate_path_classes(&uni, &rc, &phi, &psi, 2, uni.lambda() * 1.0, &opts);
        // Paths of length ≤ 2 ending in busy: 3→4, 3→5, 3→3→4, 3→3→5
        // (3→4→4 and 3→5→5 continue via the absorbing self-loops).
        assert!(classes.stored_paths() >= 4);
        assert!(classes.num_classes() >= 2);
        // The truncated frontier contributes error mass.
        assert!(classes.error_bound() > 0.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let m = two_state(1.0);
        let phi = vec![true, true];
        let psi = vec![false, true];
        assert!(matches!(
            until_probability(&m, &[true], &psi, 1.0, 1.0, 0, UniformOptions::new()),
            Err(NumericsError::SizeMismatch { .. })
        ));
        assert!(matches!(
            until_probability(&m, &phi, &psi, -1.0, 1.0, 0, UniformOptions::new()),
            Err(NumericsError::InvalidParameter { name: "t", .. })
        ));
        assert!(matches!(
            until_probability(&m, &phi, &psi, 1.0, -1.0, 0, UniformOptions::new()),
            Err(NumericsError::InvalidParameter { name: "r", .. })
        ));
        assert!(matches!(
            until_probability(
                &m,
                &phi,
                &psi,
                1.0,
                1.0,
                0,
                UniformOptions::new().with_truncation(0.0)
            ),
            Err(NumericsError::InvalidParameter {
                name: "truncation",
                ..
            })
        ));
        assert!(matches!(
            until_probability(&m, &phi, &psi, 1.0, 1.0, 9, UniformOptions::new()),
            Err(NumericsError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn improved_pruning_rescues_large_lambda_t() {
        // At t = 2 with Λ ≈ 14.5, e^{−Λt} < 1e-12: the literal rule prunes
        // the root and returns 0 with error bound 1; the potential rule
        // still recovers the probability.
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let literal = until_probability(
            &m,
            &phi,
            &psi,
            2.0,
            2000.0,
            2,
            UniformOptions::new().with_truncation(1e-12),
        )
        .unwrap();
        assert_eq!(literal.probability, 0.0);
        assert_eq!(literal.error_bound, 1.0);

        let improved = until_probability(
            &m,
            &phi,
            &psi,
            2.0,
            2000.0,
            2,
            UniformOptions::new()
                .with_truncation(1e-12)
                .with_improved_pruning(),
        )
        .unwrap();
        assert!(
            (improved.probability - 0.15789).abs() < 1e-3,
            "got {}",
            improved.probability
        );
    }

    #[test]
    fn explicit_lambda_matches_automatic() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let auto = until_probability(
            &m,
            &phi,
            &psi,
            1.0,
            2000.0,
            2,
            UniformOptions::new().with_truncation(1e-11),
        )
        .unwrap();
        let pinned = until_probability(
            &m,
            &phi,
            &psi,
            1.0,
            2000.0,
            2,
            UniformOptions::new()
                .with_truncation(1e-11)
                .with_lambda(20.0),
        )
        .unwrap();
        assert!(
            (auto.probability - pinned.probability).abs()
                <= auto.error_bound + pinned.error_bound + 1e-9
        );
    }
}

#[cfg(test)]
mod all_states_tests {
    use super::*;
    use mrmc_ctmc::CtmcBuilder;

    #[test]
    fn all_states_matches_per_state_calls() {
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1.0)
            .transition(0, 2, 0.5)
            .transition(1, 2, 2.0);
        b.label(0, "a").label(1, "a").label(2, "goal");
        let m = Mrm::without_rewards(b.build().unwrap());
        let phi = m.labeling().states_with("a");
        let psi = m.labeling().states_with("goal");
        let opts = UniformOptions::new().with_truncation(1e-11);
        let all = until_probabilities_all(&m, &phi, &psi, 1.0, 50.0, opts).unwrap();
        for (s, combined) in all.iter().enumerate() {
            let single = until_probability(&m, &phi, &psi, 1.0, 50.0, s, opts).unwrap();
            assert_eq!(*combined, single, "state {s}");
        }
    }

    #[test]
    fn all_states_skips_dead_states() {
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1.0).transition(1, 2, 1.0);
        b.label(2, "goal");
        let m = Mrm::without_rewards(b.build().unwrap());
        // Φ excludes state 1 entirely.
        let phi = vec![true, false, true];
        let psi = vec![false, false, true];
        let opts = UniformOptions::new();
        let all = until_probabilities_all(&m, &phi, &psi, 1.0, 1.0, opts).unwrap();
        assert_eq!(all[1].probability, 0.0);
        assert_eq!(all[1].explored_nodes, 0);
        // t = 0 short-circuit: membership test.
        let t0 = until_probabilities_all(&m, &phi, &psi, 0.0, 1.0, opts).unwrap();
        assert_eq!(t0[2].probability, 1.0);
        assert_eq!(t0[0].probability, 0.0);
    }
}
