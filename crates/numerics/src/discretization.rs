//! Discretization-based evaluation of time- and reward-bounded until
//! (Section 4.4.1 and Algorithm 4.6).
//!
//! Both time and accumulated reward are discretized with the same step `d`.
//! `F^j(s, k)` is the probability density of being in state `s` at time
//! `j·d` with accumulated reward `k·d`; the recursion adds the self term
//! (no transition in the last step) and one term per incoming transition,
//! with the impulse reward shifting the reward index by `ι/d` cells.
//!
//! State rewards must be integers after scaling (the reward index advances
//! by `ρ(s)` cells per step); the engine finds a power-of-ten scale
//! automatically and rescales the bound accordingly.

use mrmc_mrm::{transform::make_absorbing, Mrm};

use crate::budget::ErrorBudget;
use crate::error::NumericsError;

/// Options for the discretization engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscretizationOptions {
    /// The step size `d` (in time units). Must satisfy `d ≤ 1/max_s E(s)` so
    /// `1 − E(s)·d` stays a probability.
    pub step: f64,
    /// Upper bound on the reward grid size (memory guard). Default `5·10^7`
    /// cells per state.
    pub max_cells: usize,
    /// Run a Richardson companion at step `2d` to estimate the
    /// discretization error a posteriori (default). The companion grid is
    /// half as wide and half as deep, so it costs about a quarter of the
    /// main run; disabling it falls back to a coarse a-priori bound.
    pub estimate_error: bool,
    /// Worker threads for the per-step grid sweep (`0` = the host's
    /// available parallelism, `1` = serial, the default). Each worker
    /// computes a disjoint block of destination state rows, so the result
    /// is bit-identical at every thread count.
    pub threads: usize,
}

impl DiscretizationOptions {
    /// Use step size `d` with the default memory guard, a-posteriori
    /// error estimation and a serial grid sweep.
    pub fn with_step(step: f64) -> Self {
        DiscretizationOptions {
            step,
            max_cells: 50_000_000,
            estimate_error: true,
            threads: 1,
        }
    }

    /// Skip the Richardson companion run; the budget then carries the
    /// coarse a-priori step-error bound instead of the sharper estimate.
    pub fn without_error_estimate(mut self) -> Self {
        self.estimate_error = false;
        self
    }

    /// Sweep the grid with `threads` workers (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The outcome of a discretization run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscretizationResult {
    /// The computed probability, clamped into `[0, 1]`.
    pub probability: f64,
    /// The error decomposition. `budget.discretization` is the Richardson
    /// step-doubling estimate `2·|P_d − P_{2d}|` when the companion run was
    /// possible (the scheme is first-order, so `P_d − P_{2d} ≈ C·d` and the
    /// doubled gap over-covers the remaining error of `P_d`); otherwise a
    /// coarse a-priori bound `min(E_max²·t·d, 1)`.
    pub budget: ErrorBudget,
    /// Number of time steps `T = t/d` performed.
    pub time_steps: usize,
    /// Number of reward cells `R = r/d` (after scaling).
    pub reward_cells: usize,
    /// The power-of-ten factor applied to make state rewards integral.
    pub reward_scale: f64,
}

/// Find a power-of-ten scale making every reward integral (within `1e-9`
/// relative tolerance).
fn integer_scale(rewards: &[f64]) -> Result<f64, NumericsError> {
    'scales: for exp in 0..=6 {
        let scale = 10f64.powi(exp);
        for &r in rewards {
            let scaled = r * scale;
            if (scaled - scaled.round()).abs() > 1e-9 * (1.0 + scaled.abs()) {
                continue 'scales;
            }
        }
        return Ok(scale);
    }
    let offending = rewards
        .iter()
        .copied()
        .find(|r| {
            let s = r * 1e6;
            (s - s.round()).abs() > 1e-9 * (1.0 + s.abs())
        })
        .unwrap_or(f64::NAN);
    Err(NumericsError::NonIntegerRewards { reward: offending })
}

/// Evaluate `P^M(start, Φ U^{[0,t]}_{[0,r]} Ψ)` by discretization
/// (Algorithm 4.6).
///
/// # Errors
///
/// [`NumericsError`] for size mismatches, an unstable or degenerate step
/// size, rewards that cannot be scaled to integers, or a reward grid
/// exceeding the memory guard.
pub fn until_probability(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    r: f64,
    start: usize,
    options: DiscretizationOptions,
) -> Result<DiscretizationResult, NumericsError> {
    let n = mrm.num_states();
    if phi.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: phi.len(),
        });
    }
    if psi.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: psi.len(),
        });
    }
    if start >= n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: start,
        });
    }
    if !(t.is_finite() && t > 0.0) {
        return Err(NumericsError::InvalidParameter {
            name: "t",
            value: t,
            requirement: "must be finite and positive",
        });
    }
    if !(r.is_finite() && r >= 0.0) {
        return Err(NumericsError::InvalidParameter {
            name: "r",
            value: r,
            requirement: "must be finite and non-negative (use the uniformization engine for unbounded rewards)",
        });
    }
    let d = options.step;
    if !(d.is_finite() && d > 0.0 && d <= t) {
        return Err(NumericsError::InvalidParameter {
            name: "step",
            value: d,
            requirement: "must be positive and at most t",
        });
    }

    // Theorem 4.1: absorb (¬Φ ∨ Ψ)-states, then evaluate
    // Pr{Y(t) ≤ r, X(t) ⊨ Ψ}.
    let _span = mrmc_obs::span("grid");
    let absorb: Vec<bool> = phi.iter().zip(psi).map(|(&p, &q)| !p || q).collect();
    let absorbed = make_absorbing(mrm, &absorb)?;
    let exit = absorbed.ctmc().exit_rates();
    let max_exit = exit.iter().fold(0.0_f64, |m, &e| m.max(e));
    let stable_limit = if max_exit > 0.0 {
        1.0 / max_exit
    } else {
        f64::INFINITY
    };
    if d > stable_limit {
        return Err(NumericsError::InvalidParameter {
            name: "step",
            value: d,
            requirement: "must be at most 1/max exit rate for stability",
        });
    }

    let scale = integer_scale(absorbed.state_rewards().as_slice())?;
    let grid = GridProblem {
        absorbed: &absorbed,
        psi,
        start,
        t,
        r,
        scale,
        max_cells: options.max_cells,
        threads: options.threads,
    };
    let (probability, time_steps, reward_cells) = evolve_grid(&grid, d)?;
    mrmc_obs::record(|| mrmc_obs::Event::DiscretizationGrid {
        time_steps: time_steps as u64,
        reward_cells: reward_cells as u64,
        reward_scale: scale,
        step: d,
    });

    // A-posteriori step error: Richardson companion at 2d where the
    // doubled step is still stable and fits the horizon; otherwise a
    // coarse a-priori bound from the per-step local truncation error
    // O((E·d)²) accumulated over t/d steps.
    let a_priori = (max_exit * max_exit * t * d).min(1.0);
    let discretization = if options.estimate_error && 2.0 * d <= stable_limit && 2.0 * d <= t {
        match evolve_grid(&grid, 2.0 * d) {
            Ok((coarse, _, _)) => 2.0 * (probability - coarse).abs(),
            Err(_) => a_priori,
        }
    } else {
        a_priori
    };
    // Per step, each density cell receives one self term plus the incoming
    // transition terms — first-order rounding model on an O(1) total mass.
    let ops_per_step = 2.0 + absorbed.ctmc().rates().nnz() as f64 / n as f64;
    let budget = ErrorBudget {
        discretization,
        float_accumulation: f64::EPSILON * time_steps as f64 * ops_per_step,
        ..ErrorBudget::zero()
    };

    Ok(DiscretizationResult {
        probability,
        budget,
        time_steps,
        reward_cells,
        reward_scale: scale,
    })
}

/// The fixed part of a discretization run: everything except the step size.
struct GridProblem<'a> {
    absorbed: &'a Mrm,
    psi: &'a [bool],
    start: usize,
    t: f64,
    r: f64,
    scale: f64,
    max_cells: usize,
    threads: usize,
}

/// One incoming transition of a destination row: source state, `rate·d`,
/// and the reward shift in cells.
#[derive(Debug, Clone, Copy)]
struct Incoming {
    from: usize,
    rate_d: f64,
    shift: usize,
}

/// Compute one destination row of the next grid layer from the current
/// layer: the self term (stay in `to` for another `d` time units) followed
/// by every incoming transition in ascending source order.
///
/// Each cell's terms are accumulated in the same fixed order no matter
/// which worker runs the row, so the sweep is bit-identical at every
/// thread count.
#[allow(clippy::too_many_arguments)] // the sweep's full per-row context
fn update_row(
    to: usize,
    dst: &mut [f64],
    current: &[f64],
    width: usize,
    reward_cells: usize,
    stay: f64,
    rho_to: usize,
    incoming: &[Incoming],
) {
    dst.fill(0.0);
    if stay != 0.0 && rho_to <= reward_cells {
        let src = &current[to * width..(to + 1) * width];
        for k in rho_to..width {
            dst[k] += src[k - rho_to] * stay;
        }
    }
    for &Incoming {
        from,
        rate_d,
        shift,
    } in incoming
    {
        if shift > reward_cells {
            continue;
        }
        let src = &current[from * width..(from + 1) * width];
        for k in shift..width {
            dst[k] += src[k - shift] * rate_d;
        }
    }
}

/// Run Algorithm 4.6 on the absorbed model with step `d`, returning the
/// clamped probability, the time-step count and the reward-cell count.
/// Factored out of [`until_probability`] so the Richardson companion can
/// re-run the same problem at `2d`.
///
/// The density grid is one flat `n·width` buffer (state-major), double
/// buffered. Transitions are stored incoming-major: each destination row
/// depends only on the *current* layer, so rows of the next layer are
/// independent and the sweep parallelizes over disjoint row blocks with no
/// reduction step at all — and since every row accumulates its terms in a
/// fixed order (self term, then sources ascending), the computed grid is
/// bit-identical at every thread count.
fn evolve_grid(g: &GridProblem<'_>, d: f64) -> Result<(f64, usize, usize), NumericsError> {
    let n = g.absorbed.num_states();
    let exit = g.absorbed.ctmc().exit_rates();
    let cells = ((g.r * g.scale) / d).floor();
    if !(cells.is_finite() && cells >= 0.0) || cells as usize > g.max_cells {
        return Err(NumericsError::InvalidParameter {
            name: "step",
            value: d,
            requirement: "reward grid exceeds the memory guard; increase d or max_cells",
        });
    }
    let reward_cells = cells as usize;
    let time_steps = (g.t / d).round().max(1.0) as usize;

    // Per-state reward advance (cells per step) and stay probability.
    let rho: Vec<usize> = g
        .absorbed
        .state_rewards()
        .as_slice()
        .iter()
        .map(|&x| (x * g.scale).round() as usize)
        .collect();
    let stay: Vec<f64> = exit.iter().map(|&e| 1.0 - e * d).collect();
    // Incoming-major transition lists. `rates.iter()` is row-major (source
    // ascending), so each destination's list comes out sorted by source —
    // the accumulation order `update_row` promises.
    let rates = g.absorbed.ctmc().rates();
    let mut incoming: Vec<Vec<Incoming>> = vec![Vec::new(); n];
    for (from, to, rate) in rates.iter() {
        let shift =
            rho[from] + ((g.absorbed.impulse_reward(from, to) * g.scale) / d).round() as usize;
        incoming[to].push(Incoming {
            from,
            rate_d: rate * d,
            shift,
        });
    }

    // Double-buffered flat density F[s·width + k].
    let width = reward_cells + 1;
    let mut current = vec![0.0f64; n * width];
    let mut next = vec![0.0f64; n * width];
    if rho[g.start] <= reward_cells {
        current[g.start * width + rho[g.start]] = 1.0 / d;
    }

    let threads = if g.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        g.threads
    };
    // Rows per worker block; below 2 blocks the scope overhead cannot pay off.
    let block_rows = n.div_ceil(threads.max(1));
    let parallel = threads > 1 && block_rows < n;

    // Progress is throttled by step count (at most ~100 events per run) so
    // the emitted sequence is reproducible run-to-run.
    let progress_step = (time_steps as u64).div_ceil(100).max(1);
    for step_index in 1..time_steps {
        if (step_index as u64).is_multiple_of(progress_step) {
            mrmc_obs::record(|| mrmc_obs::Event::Progress {
                phase: "grid",
                done: step_index as u64,
                total: time_steps as u64,
            });
        }
        if parallel {
            // Disjoint contiguous row blocks of the next layer, one worker
            // each; all reads go to the immutable current layer.
            let src = &current[..];
            std::thread::scope(|scope| {
                for (block, dst_block) in next.chunks_mut(block_rows * width).enumerate() {
                    let (rho, stay, incoming) = (&rho, &stay, &incoming);
                    scope.spawn(move || {
                        let base = block * block_rows;
                        for (i, dst) in dst_block.chunks_mut(width).enumerate() {
                            let to = base + i;
                            update_row(
                                to,
                                dst,
                                src,
                                width,
                                reward_cells,
                                stay[to],
                                rho[to],
                                &incoming[to],
                            );
                        }
                    });
                }
            });
        } else {
            for (to, dst) in next.chunks_mut(width).enumerate() {
                update_row(
                    to,
                    dst,
                    &current,
                    width,
                    reward_cells,
                    stay[to],
                    rho[to],
                    &incoming[to],
                );
            }
        }
        std::mem::swap(&mut current, &mut next);
    }

    let mut probability = 0.0;
    for (row, &in_psi) in current.chunks(width).zip(g.psi.iter()).take(n) {
        if in_psi {
            probability += row.iter().sum::<f64>() * d;
        }
    }
    Ok((probability.clamp(0.0, 1.0), time_steps, reward_cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniformization::{self, UniformOptions};
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_mrm::{ImpulseRewards, StateRewards};

    fn wavelan() -> Mrm {
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 0.1);
        b.transition(1, 0, 0.05).transition(1, 2, 5.0);
        b.transition(2, 1, 12.0)
            .transition(2, 3, 1.5)
            .transition(2, 4, 0.75);
        b.transition(3, 2, 10.0);
        b.transition(4, 2, 15.0);
        b.label(2, "idle");
        b.label(3, "busy");
        b.label(4, "busy");
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![0.0, 80.0, 1319.0, 1675.0, 1425.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(2, 3, 0.42545).unwrap();
        iota.set(2, 4, 0.36195).unwrap();
        Mrm::new(ctmc, rho, iota).unwrap()
    }

    #[test]
    fn example_3_6_by_discretization() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let res = until_probability(
            &m,
            &phi,
            &psi,
            2.0,
            2000.0,
            2,
            DiscretizationOptions::with_step(1.0 / 64.0),
        )
        .unwrap();
        // Closed form 0.15789; discretization error is O(d).
        assert!(
            (res.probability - 0.15789).abs() < 0.02,
            "got {}",
            res.probability
        );
        assert_eq!(res.time_steps, 128);
    }

    #[test]
    fn halving_d_converges_toward_uniformization() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let reference = uniformization::until_probability(
            &m,
            &phi,
            &psi,
            2.0,
            2000.0,
            2,
            UniformOptions::new().with_truncation(1e-13),
        )
        .unwrap()
        .probability;

        let mut errors = Vec::new();
        for &d in &[1.0 / 16.0, 1.0 / 32.0, 1.0 / 64.0] {
            let p = until_probability(
                &m,
                &phi,
                &psi,
                2.0,
                2000.0,
                2,
                DiscretizationOptions::with_step(d),
            )
            .unwrap()
            .probability;
            errors.push((p - reference).abs());
        }
        assert!(
            errors[2] < errors[0],
            "errors should shrink with d: {errors:?}"
        );
        assert!(errors[2] < 0.01, "final error too large: {errors:?}");
    }

    #[test]
    fn grid_sweep_is_bitwise_identical_across_thread_counts() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let base = DiscretizationOptions::with_step(1.0 / 64.0);
        let serial = until_probability(&m, &phi, &psi, 2.0, 2000.0, 2, base).unwrap();
        for threads in [2, 4, 8, 0] {
            let par = until_probability(&m, &phi, &psi, 2.0, 2000.0, 2, base.with_threads(threads))
                .unwrap();
            assert_eq!(
                serial.probability.to_bits(),
                par.probability.to_bits(),
                "threads = {threads}"
            );
            assert_eq!(
                serial.budget.discretization.to_bits(),
                par.budget.discretization.to_bits(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn reward_free_model_matches_exponential() {
        // 0 →(2) 1 absorbing, no rewards: P(tt U^[0,t]_[0,r] goal) with any
        // r ≥ 0 equals 1 − e^{−2t}.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 2.0);
        b.label(1, "goal");
        let m = Mrm::without_rewards(b.build().unwrap());
        let phi = vec![true, true];
        let psi = vec![false, true];
        let res = until_probability(
            &m,
            &phi,
            &psi,
            1.0,
            10.0,
            0,
            DiscretizationOptions::with_step(1.0 / 256.0),
        )
        .unwrap();
        let expect = 1.0 - (-2.0f64).exp();
        assert!(
            (res.probability - expect).abs() < 0.01,
            "{}",
            res.probability
        );
    }

    #[test]
    fn fractional_rewards_are_scaled() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0);
        b.label(1, "goal");
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![0.25, 0.0]).unwrap();
        let m = Mrm::new(ctmc, rho, ImpulseRewards::new()).unwrap();
        let phi = vec![true, true];
        let psi = vec![false, true];
        let res = until_probability(
            &m,
            &phi,
            &psi,
            1.0,
            100.0,
            0,
            DiscretizationOptions::with_step(1.0 / 64.0),
        )
        .unwrap();
        assert_eq!(res.reward_scale, 100.0);
        assert!(res.probability > 0.5);
    }

    #[test]
    fn irrational_rewards_rejected() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0);
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![std::f64::consts::PI, 0.0]).unwrap();
        let m = Mrm::new(ctmc, rho, ImpulseRewards::new()).unwrap();
        let phi = vec![true, true];
        let psi = vec![false, true];
        assert!(matches!(
            until_probability(
                &m,
                &phi,
                &psi,
                1.0,
                10.0,
                0,
                DiscretizationOptions::with_step(0.1),
            ),
            Err(NumericsError::NonIntegerRewards { .. })
        ));
    }

    #[test]
    fn unstable_step_rejected() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        // max exit rate of the absorbed model is 14.25: d = 0.1 > 1/14.25.
        assert!(matches!(
            until_probability(
                &m,
                &phi,
                &psi,
                2.0,
                100.0,
                2,
                DiscretizationOptions::with_step(0.1),
            ),
            Err(NumericsError::InvalidParameter { name: "step", .. })
        ));
    }

    #[test]
    fn bad_parameters_rejected() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let opts = DiscretizationOptions::with_step(0.01);
        assert!(until_probability(&m, &phi, &psi, 0.0, 1.0, 2, opts).is_err());
        assert!(until_probability(&m, &phi, &psi, 1.0, f64::INFINITY, 2, opts).is_err());
        assert!(until_probability(&m, &phi, &psi, 1.0, -1.0, 2, opts).is_err());
        assert!(until_probability(&m, &[true], &psi, 1.0, 1.0, 2, opts).is_err());
        assert!(until_probability(&m, &phi, &psi, 1.0, 1.0, 99, opts).is_err());
        // Step larger than t.
        assert!(until_probability(
            &m,
            &phi,
            &psi,
            0.001,
            1.0,
            2,
            DiscretizationOptions::with_step(0.01)
        )
        .is_err());
    }

    #[test]
    fn memory_guard_triggers() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let mut opts = DiscretizationOptions::with_step(0.01);
        opts.max_cells = 10;
        assert!(matches!(
            until_probability(&m, &phi, &psi, 2.0, 2000.0, 2, opts),
            Err(NumericsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn tight_reward_bound_suppresses_probability() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let tight = until_probability(
            &m,
            &phi,
            &psi,
            2.0,
            1.0,
            2,
            DiscretizationOptions::with_step(1.0 / 64.0),
        )
        .unwrap()
        .probability;
        // Idle earns 1319/h: reward 1 is exhausted almost immediately.
        assert!(tight < 0.01, "tight = {tight}");
    }
}
