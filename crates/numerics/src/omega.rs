//! The Omega algorithm (Algorithm 4.8): the distribution of a linear
//! combination of uniform order statistics, after Diniz, de Souza e Silva &
//! Gail `[Din02]`.
//!
//! Given distinct coefficients `c_1 > c_2 > … > c_S ≥ 0` and counts
//! `k = ⟨k_1, …, k_S⟩`, the evaluator computes
//!
//! ```text
//! Ω(r, k) = Pr{ Σ_l c_l · L_l ≤ r }
//! ```
//!
//! where `L_l` is the sum of `k_l` of the `n + 1` spacings of `n` i.i.d.
//! uniforms on `(0, 1)` (`Σ_l k_l = n + 1`). All arithmetic stays within
//! convex combinations of values in `[0, 1]`, which is what makes the
//! recursion numerically stable — the property the thesis relies on.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::NumericsError;

/// Memoizing evaluator for `Ω(r, k)` over a fixed coefficient list.
///
/// The cache is keyed on `(bits of r, k)` and shared across calls, which is
/// essential when evaluating many path classes that differ only in their
/// impulse totals (each impulse total produces a different effective `r`).
#[derive(Debug, Clone)]
pub struct OmegaEvaluator {
    coeffs: Vec<f64>,
    memo: HashMap<(u64, Box<[u32]>), f64>,
    depth: u64,
    max_depth: u64,
}

impl OmegaEvaluator {
    /// Create an evaluator for strictly decreasing, non-negative, finite
    /// coefficients.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidParameter`] when the list is empty, contains
    /// non-finite/negative values, or is not strictly decreasing.
    pub fn new(coeffs: Vec<f64>) -> Result<Self, NumericsError> {
        if coeffs.is_empty() {
            return Err(NumericsError::InvalidParameter {
                name: "coefficients",
                value: 0.0,
                requirement: "must be non-empty",
            });
        }
        for (i, &c) in coeffs.iter().enumerate() {
            if !(c.is_finite() && c >= 0.0) {
                return Err(NumericsError::InvalidParameter {
                    name: "coefficients",
                    value: c,
                    requirement: "must be finite and non-negative",
                });
            }
            if i > 0 && coeffs[i - 1] <= c {
                return Err(NumericsError::InvalidParameter {
                    name: "coefficients",
                    value: c,
                    requirement: "must be strictly decreasing",
                });
            }
        }
        Ok(OmegaEvaluator {
            coeffs,
            memo: HashMap::new(),
            depth: 0,
            max_depth: 0,
        })
    }

    /// The coefficient list `c_1 > … > c_S`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Number of memoized entries (exposed for the ablation benchmarks).
    pub fn cache_len(&self) -> usize {
        self.memo.len()
    }

    /// Deepest `Ω` recursion reached across all evaluations so far
    /// (exposed for telemetry; purely observational).
    pub fn max_recursion_depth(&self) -> u64 {
        self.max_depth
    }

    /// Evaluate `Ω(r, counts)`.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from the coefficient count or `r` is
    /// NaN.
    pub fn evaluate(&mut self, r: f64, counts: &[u32]) -> f64 {
        assert_eq!(
            counts.len(),
            self.coeffs.len(),
            "counts must align with coefficients"
        );
        assert!(!r.is_nan(), "threshold must not be NaN");
        // Fast paths: everything below r (Ω = 1) or everything above (Ω = 0).
        let mut any_greater = false;
        let mut any_leq = false;
        for (l, &c) in self.coeffs.iter().enumerate() {
            if counts[l] == 0 {
                continue;
            }
            if c > r {
                any_greater = true;
            } else {
                any_leq = true;
            }
        }
        if !any_greater {
            return 1.0;
        }
        if !any_leq {
            return 0.0;
        }
        self.eval_rec(r, counts)
    }

    fn eval_rec(&mut self, r: f64, counts: &[u32]) -> f64 {
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        let v = self.eval_body(r, counts);
        self.depth -= 1;
        v
    }

    fn eval_body(&mut self, r: f64, counts: &[u32]) -> f64 {
        // Base cases: one side empty.
        let mut greater_total = 0u64;
        let mut leq_total = 0u64;
        let mut pivot_g = usize::MAX;
        let mut pivot_l = usize::MAX;
        for (l, &c) in self.coeffs.iter().enumerate() {
            if counts[l] == 0 {
                continue;
            }
            if c > r {
                greater_total += u64::from(counts[l]);
                // Deterministic pivot: the greater-side index with the
                // largest count (shallower recursion).
                if pivot_g == usize::MAX || counts[l] > counts[pivot_g] {
                    pivot_g = l;
                }
            } else {
                leq_total += u64::from(counts[l]);
                if pivot_l == usize::MAX || counts[l] > counts[pivot_l] {
                    pivot_l = l;
                }
            }
        }
        if greater_total == 0 {
            return 1.0;
        }
        if leq_total == 0 {
            return 0.0;
        }

        let key = (r.to_bits(), counts.to_vec().into_boxed_slice());
        if let Some(&v) = self.memo.get(&key) {
            return v;
        }

        let ci = self.coeffs[pivot_g];
        let cj = self.coeffs[pivot_l];
        debug_assert!(ci > r && cj <= r && ci > cj);

        let mut minus_j = counts.to_vec();
        minus_j[pivot_l] -= 1;
        let mut minus_i = counts.to_vec();
        minus_i[pivot_g] -= 1;

        let w1 = (ci - r) / (ci - cj);
        let w2 = (r - cj) / (ci - cj);
        let v = w1 * self.eval_rec(r, &minus_j) + w2 * self.eval_rec(r, &minus_i);
        let v = v.clamp(0.0, 1.0);
        self.memo.insert(key, v);
        v
    }
}

/// One coefficient list's table: `(r'.to_bits(), k) → Ω(r', k)`.
type TermTable = HashMap<(u64, Box<[u32]>), f64>;

/// A shareable store of top-level `Ω(r', k)` values, keyed by the bitwise
/// coefficient list so one cache serves evaluations over any number of
/// reward structures.
///
/// `Ω` is a pure function of `(coefficients, r', k)`, so serving a value
/// from the cache is *exact*: a cached run returns bit-identical terms to
/// an uncached one. The payoff is across adaptive re-attempts
/// ([`crate::adaptive`]): tightening the truncation probability `w`
/// re-generates most of the previous round's path classes, whose Omega
/// requests then hit the cache instead of re-running the recursion —
/// observable as the `omega_table_requests` metric dropping round over
/// round (and the cumulative `omega_cache_hits` counter rising).
///
/// The store is `Mutex`-protected and meant to be shared via
/// [`with_omega_cache`]; hit accounting is atomic and cumulative over the
/// cache's lifetime.
#[derive(Debug, Default)]
pub struct OmegaTermCache {
    // Keyed by coefficient-list bit pattern; BTreeMap so aggregate walks
    // (`len`) and any future diagnostics iterate in key order. The inner
    // TermTable stays a HashMap: it is only ever keyed lookup.
    tables: Mutex<BTreeMap<Vec<u64>, TermTable>>,
    hits: AtomicU64,
}

impl OmegaTermCache {
    /// An empty cache.
    pub fn new() -> Self {
        OmegaTermCache::default()
    }

    /// The lookup key for a coefficient list (its bit pattern).
    pub fn coefficient_key(coefficients: &[f64]) -> Vec<u64> {
        coefficients.iter().map(|c| c.to_bits()).collect()
    }

    /// Look up `Ω(r, k)` under the coefficient list identified by `key`
    /// (from [`coefficient_key`](OmegaTermCache::coefficient_key)).
    /// Records a hit when the value is present.
    pub fn get(&self, key: &[u64], r: f64, k: &[u32]) -> Option<f64> {
        let tables = self.tables.lock().expect("omega cache poisoned");
        let v = tables.get(key)?.get(&(r.to_bits(), Box::from(k))).copied();
        if v.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Store `Ω(r, k) = value` under the coefficient list `key`.
    pub fn insert(&self, key: &[u64], r: f64, k: &[u32], value: f64) {
        let mut tables = self.tables.lock().expect("omega cache poisoned");
        tables
            .entry(key.to_vec())
            .or_default()
            .insert((r.to_bits(), Box::from(k)), value);
    }

    /// Total stored entries across all coefficient lists.
    pub fn len(&self) -> usize {
        let tables = self.tables.lock().expect("omega cache poisoned");
        tables.values().map(HashMap::len).sum()
    }

    /// `true` when nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative lookup hits over the cache's lifetime.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

thread_local! {
    static CACHE: RefCell<Option<Arc<OmegaTermCache>>> = const { RefCell::new(None) };
}

/// Install `cache` as this thread's Omega-term cache for the duration of
/// `f`.
///
/// Scoping is dynamic and re-entrant, mirroring
/// [`mrmc_obs::with_recorder`]: nested calls shadow the outer cache and
/// restore it on exit (also on unwind). While installed, the Eq. 4.5 term
/// assembly consults the cache and only runs the Omega recursion for
/// misses — results are bit-identical to an uncached run.
pub fn with_omega_cache<T>(cache: Arc<OmegaTermCache>, f: impl FnOnce() -> T) -> T {
    struct Restore {
        previous: Option<Arc<OmegaTermCache>>,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            CACHE.with(|c| *c.borrow_mut() = self.previous.take());
        }
    }
    let restore = Restore {
        previous: CACHE.with(|c| c.borrow_mut().replace(cache)),
    };
    let out = f();
    drop(restore);
    out
}

/// The cache installed on this thread by [`with_omega_cache`], if any.
pub fn installed_cache() -> Option<Arc<OmegaTermCache>> {
    CACHE.with(|c| c.borrow().clone())
}

/// `true` when a cache is installed on this thread.
pub fn cache_installed() -> bool {
    CACHE.with(|c| c.borrow().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_sparse::rng::Xoshiro256StarStar;

    #[test]
    fn example_4_4_of_the_thesis() {
        // Distinct state rewards 5 > 3 > 1 > 0, impulse rewards 2 > 1 > 0,
        // path with n = 6, k = ⟨1,2,2,2⟩, j = ⟨4,2,0⟩, t = 5, r = 15.
        // r' = 15/5 − 0 − (2·4 + 1·2)/5 = 1, c = ⟨5,3,1,0⟩.
        let mut omega = OmegaEvaluator::new(vec![5.0, 3.0, 1.0, 0.0]).unwrap();
        let v = omega.evaluate(1.0, &[1, 2, 2, 2]);
        // The thesis' recursion tree evaluates to 53/64 = 0.828125 with
        // uniform spacings; verify against a high-precision Monte Carlo
        // bound and the recursion's own determinism.
        assert!(v > 0.0 && v < 1.0);
        // Recompute from a fresh evaluator: deterministic.
        let mut omega2 = OmegaEvaluator::new(vec![5.0, 3.0, 1.0, 0.0]).unwrap();
        assert_eq!(v, omega2.evaluate(1.0, &[1, 2, 2, 2]));
    }

    #[test]
    fn trivial_thresholds() {
        let mut o = OmegaEvaluator::new(vec![4.0, 2.0, 0.0]).unwrap();
        // r above every coefficient: certain.
        assert_eq!(o.evaluate(4.5, &[1, 1, 1]), 1.0);
        assert_eq!(o.evaluate(4.0, &[1, 1, 1]), 1.0); // c <= r counts as L
                                                      // r below every active coefficient: impossible.
        assert_eq!(o.evaluate(-0.5, &[1, 1, 1]), 0.0);
        assert_eq!(o.evaluate(1.0, &[2, 1, 0]), 0.0);
        // Inactive coefficients (count 0) are ignored.
        assert_eq!(o.evaluate(1.0, &[0, 0, 3]), 1.0);
    }

    #[test]
    fn single_uniform_is_linear() {
        // n = 1: two spacings Y1, Y2 = 1 − Y1; G = c1·Y1 with c = ⟨c1, 0⟩.
        // Pr{c1·U ≤ r} = r / c1 for 0 ≤ r ≤ c1.
        let mut o = OmegaEvaluator::new(vec![2.0, 0.0]).unwrap();
        for &r in &[0.0, 0.5, 1.0, 1.5, 2.0] {
            let v = o.evaluate(r, &[1, 1]);
            assert!((v - r / 2.0).abs() < 1e-12, "r = {r}: {v}");
        }
    }

    #[test]
    fn sum_of_two_spacings_beta() {
        // n = 2, c = ⟨1, 0⟩, k = ⟨2, 1⟩: G = U_(2), Pr{U_(2) ≤ r} = r².
        let mut o = OmegaEvaluator::new(vec![1.0, 0.0]).unwrap();
        for &r in &[0.1, 0.3, 0.7, 0.9] {
            let v = o.evaluate(r, &[2, 1]);
            assert!((v - r * r).abs() < 1e-12, "r = {r}: {v}");
        }
        // k = ⟨1, 2⟩: G = one spacing = 1 − U_(2) distributionally; actually
        // Pr{Y1 ≤ r} = 1 − (1 − r)² for order statistics of 2 uniforms.
        for &r in &[0.1, 0.5, 0.9] {
            let v = o.evaluate(r, &[1, 2]);
            let expect = 1.0 - (1.0 - r) * (1.0 - r);
            assert!((v - expect).abs() < 1e-12, "r = {r}: {v} vs {expect}");
        }
    }

    #[test]
    fn matches_monte_carlo_for_mixed_coefficients() {
        // Deterministic pseudo-random check of Ω against simulation.
        let coeffs = vec![3.0, 1.0, 0.0];
        let counts = [1u32, 2, 1]; // n + 1 = 4 spacings of 3 uniforms
        let r = 1.2;
        let mut o = OmegaEvaluator::new(coeffs.clone()).unwrap();
        let exact = o.evaluate(r, &counts);

        // xorshift-based Monte Carlo with 200k samples.
        let mut state = 0x243F6A8885A308D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let trials = 200_000;
        let mut hits = 0u64;
        for _ in 0..trials {
            let mut u = [next(), next(), next()];
            u.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let spacings = [u[0], u[1] - u[0], u[2] - u[1], 1.0 - u[2]];
            // Assign spacings to classes in order: exchangeability makes the
            // assignment irrelevant.
            let g = coeffs[0] * spacings[0]
                + coeffs[1] * (spacings[1] + spacings[2])
                + coeffs[2] * spacings[3];
            if g <= r {
                hits += 1;
            }
        }
        let mc = hits as f64 / trials as f64;
        assert!((exact - mc).abs() < 5e-3, "Ω = {exact}, Monte Carlo = {mc}");
    }

    #[test]
    fn memoization_is_shared() {
        let mut o = OmegaEvaluator::new(vec![2.0, 1.0, 0.0]).unwrap();
        let _ = o.evaluate(0.5, &[3, 3, 3]);
        let filled = o.cache_len();
        assert!(filled > 0);
        let _ = o.evaluate(0.5, &[3, 3, 3]);
        assert_eq!(o.cache_len(), filled);
    }

    #[test]
    fn term_cache_round_trips_and_counts_hits() {
        let cache = OmegaTermCache::new();
        let key = OmegaTermCache::coefficient_key(&[2.0, 1.0, 0.0]);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key, 0.5, &[1, 2, 1]), None);
        assert_eq!(cache.hits(), 0);
        cache.insert(&key, 0.5, &[1, 2, 1], 0.625);
        assert_eq!(cache.get(&key, 0.5, &[1, 2, 1]), Some(0.625));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        // Different threshold, counts, or coefficients: distinct entries.
        assert_eq!(cache.get(&key, 0.25, &[1, 2, 1]), None);
        assert_eq!(cache.get(&key, 0.5, &[2, 1, 1]), None);
        let other = OmegaTermCache::coefficient_key(&[3.0, 0.0]);
        assert_eq!(cache.get(&other, 0.5, &[1, 2, 1]), None);
        cache.insert(&other, 0.5, &[1, 2], 1.0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn cache_installation_is_scoped_and_reentrant() {
        assert!(!cache_installed());
        let outer = Arc::new(OmegaTermCache::new());
        let inner = Arc::new(OmegaTermCache::new());
        with_omega_cache(outer.clone(), || {
            assert!(cache_installed());
            assert!(Arc::ptr_eq(&installed_cache().unwrap(), &outer));
            with_omega_cache(inner.clone(), || {
                assert!(Arc::ptr_eq(&installed_cache().unwrap(), &inner));
            });
            assert!(Arc::ptr_eq(&installed_cache().unwrap(), &outer));
        });
        assert!(!cache_installed());
        assert!(installed_cache().is_none());
    }

    #[test]
    fn worker_threads_do_not_inherit_the_cache() {
        with_omega_cache(Arc::new(OmegaTermCache::new()), || {
            std::thread::scope(|scope| {
                scope.spawn(|| assert!(!cache_installed()));
            });
        });
    }

    #[test]
    fn invalid_coefficients_rejected() {
        assert!(OmegaEvaluator::new(vec![]).is_err());
        assert!(OmegaEvaluator::new(vec![1.0, 1.0]).is_err());
        assert!(OmegaEvaluator::new(vec![1.0, 2.0]).is_err());
        assert!(OmegaEvaluator::new(vec![1.0, -0.5]).is_err());
        assert!(OmegaEvaluator::new(vec![f64::NAN]).is_err());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_counts_panic() {
        let mut o = OmegaEvaluator::new(vec![1.0, 0.0]).unwrap();
        let _ = o.evaluate(0.5, &[1]);
    }

    #[test]
    fn omega_is_a_probability_and_monotone_in_r() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x03E6A);
        for _ in 0..256 {
            let counts: Vec<u32> = (0..3).map(|_| rng.range_usize(4) as u32).collect();
            if counts.iter().sum::<u32>() == 0 {
                continue;
            }
            let r1 = rng.range_f64(-1.0, 6.0);
            let r2 = rng.range_f64(-1.0, 6.0);
            let mut o = OmegaEvaluator::new(vec![4.0, 1.5, 0.0]).unwrap();
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            let v_lo = o.evaluate(lo, &counts);
            let v_hi = o.evaluate(hi, &counts);
            assert!((0.0..=1.0).contains(&v_lo));
            assert!((0.0..=1.0).contains(&v_hi));
            assert!(v_lo <= v_hi + 1e-12);
        }
    }

    #[test]
    fn n1_general_coefficients_closed_form() {
        // n = 1: G = c1·U + c2·(1 − U) = c2 + (c1 − c2)·U, so
        // Pr{G ≤ r} = (r − c2) / (c1 − c2) on [c2, c1]. Take c = ⟨3, 1⟩.
        let mut o = OmegaEvaluator::new(vec![3.0, 1.0]).unwrap();
        for &r in &[1.0, 1.5, 2.0, 2.5, 3.0] {
            let v = o.evaluate(r, &[1, 1]);
            let expect = (r - 1.0) / 2.0;
            assert!((v - expect).abs() < 1e-12, "r = {r}: {v} vs {expect}");
        }
        // Outside the support the distribution saturates.
        assert_eq!(o.evaluate(0.5, &[1, 1]), 0.0);
        assert_eq!(o.evaluate(3.5, &[1, 1]), 1.0);
    }

    #[test]
    fn n2_general_coefficients_closed_form() {
        // n = 2 with c = ⟨c1, c2⟩ = ⟨5, 2⟩.
        // k = ⟨2, 1⟩: G = c2 + (c1 − c2)·U_(2), Pr = ((r − c2)/(c1 − c2))².
        // k = ⟨1, 2⟩: G = c2 + (c1 − c2)·Y with Y a single spacing,
        //            Pr = 1 − (1 − (r − c2)/(c1 − c2))².
        let mut o = OmegaEvaluator::new(vec![5.0, 2.0]).unwrap();
        for &r in &[2.3, 3.0, 4.1, 4.9] {
            let u = (r - 2.0) / 3.0;
            let v21 = o.evaluate(r, &[2, 1]);
            assert!((v21 - u * u).abs() < 1e-12, "r = {r}: {v21}");
            let v12 = o.evaluate(r, &[1, 2]);
            let expect = 1.0 - (1.0 - u) * (1.0 - u);
            assert!((v12 - expect).abs() < 1e-12, "r = {r}: {v12} vs {expect}");
        }
    }

    #[test]
    fn degenerate_single_class_is_deterministic() {
        // All mass in one class: G = c·(sum of all spacings) = c exactly,
        // regardless of n. This is the degenerate "equal coefficients"
        // reward structure after dedup into a single class.
        let mut o = OmegaEvaluator::new(vec![2.0]).unwrap();
        for n_plus_1 in [1u32, 3, 7] {
            assert_eq!(o.evaluate(1.999, &[n_plus_1]), 0.0);
            assert_eq!(o.evaluate(2.0, &[n_plus_1]), 1.0);
            assert_eq!(o.evaluate(2.5, &[n_plus_1]), 1.0);
        }
        // The all-zero-reward structure: the single class [0.0].
        let mut z = OmegaEvaluator::new(vec![0.0]).unwrap();
        assert_eq!(z.evaluate(0.0, &[4]), 1.0);
        assert_eq!(z.evaluate(-0.1, &[4]), 0.0);
    }

    #[test]
    fn zero_coefficient_class_with_zero_count_is_inert() {
        // A zero coefficient with count 0 must not perturb the value: the
        // ⟨4, 1.5, 0⟩ evaluator with counts ⟨k1, k2, 0⟩ agrees exactly with
        // the ⟨4, 1.5⟩ evaluator on ⟨k1, k2⟩.
        let mut with_zero = OmegaEvaluator::new(vec![4.0, 1.5, 0.0]).unwrap();
        let mut without = OmegaEvaluator::new(vec![4.0, 1.5]).unwrap();
        for &(k1, k2) in &[(1u32, 1u32), (2, 1), (1, 3), (3, 2)] {
            for &r in &[0.5, 1.5, 2.0, 3.9] {
                assert_eq!(
                    with_zero.evaluate(r, &[k1, k2, 0]),
                    without.evaluate(r, &[k1, k2]),
                    "k = ⟨{k1},{k2}⟩, r = {r}"
                );
            }
        }
        // And mass on the zero coefficient alone is certain at r ≥ 0.
        assert_eq!(with_zero.evaluate(0.0, &[0, 0, 2]), 1.0);
    }
}
