//! Static cost predictors for the numerical engines.
//!
//! Both engines have failure modes that are predictable *before* any
//! numerics run: the path-exploration engine (Algorithm 4.7) explodes
//! combinatorially when the uniformization truncation depth times the mean
//! branching factor is large, and the discretization engine (Algorithm 4.6)
//! allocates a `states × reward-cells` grid that can dwarf memory for small
//! steps or large reward bounds. The estimators here are deliberately cheap
//! (`O(states + transitions)`) and are consumed by the `mrmc-analysis` lint
//! passes to warn with suggested knob changes instead of letting a run
//! spin or abort mid-flight.

use mrmc_ctmc::poisson;
use mrmc_mrm::Mrm;

/// Estimated path-tree nodes above which a uniformization run is
/// considered likely to explode (the lint's `C101` threshold).
pub const PATH_EXPLOSION_NODES: f64 = 1e8;

/// Estimated grid bytes above which a discretization run is considered
/// memory-hostile (the lint's `C102` threshold, 8 GiB-ish).
pub const GRID_MEMORY_BYTES: f64 = 8e9;

/// The largest exit rate in the model, `max_s E(s)` — the quantity both
/// the uniformization-rate rule and the discretization stability
/// requirement are built on.
pub fn max_exit_rate(mrm: &Mrm) -> f64 {
    mrm.ctmc()
        .exit_rates()
        .iter()
        .fold(0.0_f64, |a, &b| a.max(b))
}

/// The largest discretization step the stability requirement
/// `d ≤ 1/max-exit-rate` admits ([`f64::INFINITY`] for an absorbing-only
/// model, where any step is stable).
pub fn max_stable_step(mrm: &Mrm) -> f64 {
    let max_exit = max_exit_rate(mrm);
    if max_exit == 0.0 {
        f64::INFINITY
    } else {
        1.0 / max_exit
    }
}

/// The `Λ = 1.02 · max exit rate` uniformization-rate rule used by
/// [`UniformizedMrm`](mrmc_mrm::UniformizedMrm) when no explicit rate is
/// given; replicated here so predictions match the engine.
fn default_lambda(mrm: &Mrm) -> f64 {
    1.02 * max_exit_rate(mrm)
}

/// Prediction for a uniformization path-exploration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformizationCost {
    /// The uniformization rate `Λ` that would be used.
    pub lambda: f64,
    /// `Λ · t`, the Poisson mean governing the truncation depth.
    pub lambda_t: f64,
    /// Smallest depth `n` with Poisson upper tail `≤ truncation`: paths
    /// longer than this are certainly discarded, so it bounds the
    /// exploration depth.
    pub truncation_depth: u64,
    /// Mean out-degree of non-absorbing states (branching factor of the
    /// depth-first search).
    pub mean_branching: f64,
    /// `mean_branching ^ truncation_depth`, saturating at `f64::INFINITY`:
    /// a coarse upper bound on the number of path-tree nodes visited.
    pub estimated_paths: f64,
}

/// Predict the work of the uniformization engine for horizon `t` and path
/// truncation probability `w` (see
/// [`UniformOptions::truncation`](crate::uniformization::UniformOptions)).
///
/// The estimate is an upper bound in the branching factor sense: pruning by
/// path probability and the improved potential-based pruning typically visit
/// far fewer nodes, so a small estimate is trustworthy while a huge one
/// means "could explode", not "will".
pub fn estimate_uniformization(mrm: &Mrm, t: f64, truncation: f64) -> UniformizationCost {
    let lambda = default_lambda(mrm);
    let lambda_t = (lambda * t).max(0.0);

    // Smallest n with upper_tail(Λt, n) ≤ w; the engine cannot keep any
    // path longer than this. Exponential probe + binary refinement keeps
    // this O(log depth) calls to the (logspace, stable) tail.
    let w = truncation.clamp(f64::MIN_POSITIVE, 1.0);
    let mut hi: u64 = 1;
    while poisson::upper_tail(lambda_t, hi) > w && hi < 1 << 40 {
        hi *= 2;
    }
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if poisson::upper_tail(lambda_t, mid) > w {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let truncation_depth = hi;

    let ctmc = mrm.ctmc();
    let (mut branches, mut live) = (0usize, 0usize);
    for s in 0..ctmc.num_states() {
        let deg = ctmc.rates().row_nnz(s);
        if deg > 0 {
            branches += deg;
            live += 1;
        }
    }
    let mean_branching = if live == 0 {
        0.0
    } else {
        branches as f64 / live as f64
    };

    let estimated_paths = if mean_branching <= 1.0 {
        truncation_depth as f64
    } else {
        mean_branching.powf(truncation_depth as f64)
    };

    UniformizationCost {
        lambda,
        lambda_t,
        truncation_depth,
        mean_branching,
        estimated_paths,
    }
}

/// Prediction for a discretization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscretizationCost {
    /// Number of time steps `T = ⌈t/d⌉`.
    pub time_steps: f64,
    /// Number of reward cells `R = ⌈r/d⌉ + 1` per state.
    pub reward_cells: f64,
    /// Bytes for the two `states × reward-cells` density planes the engine
    /// keeps live (`f64` cells, current + next).
    pub estimated_bytes: f64,
    /// `true` when the step satisfies the stability requirement
    /// `d ≤ 1 / max exit rate` (at most one transition per step).
    pub stable: bool,
}

/// Predict the memory/work of the discretization engine for time bound `t`,
/// reward bound `r` and step `d` (see
/// [`DiscretizationOptions::step`](crate::discretization::DiscretizationOptions)).
pub fn estimate_discretization(mrm: &Mrm, t: f64, r: f64, step: f64) -> DiscretizationCost {
    let max_exit = max_exit_rate(mrm);
    let d = if step > 0.0 { step } else { f64::NAN };
    let time_steps = (t / d).ceil().max(0.0);
    let reward_cells = (r / d).ceil().max(0.0) + 1.0;
    let estimated_bytes = mrm.num_states() as f64 * reward_cells * 8.0 * 2.0;
    // `d == 1/max_exit` is the boundary the engine itself accepts.
    let stable = d > 0.0 && (max_exit == 0.0 || d * max_exit <= 1.0 + 1e-12);
    DiscretizationCost {
        time_steps,
        reward_cells,
        estimated_bytes,
        stable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavelan() -> Mrm {
        let mut b = mrmc_ctmc::CtmcBuilder::new(5);
        b.transition(0, 1, 0.1);
        b.transition(1, 0, 0.05).transition(1, 2, 5.0);
        b.transition(2, 1, 12.0)
            .transition(2, 3, 1.5)
            .transition(2, 4, 0.75);
        b.transition(3, 2, 10.0);
        b.transition(4, 2, 15.0);
        b.label(2, "idle");
        b.label(3, "busy");
        b.label(4, "busy");
        let ctmc = b.build().unwrap();
        let rho = mrmc_mrm::StateRewards::new(vec![0.0, 80.0, 1319.0, 1675.0, 1425.0]).unwrap();
        let mut iota = mrmc_mrm::ImpulseRewards::new();
        iota.set(2, 3, 0.42545).unwrap();
        iota.set(2, 4, 0.36195).unwrap();
        Mrm::new(ctmc, rho, iota).unwrap()
    }

    #[test]
    fn max_exit_rate_and_stable_step() {
        let m = wavelan();
        assert_eq!(max_exit_rate(&m), 15.0);
        assert_eq!(max_stable_step(&m), 1.0 / 15.0);
        // An absorbing-only model admits any step.
        let lone = Mrm::without_rewards(mrmc_ctmc::CtmcBuilder::new(1).build().unwrap());
        assert_eq!(max_exit_rate(&lone), 0.0);
        assert_eq!(max_stable_step(&lone), f64::INFINITY);
    }

    #[test]
    fn uniformization_depth_matches_poisson_tail() {
        let m = wavelan();
        let c = estimate_uniformization(&m, 2.0, 1e-8);
        // Λ = 1.02 · 15 (max exit in WaveLAN is state 5's repair rate).
        assert!((c.lambda - 1.02 * 15.0).abs() < 1e-12);
        assert!((c.lambda_t - c.lambda * 2.0).abs() < 1e-12);
        // The returned depth is the first with tail ≤ w.
        assert!(poisson::upper_tail(c.lambda_t, c.truncation_depth) <= 1e-8);
        assert!(poisson::upper_tail(c.lambda_t, c.truncation_depth - 1) > 1e-8);
        // Every WaveLAN state has at least one successor; 8 transitions
        // over 5 states.
        assert!((c.mean_branching - 8.0 / 5.0).abs() < 1e-12);
        assert!(c.estimated_paths > 1.0 && c.estimated_paths.is_finite());
    }

    #[test]
    fn uniformization_estimate_grows_with_horizon() {
        let m = wavelan();
        let short = estimate_uniformization(&m, 1.0, 1e-8);
        let long = estimate_uniformization(&m, 100.0, 1e-8);
        assert!(long.truncation_depth > short.truncation_depth);
        assert!(long.estimated_paths >= short.estimated_paths);
    }

    #[test]
    fn discretization_counts_grid_cells() {
        let m = wavelan();
        let c = estimate_discretization(&m, 1.0, 10.0, 0.01);
        assert_eq!(c.time_steps, 100.0);
        assert_eq!(c.reward_cells, 1001.0);
        assert_eq!(c.estimated_bytes, 5.0 * 1001.0 * 16.0);
        // Max exit 15 ⇒ needs d ≤ 1/15 ≈ 0.0667; 0.01 is stable.
        assert!(c.stable);
        assert!(!estimate_discretization(&m, 1.0, 10.0, 0.5).stable);
    }
}
