//! The error budget: a named decomposition of the total numerical error of
//! `Pr{Y(t) ≤ r, X(t) ⊨ Ψ}`.
//!
//! The engines expose raw accuracy knobs — the path-truncation probability
//! `w` (Eq. 4.6) for uniformization, the step size `d` for the
//! Tijms–Veldman discretization (Algorithm 4.6), the sample count for the
//! Monte-Carlo estimator — but a caller asking `P ⋈ p [Φ U^I_J Ψ]` needs a
//! *bound on the probability itself*. [`ErrorBudget`] is that accounting:
//! every engine reports where its error comes from, component by
//! component, and the total is the half-width of the interval guaranteed
//! (or, for the statistical components, guaranteed with the stated
//! confidence) to contain the true probability.
//!
//! # Components and their provenance
//!
//! | component | source | producer |
//! |---|---|---|
//! | [`path_truncation`](ErrorBudget::path_truncation) | Eq. 4.6: mass of the discarded path prefixes, each weighted by the Poisson upper tail `Pr{N ≥ n}` of its depth — this *includes* the Poisson right-tail mass of every pruned suffix, so the uniformization engine has no separate tail term | uniformization |
//! | [`poisson_tail`](ErrorBudget::poisson_tail) | the left/right window truncation of the Fox–Glynn weights ([`poisson::FoxGlynn`](mrmc_ctmc::poisson::FoxGlynn)) used by the reward-free baseline (`transient_epsilon`) | baseline (P1) |
//! | [`float_accumulation`](ErrorBudget::float_accumulation) | floating-point error of the Omega recursion (Algorithm 4.8) and the Eq. 4.5 fold: per term a first-order `(n + K)·ε` model on the compensated sums, plus the relative error of the log-space Poisson pmf | uniformization, discretization |
//! | [`discretization`](ErrorBudget::discretization) | step error of Algorithm 4.6, estimated a posteriori by a Richardson companion run at step `2d` (the scheme is first-order: `P_d − P_{2d} ≈ C·d`, so `2·|P_d − P_{2d}|` over-covers the error of `P_d`) | discretization |
//! | [`statistical`](ErrorBudget::statistical) | distribution-free Hoeffding radius `√(ln(2/δ)/2n)` of the Monte-Carlo estimator at confidence `1 − δ` — unlike the other components this holds with probability `1 − δ`, not certainty | simulation |
//! | [`propagation`](ErrorBudget::propagation) | widening from *unknown* sub-verdicts: when a nested probability operator is undecidable within its own budget, the outer operator is evaluated on both the optimistic and the pessimistic satisfying set and the half-gap lands here | checker (`Sat`) |
//!
//! The invariant under test (see `tests/properties.rs`): the components are
//! non-negative and [`total`](ErrorBudget::total) is exactly their sum.

use std::fmt;

/// A named decomposition of the absolute error of a computed probability.
///
/// The true probability lies within `total()` of the reported value
/// (with confidence `1 − δ` when the [`statistical`](Self::statistical)
/// component is non-zero).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorBudget {
    /// Path-truncation mass per Eq. 4.6 (uniformization engine).
    pub path_truncation: f64,
    /// Fox–Glynn left/right Poisson window truncation (baseline engine).
    pub poisson_tail: f64,
    /// Floating-point accumulation of the Omega evaluation and final fold.
    pub float_accumulation: f64,
    /// Discretization step error (Richardson estimate, Algorithm 4.6).
    pub discretization: f64,
    /// Hoeffding radius of the Monte-Carlo estimator (statistical, holds
    /// with the configured confidence rather than with certainty).
    pub statistical: f64,
    /// Interval widening propagated from unknown nested verdicts.
    pub propagation: f64,
}

impl ErrorBudget {
    /// The zero budget: an exact result.
    pub fn zero() -> Self {
        ErrorBudget::default()
    }

    /// A budget consisting solely of the Eq. 4.6 truncation bound.
    pub fn from_truncation(path_truncation: f64) -> Self {
        ErrorBudget {
            path_truncation,
            ..ErrorBudget::zero()
        }
    }

    /// A budget consisting solely of the Fox–Glynn tail truncation.
    pub fn from_poisson_tail(poisson_tail: f64) -> Self {
        ErrorBudget {
            poisson_tail,
            ..ErrorBudget::zero()
        }
    }

    /// A budget consisting solely of the statistical (Hoeffding) radius.
    pub fn from_statistical(statistical: f64) -> Self {
        ErrorBudget {
            statistical,
            ..ErrorBudget::zero()
        }
    }

    /// The components as `(name, value)` pairs, in declaration order.
    pub fn components(&self) -> [(&'static str, f64); 6] {
        [
            ("path_truncation", self.path_truncation),
            ("poisson_tail", self.poisson_tail),
            ("float_accumulation", self.float_accumulation),
            ("discretization", self.discretization),
            ("statistical", self.statistical),
            ("propagation", self.propagation),
        ]
    }

    /// The total error half-width: the exact sum of the components.
    ///
    /// The components are summed in declaration order with plain `+`; the
    /// property suite asserts `total() == components().sum()` bitwise, so
    /// the budget is auditable from its parts.
    pub fn total(&self) -> f64 {
        self.path_truncation
            + self.poisson_tail
            + self.float_accumulation
            + self.discretization
            + self.statistical
            + self.propagation
    }

    /// The dominant component, for diagnostics (`(name, value)`).
    pub fn dominant(&self) -> (&'static str, f64) {
        self.components()
            .into_iter()
            .fold(("path_truncation", f64::NEG_INFINITY), |best, c| {
                if c.1 > best.1 {
                    c
                } else {
                    best
                }
            })
    }

    /// Component-wise maximum of two budgets — the sound combination when
    /// a result must be covered by either of two runs (e.g. the
    /// optimistic/pessimistic pair used for unknown-set propagation).
    pub fn max(&self, other: &ErrorBudget) -> ErrorBudget {
        ErrorBudget {
            path_truncation: self.path_truncation.max(other.path_truncation),
            poisson_tail: self.poisson_tail.max(other.poisson_tail),
            float_accumulation: self.float_accumulation.max(other.float_accumulation),
            discretization: self.discretization.max(other.discretization),
            statistical: self.statistical.max(other.statistical),
            propagation: self.propagation.max(other.propagation),
        }
    }

    /// Return this budget with `width` added to the propagation component.
    pub fn widened_by(mut self, width: f64) -> ErrorBudget {
        self.propagation += width;
        self
    }

    /// `true` when every component is non-negative and finite — the
    /// well-formedness condition every engine must maintain.
    pub fn is_well_formed(&self) -> bool {
        self.components()
            .into_iter()
            .all(|(_, v)| v.is_finite() && v >= 0.0)
    }
}

impl fmt::Display for ErrorBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} (", self.total())?;
        let mut first = true;
        for (name, value) in self.components() {
            if value > 0.0 {
                if !first {
                    write!(f, " + ")?;
                }
                write!(f, "{name} {value:.3e}")?;
                first = false;
            }
        }
        if first {
            write!(f, "exact")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_exact_component_sum() {
        let b = ErrorBudget {
            path_truncation: 1e-9,
            poisson_tail: 3e-12,
            float_accumulation: 2e-16,
            discretization: 0.0,
            statistical: 0.0,
            propagation: 5e-7,
        };
        let sum: f64 = b
            .components()
            .into_iter()
            .map(|(_, v)| v)
            .fold(0.0, |a, v| a + v);
        assert_eq!(b.total(), sum);
        assert!(b.is_well_formed());
    }

    #[test]
    fn constructors_populate_one_component() {
        assert_eq!(ErrorBudget::zero().total(), 0.0);
        let t = ErrorBudget::from_truncation(1e-6);
        assert_eq!(t.path_truncation, 1e-6);
        assert_eq!(t.total(), 1e-6);
        let p = ErrorBudget::from_poisson_tail(1e-10);
        assert_eq!(p.poisson_tail, 1e-10);
        let s = ErrorBudget::from_statistical(0.01);
        assert_eq!(s.statistical, 0.01);
        assert_eq!(s.dominant(), ("statistical", 0.01));
    }

    #[test]
    fn max_and_widen() {
        let a = ErrorBudget::from_truncation(1e-6);
        let b = ErrorBudget::from_poisson_tail(1e-8);
        let m = a.max(&b);
        assert_eq!(m.path_truncation, 1e-6);
        assert_eq!(m.poisson_tail, 1e-8);
        let w = m.widened_by(0.25);
        assert_eq!(w.propagation, 0.25);
        assert!(w.total() > 0.25);
    }

    #[test]
    fn display_names_nonzero_components() {
        let b = ErrorBudget::from_truncation(1e-6).widened_by(1e-3);
        let s = b.to_string();
        assert!(s.contains("path_truncation"), "{s}");
        assert!(s.contains("propagation"), "{s}");
        assert!(!s.contains("statistical"), "{s}");
        assert!(ErrorBudget::zero().to_string().contains("exact"));
    }

    #[test]
    fn ill_formed_budgets_detected() {
        let b = ErrorBudget {
            path_truncation: -1e-9,
            ..ErrorBudget::zero()
        };
        assert!(!b.is_well_formed());
        let b = ErrorBudget {
            statistical: f64::NAN,
            ..ErrorBudget::zero()
        };
        assert!(!b.is_well_formed());
    }
}
