//! The state-reward-free baseline: time-bounded until via Fox–Glynn
//! uniformization (`[Bai03]`, property class P1 of Section 4.3.2).
//!
//! This is the pre-existing method the thesis compares its reward-bounded
//! engines against; it ignores reward structures entirely and computes
//! `P^M(s, Φ U^{[0,t]} Ψ)` for *all* states simultaneously by backward
//! vector iterations.

use mrmc_ctmc::poisson::FoxGlynn;
use mrmc_mrm::{transform::make_absorbing, Mrm};

use crate::error::NumericsError;

/// Compute `P^M(s, Φ U^{[0,t]} Ψ)` for every state `s`.
///
/// `epsilon` bounds the truncation error of the Poisson sum (default choice
/// `1e-10` is appropriate for probability-bound checks).
///
/// # Errors
///
/// [`NumericsError`] for size mismatches or invalid parameters.
pub fn until_time_bounded(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    epsilon: f64,
) -> Result<Vec<f64>, NumericsError> {
    let n = mrm.num_states();
    if phi.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: phi.len(),
        });
    }
    if psi.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: psi.len(),
        });
    }
    if !(t.is_finite() && t >= 0.0) {
        return Err(NumericsError::InvalidParameter {
            name: "t",
            value: t,
            requirement: "must be finite and non-negative",
        });
    }
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(NumericsError::InvalidParameter {
            name: "epsilon",
            value: epsilon,
            requirement: "must be in (0, 1)",
        });
    }

    let indicator: Vec<f64> = psi.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    if t == 0.0 {
        return Ok(indicator);
    }

    let absorb: Vec<bool> = phi.iter().zip(psi).map(|(&p, &q)| !p || q).collect();
    let absorbed = make_absorbing(mrm, &absorb)?;
    let (uni, lambda) = absorbed.ctmc().uniformized(None)?;
    let p = uni.probabilities();

    let fg = FoxGlynn::new(lambda * t, epsilon);
    // Backward iteration: u_n[s] = Pr{X_n ⊨ Ψ | X_0 = s} = (P^n · 1_Ψ)[s].
    let mut u = indicator;
    let mut acc = vec![0.0; n];
    for step in 0..=fg.right() {
        if step >= fg.left() {
            let w = fg.weights()[(step - fg.left()) as usize];
            for (a, x) in acc.iter_mut().zip(&u) {
                *a += w * x;
            }
        }
        if step < fg.right() {
            u = p.mul_vec(&u);
        }
    }
    for a in &mut acc {
        *a = a.clamp(0.0, 1.0);
    }
    Ok(acc)
}

/// Compute `P^M(s, Φ U^{[t1,t2]} Ψ)` for every state — time-*interval*
/// bounded until without reward bounds, by the standard two-phase
/// decomposition (`[Bai03]`):
///
/// ```text
/// P(s, Φ U^{[t1,t2]} Ψ) = Σ_{s' ⊨ Φ} π^{M[¬Φ]}(s, s', t1) · P(s', Φ U^{[0, t2−t1]} Ψ)
/// ```
///
/// — the path must stay in Φ-states throughout `[0, t1]` (hence the
/// transient distribution of `M[¬Φ]`), then satisfy an ordinary bounded
/// until over the remaining `t2 − t1` time units. Both phases run backward
/// over all states simultaneously.
///
/// The thesis' reward-bounded engines cannot handle time lower bounds
/// (Chapter 6); this exact method covers the reward-free case, and the
/// statistical checker covers the general one.
///
/// # Errors
///
/// [`NumericsError`] for size mismatches or invalid parameters
/// (`0 ≤ t1 ≤ t2 < ∞`).
pub fn until_time_interval(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t1: f64,
    t2: f64,
    epsilon: f64,
) -> Result<Vec<f64>, NumericsError> {
    let n = mrm.num_states();
    if phi.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: phi.len(),
        });
    }
    if psi.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: psi.len(),
        });
    }
    if !(t1.is_finite() && t2.is_finite() && 0.0 <= t1 && t1 <= t2) {
        return Err(NumericsError::InvalidParameter {
            name: "t1",
            value: t1,
            requirement: "need 0 <= t1 <= t2 < infinity",
        });
    }
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(NumericsError::InvalidParameter {
            name: "epsilon",
            value: epsilon,
            requirement: "must be in (0, 1)",
        });
    }
    if t1 == 0.0 {
        return until_time_bounded(mrm, phi, psi, t2, epsilon);
    }

    // Phase 2: ordinary bounded until over [0, t2 − t1], zeroed outside Φ
    // (mass sitting in a ¬Φ-state at time t1 has already failed — even a
    // Ψ ∧ ¬Φ state, since its entry time was strictly before t1).
    let mut u = until_time_bounded(mrm, phi, psi, t2 - t1, epsilon)?;
    for (s, value) in u.iter_mut().enumerate() {
        if !phi[s] {
            *value = 0.0;
        }
    }

    // Phase 1: propagate backward through M[¬Φ] for t1 time units.
    phi_constrained_backward(mrm, phi, u, t1, epsilon)
}

/// Propagate per-state values `u` backward through `M[¬Φ]` for `t1` time
/// units: result(s) = `Σ_{s'} π^{M[¬Φ]}(s, s', t1) · u(s')`.
///
/// This is the phase-1 kernel of the interval-until decomposition, exposed
/// so callers can compose it with other phase-2 values (e.g. unbounded
/// reachability for `Φ U^{[t1,∞)} Ψ`).
///
/// # Errors
///
/// [`NumericsError`] for size mismatches or invalid parameters.
pub fn phi_constrained_backward(
    mrm: &Mrm,
    phi: &[bool],
    mut u: Vec<f64>,
    t1: f64,
    epsilon: f64,
) -> Result<Vec<f64>, NumericsError> {
    let n = mrm.num_states();
    if phi.len() != n || u.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: phi.len().min(u.len()),
        });
    }
    if !(t1.is_finite() && t1 >= 0.0) {
        return Err(NumericsError::InvalidParameter {
            name: "t1",
            value: t1,
            requirement: "must be finite and non-negative",
        });
    }
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(NumericsError::InvalidParameter {
            name: "epsilon",
            value: epsilon,
            requirement: "must be in (0, 1)",
        });
    }
    let absorb: Vec<bool> = phi.iter().map(|&p| !p).collect();
    let constrained = make_absorbing(mrm, &absorb)?;
    let (uni, lambda) = constrained.ctmc().uniformized(None)?;
    let p = uni.probabilities();
    let fg = FoxGlynn::new(lambda * t1, epsilon);
    let mut acc = vec![0.0; n];
    for step in 0..=fg.right() {
        if step >= fg.left() {
            let w = fg.weights()[(step - fg.left()) as usize];
            for (a, x) in acc.iter_mut().zip(&u) {
                *a += w * x;
            }
        }
        if step < fg.right() {
            u = p.mul_vec(&u);
        }
    }
    for a in &mut acc {
        *a = a.clamp(0.0, 1.0);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniformization::{self, UniformOptions};
    use mrmc_ctmc::CtmcBuilder;

    fn triangle() -> Mrm {
        // 0 → 1 → 2 (absorbing), plus an escape 0 → 2 directly.
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1.0)
            .transition(0, 2, 0.5)
            .transition(1, 2, 2.0);
        b.label(0, "a").label(1, "a").label(2, "goal");
        Mrm::without_rewards(b.build().unwrap())
    }

    #[test]
    fn exponential_single_step() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 3.0);
        b.label(1, "goal");
        let m = Mrm::without_rewards(b.build().unwrap());
        let phi = vec![true, true];
        let psi = vec![false, true];
        let r = until_time_bounded(&m, &phi, &psi, 0.7, 1e-12).unwrap();
        let expect = 1.0 - (-3.0 * 0.7f64).exp();
        assert!((r[0] - expect).abs() < 1e-10);
        assert!((r[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn t_zero_is_the_indicator() {
        let m = triangle();
        let phi = vec![true, true, true];
        let psi = vec![false, false, true];
        assert_eq!(
            until_time_bounded(&m, &phi, &psi, 0.0, 1e-10).unwrap(),
            vec![0.0, 0.0, 1.0]
        );
    }

    #[test]
    fn agrees_with_path_engine_at_infinite_reward_bound() {
        let m = triangle();
        let phi = m.labeling().states_with("a");
        let psi = m.labeling().states_with("goal");
        let baseline = until_time_bounded(&m, &phi, &psi, 1.5, 1e-12).unwrap();
        #[allow(clippy::needless_range_loop)] // s is also the start state
        for s in 0..3 {
            let engine = uniformization::until_probability(
                &m,
                &phi,
                &psi,
                1.5,
                f64::INFINITY,
                s,
                UniformOptions::new().with_truncation(1e-13),
            )
            .unwrap();
            assert!(
                (baseline[s] - engine.probability).abs() < 1e-7 + engine.error_bound,
                "state {s}: {} vs {}",
                baseline[s],
                engine.probability
            );
        }
    }

    #[test]
    fn phi_restriction_matters() {
        // 0 → 1 → 2: if 1 is not a Φ-state, only the direct 0 → 2 jump
        // counts.
        let m = triangle();
        let phi = vec![true, false, true];
        let psi = vec![false, false, true];
        let r = until_time_bounded(&m, &phi, &psi, 10.0, 1e-12).unwrap();
        // From 0: race between 0→1 (rate 1, loses) and 0→2 (rate 0.5,
        // wins); over long t: P = 0.5/1.5 = 1/3.
        assert!((r[0] - 1.0 / 3.0).abs() < 1e-6, "{}", r[0]);
        assert_eq!(r[1], 0.0);
    }

    #[test]
    fn probability_increases_with_t() {
        let m = triangle();
        let phi = vec![true, true, true];
        let psi = vec![false, false, true];
        let mut prev = 0.0;
        for &t in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            let r = until_time_bounded(&m, &phi, &psi, t, 1e-12).unwrap();
            assert!(r[0] >= prev - 1e-12);
            prev = r[0];
        }
        assert!(prev > 0.95);
    }

    #[test]
    fn interval_until_on_absorbing_goal() {
        // 0 →(2) goal (absorbing): a witness in [a, b] exists iff the jump
        // happens by b (goal persists): P = 1 − e^{−2b}.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 2.0);
        b.label(1, "goal");
        let m = Mrm::without_rewards(b.build().unwrap());
        let phi = vec![true, true];
        let psi = vec![false, true];
        let r = until_time_interval(&m, &phi, &psi, 0.5, 1.0, 1e-12).unwrap();
        let exact = 1.0 - (-2.0f64).exp();
        assert!((r[0] - exact).abs() < 1e-9, "{} vs {exact}", r[0]);
        assert!((r[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interval_until_with_phi_constraint() {
        // 0 →(1) trap(¬Φ), 0 →(1) goal: with I = [a, b] the path must stay
        // in Φ (state 0 or goal) up to the witness. From 0:
        // P = Pr{first jump ≤ b and it goes to goal} = ½(1 − e^{−2b}).
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1.0).transition(0, 2, 1.0);
        b.label(0, "a").label(2, "goal");
        let m = Mrm::without_rewards(b.build().unwrap());
        let phi = vec![true, false, true];
        let psi = vec![false, false, true];
        let (a, bb) = (0.3, 1.2);
        let r = until_time_interval(&m, &phi, &psi, a, bb, 1e-12).unwrap();
        let exact = 0.5 * (1.0 - (-2.0 * bb).exp());
        assert!((r[0] - exact).abs() < 1e-9, "{} vs {exact}", r[0]);
        // The trap state can never satisfy the formula.
        assert_eq!(r[1], 0.0);
    }

    #[test]
    fn interval_until_transient_goal_requires_presence_in_window() {
        // 0 →(1) goal →(3) 0 (goal is left again): the witness must fall in
        // [t1, t2] while the path is in goal, with Φ = tt. Cross-check the
        // exact two-phase value against the statistical checker.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(1, 0, 3.0);
        b.label(1, "goal");
        let m = Mrm::without_rewards(b.build().unwrap());
        let phi = vec![true, true];
        let psi = vec![false, true];
        let window = mrmc_csrl::Interval::new(0.5, 0.9).unwrap();
        let exact = until_time_interval(&m, &phi, &psi, 0.5, 0.9, 1e-12).unwrap();
        let sim = crate::monte_carlo::estimate_until_general(
            &m,
            &phi,
            &psi,
            &window,
            &mrmc_csrl::Interval::unbounded(),
            0,
            crate::monte_carlo::SimulationOptions::with_samples(120_000),
        )
        .unwrap();
        assert!(
            sim.is_consistent_with(exact[0], 4.0),
            "exact {} vs sim {} ± {}",
            exact[0],
            sim.mean,
            sim.std_error
        );
    }

    #[test]
    fn interval_until_degenerates_to_bounded_until() {
        let m = triangle();
        let phi = m.labeling().states_with("a");
        let psi = m.labeling().states_with("goal");
        let a = until_time_interval(&m, &phi, &psi, 0.0, 1.5, 1e-12).unwrap();
        let b = until_time_bounded(&m, &phi, &psi, 1.5, 1e-12).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn interval_until_rejects_bad_windows() {
        let m = triangle();
        let phi = vec![true; 3];
        let psi = vec![false, false, true];
        assert!(until_time_interval(&m, &phi, &psi, 2.0, 1.0, 1e-10).is_err());
        assert!(until_time_interval(&m, &phi, &psi, -1.0, 1.0, 1e-10).is_err());
        assert!(until_time_interval(&m, &phi, &psi, 0.0, f64::INFINITY, 1e-10).is_err());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let m = triangle();
        let phi = vec![true, true, true];
        let psi = vec![false, false, true];
        assert!(until_time_bounded(&m, &phi[..2], &psi, 1.0, 1e-10).is_err());
        assert!(until_time_bounded(&m, &phi, &psi[..2], 1.0, 1e-10).is_err());
        assert!(until_time_bounded(&m, &phi, &psi, f64::NAN, 1e-10).is_err());
        assert!(until_time_bounded(&m, &phi, &psi, 1.0, 0.0).is_err());
        assert!(until_time_bounded(&m, &phi, &psi, 1.0, 1.5).is_err());
    }
}
