//! Compensated (Kahan) summation.
//!
//! The path-exploration engine accumulates millions of tiny path
//! probabilities into per-class totals and into the Eq. 4.6 error bound;
//! compensated summation keeps those folds accurate independent of length.
//! Just as important for this workspace: the *same* [`KahanSum`] is used by
//! the serial engine and by the parallel engine's ordered replay reduction,
//! so equality of addition order implies bit-for-bit equality of results.

/// A running compensated sum.
///
/// ```
/// use mrmc_numerics::kahan::KahanSum;
///
/// let mut acc = KahanSum::new();
/// for _ in 0..10 {
///     acc.add(0.1);
/// }
/// assert_eq!(acc.value(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// An empty sum.
    pub fn new() -> Self {
        KahanSum::default()
    }

    /// Add one term (Kahan's compensated update).
    pub fn add(&mut self, x: f64) {
        let y = x - self.compensation;
        let t = self.sum + y;
        self.compensation = (t - self.sum) - y;
        self.sum = t;
    }

    /// The current value of the sum.
    pub fn value(&self) -> f64 {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_representable_sums() {
        let mut acc = KahanSum::new();
        for _ in 0..4 {
            acc.add(0.25);
        }
        assert_eq!(acc.value(), 1.0);
    }

    #[test]
    fn beats_naive_summation() {
        // 1 + n·ε where each ε alone underflows the addition.
        let eps = 1e-16;
        let n = 100_000;
        let mut naive = 1.0_f64;
        let mut kahan = KahanSum::new();
        kahan.add(1.0);
        for _ in 0..n {
            naive += eps;
            kahan.add(eps);
        }
        let exact = 1.0 + n as f64 * eps;
        assert!((kahan.value() - exact).abs() <= (naive - exact).abs());
        assert!((kahan.value() - exact).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_order() {
        let xs = [0.1, 1e-9, 7.25, 1e-17, 0.3];
        let mut a = KahanSum::new();
        let mut b = KahanSum::new();
        for &x in &xs {
            a.add(x);
            b.add(x);
        }
        assert_eq!(a.value().to_bits(), b.value().to_bits());
    }
}
