//! Aggregated path classes produced by depth-first path generation.
//!
//! Several paths share the same `(n, k, j)` characterization (Section 4.6.2,
//! "several paths may be represented by the same value"); their probabilities
//! are summed so the expensive conditional probability is computed once per
//! class.

use std::collections::BTreeMap;

use crate::kahan::KahanSum;

/// The `(k, j)` characterization of a path class; the path length `n` is
/// implicit (`Σ k_i = n + 1`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathClassKey {
    /// Residence counts per distinct state reward (descending order).
    pub k: Box<[u32]>,
    /// Occurrence counts per distinct impulse reward (descending order).
    pub j: Box<[u32]>,
}

impl PathClassKey {
    /// The path length `n` of the class (`Σ k_i − 1`).
    pub fn path_length(&self) -> u64 {
        self.k.iter().map(|&c| u64::from(c)).sum::<u64>() - 1
    }
}

/// The result of a depth-first path generation run: aggregated class
/// probabilities, the truncation error bound, and exploration statistics.
#[derive(Debug, Clone, Default)]
pub struct PathClasses {
    /// Ordered map so iteration (and hence floating-point summation order
    /// in Eq. 4.5) is deterministic across runs. Per-class probabilities
    /// are Kahan-compensated: together with the parallel engine's ordered
    /// event replay, identical addition order yields bit-identical values
    /// at any thread count.
    classes: BTreeMap<PathClassKey, KahanSum>,
    error_bound: KahanSum,
    stored_paths: u64,
    truncated_paths: u64,
    explored_nodes: u64,
    max_depth: u64,
}

impl PathClasses {
    /// An empty accumulation.
    pub fn new() -> Self {
        PathClasses::default()
    }

    /// Add `path_probability` (`P(σ)`, without the Poisson factor) to the
    /// class `(k, j)`.
    pub fn store(&mut self, k: &[u32], j: &[u32], path_probability: f64) {
        let key = PathClassKey {
            k: k.to_vec().into_boxed_slice(),
            j: j.to_vec().into_boxed_slice(),
        };
        self.classes.entry(key).or_default().add(path_probability);
        self.stored_paths += 1;
    }

    /// Record the error contribution of a truncated path (Eq. 4.6).
    pub fn add_error(&mut self, contribution: f64) {
        self.error_bound.add(contribution);
        self.truncated_paths += 1;
    }

    /// Count one explored node at the given depth.
    pub fn count_node(&mut self, depth: u64) {
        self.explored_nodes += 1;
        self.max_depth = self.max_depth.max(depth);
    }

    /// Merge bulk exploration statistics (explored-node count and deepest
    /// level). Used by the parallel engine's reduction, where workers count
    /// nodes locally — both quantities are order-insensitive integers, so
    /// bulk merging cannot perturb determinism.
    pub fn add_node_stats(&mut self, explored_nodes: u64, max_depth: u64) {
        self.explored_nodes += explored_nodes;
        self.max_depth = self.max_depth.max(max_depth);
    }

    /// Iterate `(class, accumulated P(σ))` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&PathClassKey, f64)> {
        self.classes.iter().map(|(k, v)| (k, v.value()))
    }

    /// Number of distinct `(k, j)` classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The accumulated truncation error bound `E` of Eq. 4.6.
    pub fn error_bound(&self) -> f64 {
        self.error_bound.value()
    }

    /// Number of stored (satisfying) path prefixes.
    pub fn stored_paths(&self) -> u64 {
        self.stored_paths
    }

    /// Number of truncated (discarded) path prefixes that could still have
    /// satisfied the formula.
    pub fn truncated_paths(&self) -> u64 {
        self.truncated_paths
    }

    /// Number of DFS nodes expanded.
    pub fn explored_nodes(&self) -> u64 {
        self.explored_nodes
    }

    /// Deepest path length reached.
    pub fn max_depth(&self) -> u64 {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_merge_by_key() {
        let mut pc = PathClasses::new();
        pc.store(&[2, 1], &[1, 0], 0.25);
        pc.store(&[2, 1], &[1, 0], 0.5);
        pc.store(&[1, 2], &[1, 0], 0.125);
        assert_eq!(pc.num_classes(), 2);
        assert_eq!(pc.stored_paths(), 3);
        let total: f64 = pc.iter().map(|(_, p)| p).sum();
        assert!((total - 0.875).abs() < 1e-15);
    }

    #[test]
    fn path_length_from_k() {
        let key = PathClassKey {
            k: vec![1, 2, 2, 2].into_boxed_slice(),
            j: vec![4, 2, 0].into_boxed_slice(),
        };
        assert_eq!(key.path_length(), 6);
    }

    #[test]
    fn error_and_stats_accumulate() {
        let mut pc = PathClasses::new();
        pc.add_error(1e-6);
        pc.add_error(2e-6);
        pc.count_node(0);
        pc.count_node(5);
        pc.count_node(3);
        assert!((pc.error_bound() - 3e-6).abs() < 1e-18);
        assert_eq!(pc.truncated_paths(), 2);
        assert_eq!(pc.explored_nodes(), 3);
        assert_eq!(pc.max_depth(), 5);
    }

    #[test]
    fn bulk_node_stats_merge() {
        let mut pc = PathClasses::new();
        pc.count_node(2);
        pc.add_node_stats(10, 7);
        pc.add_node_stats(5, 3);
        assert_eq!(pc.explored_nodes(), 16);
        assert_eq!(pc.max_depth(), 7);
    }
}
