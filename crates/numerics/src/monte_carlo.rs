//! Monte-Carlo simulation of reward models — an engine-independent
//! validation path.
//!
//! The thesis establishes correctness by agreement between uniformization
//! and discretization (§5.3.3); this module adds a third, structurally
//! unrelated estimator: direct simulation of the CTMC race semantics with
//! reward accumulation along the sampled trajectory. The integration tests
//! cross-check all three.

use mrmc_sparse::rng::Xoshiro256StarStar;

use mrmc_csrl::Interval;
use mrmc_mrm::{Mrm, TimedPath};

use crate::error::NumericsError;
use crate::path_semantics;

/// Options for the simulation estimators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationOptions {
    /// Number of independent trajectories.
    pub samples: u64,
    /// RNG seed (estimates are deterministic per seed).
    pub seed: u64,
}

impl SimulationOptions {
    /// `samples` trajectories from a fixed default seed.
    pub fn with_samples(samples: u64) -> Self {
        SimulationOptions {
            samples,
            seed: 0x5EED_CAFE,
        }
    }

    /// Change the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A simulation estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of samples used.
    pub samples: u64,
}

impl Estimate {
    /// `true` when `value` lies within `sigmas` standard errors of the
    /// mean — the acceptance test used when validating the numerical
    /// engines.
    pub fn is_consistent_with(&self, value: f64, sigmas: f64) -> bool {
        (value - self.mean).abs() <= sigmas * self.std_error + 1e-12
    }

    /// The distribution-free Hoeffding radius of this estimate at
    /// confidence `1 − delta`: `Pr{|mean − p| ≥ radius} ≤ delta` for *any*
    /// Bernoulli parameter `p`, with no normality assumption. This is the
    /// value the simulation engine reports in its statistical budget
    /// component.
    pub fn hoeffding_radius(&self, delta: f64) -> f64 {
        hoeffding_radius(self.samples, delta)
    }

    /// The Wilson score interval `(lo, hi)` at `z` standard normal
    /// quantiles — sharper than Hoeffding near 0 and 1, used by the
    /// oracle-backed validation tests.
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        let n = self.samples as f64;
        let z2 = z * z;
        let center = (self.mean + z2 / (2.0 * n)) / (1.0 + z2 / n);
        let half = (z / (1.0 + z2 / n))
            * ((self.mean * (1.0 - self.mean) / n) + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

/// Hoeffding radius for a Bernoulli mean over `samples` draws at
/// confidence `1 − delta`: `√(ln(2/δ) / 2n)`.
pub fn hoeffding_radius(samples: u64, delta: f64) -> f64 {
    ((2.0 / delta).ln() / (2.0 * samples as f64)).sqrt()
}

/// The smallest sample count whose Hoeffding radius is at most `epsilon`
/// at confidence `1 − delta`: `⌈ln(2/δ) / 2ε²⌉`. Returns `None` when the
/// count would overflow practical limits (> 2^53).
pub fn hoeffding_samples(epsilon: f64, delta: f64) -> Option<u64> {
    if !(epsilon > 0.0 && delta > 0.0 && delta < 1.0) {
        return None;
    }
    let n = ((2.0 / delta).ln() / (2.0 * epsilon * epsilon)).ceil();
    if n.is_finite() && n <= 9.0e15 {
        Some(n.max(1.0) as u64)
    } else {
        None
    }
}

fn validate(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    r: f64,
    start: usize,
    options: &SimulationOptions,
) -> Result<(), NumericsError> {
    let n = mrm.num_states();
    if phi.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: phi.len(),
        });
    }
    if psi.len() != n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: psi.len(),
        });
    }
    if start >= n {
        return Err(NumericsError::SizeMismatch {
            expected: n,
            found: start,
        });
    }
    if !(t.is_finite() && t >= 0.0) {
        return Err(NumericsError::InvalidParameter {
            name: "t",
            value: t,
            requirement: "must be finite and non-negative",
        });
    }
    if r.is_nan() || r < 0.0 {
        return Err(NumericsError::InvalidParameter {
            name: "r",
            value: r,
            requirement: "must be non-negative",
        });
    }
    if options.samples == 0 {
        return Err(NumericsError::InvalidParameter {
            name: "samples",
            value: 0.0,
            requirement: "must be positive",
        });
    }
    Ok(())
}

/// Sample one sojourn time from `Exp(rate)`.
fn sample_exp(rng: &mut Xoshiro256StarStar, rate: f64) -> f64 {
    // Inverse CDF on (0, 1]; `1 - gen::<f64>()` avoids ln(0).
    -(1.0 - rng.next_f64()).ln() / rate
}

/// Pick the successor of `state` according to the race semantics.
fn sample_successor(mrm: &Mrm, rng: &mut Xoshiro256StarStar, state: usize, exit: f64) -> usize {
    let mut u = rng.next_f64() * exit;
    let mut last = state;
    for (target, rate) in mrm.ctmc().rates().row(state) {
        last = target;
        if u < rate {
            return target;
        }
        u -= rate;
    }
    // Floating-point slack lands on the final transition.
    last
}

/// Simulate one trajectory and report whether it satisfies
/// `Φ U^{[0,t]}_{[0,r]} Ψ`.
fn simulate_until(
    mrm: &Mrm,
    rng: &mut Xoshiro256StarStar,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    r: f64,
    start: usize,
) -> bool {
    let mut state = start;
    let mut time = 0.0;
    let mut reward = 0.0;
    loop {
        // Reward only grows along a trajectory, so one failed bound check
        // is terminal.
        if reward > r {
            return false;
        }
        if psi[state] {
            return true;
        }
        if !phi[state] {
            return false;
        }
        let exit = mrm.ctmc().exit_rate(state);
        if exit == 0.0 {
            return false; // absorbing non-Ψ state
        }
        let sojourn = sample_exp(rng, exit);
        if time + sojourn > t {
            return false; // the deadline passes during this sojourn
        }
        time += sojourn;
        reward += mrm.state_reward(state) * sojourn;
        let next = sample_successor(mrm, rng, state, exit);
        reward += mrm.impulse_reward(state, next);
        state = next;
    }
}

/// Estimate `P^M(start, Φ U^{[0,t]}_{[0,r]} Ψ)` by simulation.
///
/// ```
/// use mrmc_numerics::monte_carlo::{estimate_until, SimulationOptions};
///
/// // up --(2.0)--> down: Pr(tt U^{[0,1]} down) = 1 − e^{−2} ≈ 0.8647.
/// let mut b = mrmc_ctmc::CtmcBuilder::new(2);
/// b.transition(0, 1, 2.0);
/// let mrm = mrmc_mrm::Mrm::without_rewards(b.build()?);
/// let est = estimate_until(
///     &mrm, &[true, true], &[false, true], 1.0, f64::INFINITY, 0,
///     SimulationOptions::with_samples(20_000),
/// )?;
/// assert!(est.is_consistent_with(1.0 - (-2.0f64).exp(), 4.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// [`NumericsError`] for size mismatches or invalid parameters.
pub fn estimate_until(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    t: f64,
    r: f64,
    start: usize,
    options: SimulationOptions,
) -> Result<Estimate, NumericsError> {
    validate(mrm, phi, psi, t, r, start, &options)?;
    let mut rng = Xoshiro256StarStar::seed_from_u64(options.seed);
    let mut hits = 0u64;
    for _ in 0..options.samples {
        if simulate_until(mrm, &mut rng, phi, psi, t, r, start) {
            hits += 1;
        }
    }
    let n = options.samples as f64;
    let mean = hits as f64 / n;
    Ok(Estimate {
        mean,
        std_error: (mean * (1.0 - mean) / n).sqrt(),
        samples: options.samples,
    })
}

/// Estimate the performability distribution `Pr{Y(t) ≤ r}` by simulation.
///
/// # Errors
///
/// See [`estimate_until`].
pub fn estimate_performability(
    mrm: &Mrm,
    t: f64,
    r: f64,
    start: usize,
    options: SimulationOptions,
) -> Result<Estimate, NumericsError> {
    let all = vec![true; mrm.num_states()];
    validate(mrm, &all, &all, t, r, start, &options)?;
    let mut rng = Xoshiro256StarStar::seed_from_u64(options.seed);
    let mut hits = 0u64;
    for _ in 0..options.samples {
        let y = sample_accumulated_reward(mrm, &mut rng, start, t);
        if y <= r {
            hits += 1;
        }
    }
    let n = options.samples as f64;
    let mean = hits as f64 / n;
    Ok(Estimate {
        mean,
        std_error: (mean * (1.0 - mean) / n).sqrt(),
        samples: options.samples,
    })
}

/// Estimate the *expected* accumulated reward `E[Y(t)]` by simulation.
///
/// # Errors
///
/// See [`estimate_until`].
pub fn estimate_expected_reward(
    mrm: &Mrm,
    t: f64,
    start: usize,
    options: SimulationOptions,
) -> Result<Estimate, NumericsError> {
    let all = vec![true; mrm.num_states()];
    validate(mrm, &all, &all, t, 0.0, start, &options)?;
    let mut rng = Xoshiro256StarStar::seed_from_u64(options.seed);
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..options.samples {
        let y = sample_accumulated_reward(mrm, &mut rng, start, t);
        sum += y;
        sum_sq += y * y;
    }
    let n = options.samples as f64;
    let mean = sum / n;
    let variance = ((sum_sq / n) - mean * mean).max(0.0);
    Ok(Estimate {
        mean,
        std_error: (variance / n).sqrt(),
        samples: options.samples,
    })
}

/// Sample `y_σ(t)` along one trajectory.
fn sample_accumulated_reward(mrm: &Mrm, rng: &mut Xoshiro256StarStar, start: usize, t: f64) -> f64 {
    let mut state = start;
    let mut time = 0.0;
    let mut reward = 0.0;
    loop {
        let exit = mrm.ctmc().exit_rate(state);
        if exit == 0.0 {
            return reward + mrm.state_reward(state) * (t - time);
        }
        let sojourn = sample_exp(rng, exit);
        if time + sojourn >= t {
            return reward + mrm.state_reward(state) * (t - time);
        }
        time += sojourn;
        reward += mrm.state_reward(state) * sojourn;
        let next = sample_successor(mrm, rng, state, exit);
        reward += mrm.impulse_reward(state, next);
        state = next;
    }
}

/// Sample one trajectory up to `horizon` as a [`TimedPath`] (the final
/// recorded state holds the remainder).
///
/// # Errors
///
/// [`NumericsError`] for an out-of-range start state or invalid horizon.
pub fn sample_path(
    mrm: &Mrm,
    start: usize,
    horizon: f64,
    seed: u64,
) -> Result<TimedPath, NumericsError> {
    if start >= mrm.num_states() {
        return Err(NumericsError::SizeMismatch {
            expected: mrm.num_states(),
            found: start,
        });
    }
    if !(horizon.is_finite() && horizon > 0.0) {
        return Err(NumericsError::InvalidParameter {
            name: "horizon",
            value: horizon,
            requirement: "must be finite and positive",
        });
    }
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Ok(sample_path_with(mrm, &mut rng, start, horizon))
}

/// Internal sampler sharing one RNG across many trajectories.
fn sample_path_with(
    mrm: &Mrm,
    rng: &mut Xoshiro256StarStar,
    start: usize,
    horizon: f64,
) -> TimedPath {
    let mut states = vec![start];
    let mut sojourns = Vec::new();
    let mut time = 0.0;
    loop {
        let state = *states.last().expect("non-empty");
        let exit = mrm.ctmc().exit_rate(state);
        if exit == 0.0 {
            break;
        }
        let sojourn = sample_exp(rng, exit);
        if time + sojourn >= horizon {
            break;
        }
        time += sojourn;
        sojourns.push(sojourn);
        states.push(sample_successor(mrm, rng, state, exit));
    }
    TimedPath::new(states, sojourns).expect("sampled path is well-formed")
}

/// Statistically estimate `P^M(start, Φ U^I_J Ψ)` for **general** closed
/// intervals `I` and `J` — including the time/reward *lower* bounds the
/// thesis leaves as future work (Chapter 6). Each sampled trajectory is
/// evaluated exactly by [`path_semantics::until_holds`].
///
/// # Errors
///
/// [`NumericsError::UnsupportedBounds`] when `sup I = ∞` (a sampled
/// trajectory cannot certify an unbounded-time until unless it ends in an
/// absorbing state, so no finite simulation horizon suffices); size and
/// parameter errors as for [`estimate_until`].
pub fn estimate_until_general(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    time: &Interval,
    reward: &Interval,
    start: usize,
    options: SimulationOptions,
) -> Result<Estimate, NumericsError> {
    validate(mrm, phi, psi, time.lo(), reward.lo(), start, &options)?;
    if time.is_upper_unbounded() {
        return Err(NumericsError::UnsupportedBounds {
            what: "unbounded time horizon in the statistical checker",
        });
    }
    let horizon = (time.hi() * 1.0000001).max(1e-9);
    let mut rng = Xoshiro256StarStar::seed_from_u64(options.seed);
    let mut hits = 0u64;
    for _ in 0..options.samples {
        let path = sample_path_with(mrm, &mut rng, start, horizon);
        if path_semantics::until_holds(mrm, &path, phi, psi, time, reward)? {
            hits += 1;
        }
    }
    let n = options.samples as f64;
    let mean = hits as f64 / n;
    Ok(Estimate {
        mean,
        std_error: (mean * (1.0 - mean) / n).sqrt(),
        samples: options.samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniformization::{until_probability, UniformOptions};
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_mrm::{ImpulseRewards, StateRewards};

    fn two_state(lambda: f64) -> Mrm {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, lambda);
        b.label(1, "goal");
        Mrm::without_rewards(b.build().unwrap())
    }

    #[test]
    fn exponential_cdf_recovered() {
        let m = two_state(2.0);
        let phi = vec![true, true];
        let psi = vec![false, true];
        let est = estimate_until(
            &m,
            &phi,
            &psi,
            1.0,
            f64::INFINITY,
            0,
            SimulationOptions::with_samples(50_000),
        )
        .unwrap();
        let exact = 1.0 - (-2.0f64).exp();
        assert!(
            est.is_consistent_with(exact, 4.0),
            "estimate {} ± {} vs exact {exact}",
            est.mean,
            est.std_error
        );
    }

    #[test]
    fn agrees_with_uniformization_on_reward_bounded_until() {
        // The WaveLAN Example 3.6 setting.
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 0.1);
        b.transition(1, 0, 0.05).transition(1, 2, 5.0);
        b.transition(2, 1, 12.0)
            .transition(2, 3, 1.5)
            .transition(2, 4, 0.75);
        b.transition(3, 2, 10.0);
        b.transition(4, 2, 15.0);
        b.label(2, "idle");
        b.label(3, "busy");
        b.label(4, "busy");
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![0.0, 80.0, 1319.0, 1675.0, 1425.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(2, 3, 0.42545).unwrap();
        iota.set(2, 4, 0.36195).unwrap();
        let m = Mrm::new(ctmc, rho, iota).unwrap();

        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        // Tight reward bound so the impulse/rate interplay matters:
        // jump must happen before reward 700 is exhausted.
        let engine = until_probability(
            &m,
            &phi,
            &psi,
            2.0,
            700.0,
            2,
            UniformOptions::new()
                .with_truncation(1e-10)
                .with_improved_pruning(),
        )
        .unwrap();
        let est = estimate_until(
            &m,
            &phi,
            &psi,
            2.0,
            700.0,
            2,
            SimulationOptions::with_samples(60_000),
        )
        .unwrap();
        assert!(
            est.is_consistent_with(engine.probability, 4.0),
            "simulation {} ± {} vs engine {}",
            est.mean,
            est.std_error,
            engine.probability
        );
    }

    #[test]
    fn performability_total_mass() {
        let m = two_state(1.0);
        let est = estimate_performability(
            &m,
            1.0,
            f64::INFINITY,
            0,
            SimulationOptions::with_samples(1_000),
        )
        .unwrap();
        assert_eq!(est.mean, 1.0);
        assert_eq!(est.std_error, 0.0);
    }

    #[test]
    fn expected_reward_single_state() {
        // One absorbing state with ρ = 3: Y(t) = 3t deterministically.
        let ctmc = {
            let b = CtmcBuilder::new(1);
            b.build().unwrap()
        };
        let m = Mrm::new(
            ctmc,
            StateRewards::new(vec![3.0]).unwrap(),
            ImpulseRewards::new(),
        )
        .unwrap();
        let est =
            estimate_expected_reward(&m, 2.0, 0, SimulationOptions::with_samples(100)).unwrap();
        assert!((est.mean - 6.0).abs() < 1e-12);
        assert_eq!(est.std_error, 0.0);
    }

    #[test]
    fn expected_reward_counts_impulses() {
        // 0 →(λ) 1 (absorbing), impulse 1, no state rewards:
        // E[Y(t)] = Pr{jump ≤ t} = 1 − e^{−λt}.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 2.0);
        let ctmc = b.build().unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(0, 1, 1.0).unwrap();
        let m = Mrm::new(ctmc, StateRewards::zero(2), iota).unwrap();
        let est =
            estimate_expected_reward(&m, 1.0, 0, SimulationOptions::with_samples(60_000)).unwrap();
        let exact = 1.0 - (-2.0f64).exp();
        assert!(
            est.is_consistent_with(exact, 4.0),
            "{} ± {} vs {exact}",
            est.mean,
            est.std_error
        );
    }

    #[test]
    fn hoeffding_radius_and_sample_count_are_inverses() {
        let (eps, delta) = (1e-2, 1e-6);
        let n = hoeffding_samples(eps, delta).unwrap();
        assert!(hoeffding_radius(n, delta) <= eps);
        assert!(hoeffding_radius(n - 1, delta) > eps);
        // Degenerate requests are refused rather than rounded.
        assert!(hoeffding_samples(0.0, delta).is_none());
        assert!(hoeffding_samples(1e-2, 0.0).is_none());
        assert!(hoeffding_samples(1e-2, 1.0).is_none());
        // 1e-9 would need ~7·10^18 samples: unrepresentable, refused.
        assert!(hoeffding_samples(1e-9, delta).is_none());
    }

    #[test]
    fn confidence_intervals_cover_the_exponential_cdf() {
        let m = two_state(2.0);
        let phi = vec![true, true];
        let psi = vec![false, true];
        let est = estimate_until(
            &m,
            &phi,
            &psi,
            1.0,
            f64::INFINITY,
            0,
            SimulationOptions::with_samples(50_000),
        )
        .unwrap();
        let exact = 1.0 - (-2.0f64).exp();
        let radius = est.hoeffding_radius(1e-6);
        assert!(
            (est.mean - exact).abs() <= radius,
            "Hoeffding: {} ± {radius} vs {exact}",
            est.mean
        );
        let (lo, hi) = est.wilson_interval(4.0);
        assert!(
            lo <= exact && exact <= hi,
            "Wilson: [{lo}, {hi}] vs {exact}"
        );
        // Wilson at z = 4 is sharper than Hoeffding at δ = 1e-6 here.
        assert!(hi - lo < 2.0 * radius);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = two_state(1.0);
        let phi = vec![true, true];
        let psi = vec![false, true];
        let opts = SimulationOptions::with_samples(1_000).with_seed(7);
        let a = estimate_until(&m, &phi, &psi, 1.0, 1.0, 0, opts).unwrap();
        let b = estimate_until(&m, &phi, &psi, 1.0, 1.0, 0, opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_paths_are_valid() {
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1.0)
            .transition(1, 2, 2.0)
            .transition(2, 0, 0.5);
        let m = Mrm::without_rewards(b.build().unwrap());
        for seed in 0..20 {
            let p = sample_path(&m, 0, 10.0, seed).unwrap();
            p.validate_in(&m).unwrap();
            assert!(p.horizon() < 10.0);
            assert_eq!(p.state(0), 0);
        }
    }

    #[test]
    fn sample_path_stops_at_absorbing_state() {
        let m = two_state(100.0);
        let p = sample_path(&m, 0, 1000.0, 3).unwrap();
        assert_eq!(p.last_state(), 1);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let m = two_state(1.0);
        let phi = vec![true, true];
        let psi = vec![false, true];
        assert!(estimate_until(
            &m,
            &phi,
            &psi,
            1.0,
            1.0,
            0,
            SimulationOptions::with_samples(0)
        )
        .is_err());
        assert!(estimate_until(
            &m,
            &phi[..1],
            &psi,
            1.0,
            1.0,
            0,
            SimulationOptions::with_samples(10)
        )
        .is_err());
        assert!(sample_path(&m, 9, 1.0, 0).is_err());
        assert!(sample_path(&m, 0, 0.0, 0).is_err());
        assert!(sample_path(&m, 0, f64::INFINITY, 0).is_err());
    }
}

#[cfg(test)]
mod general_bounds_tests {
    use super::*;
    use mrmc_ctmc::CtmcBuilder;

    fn two_state(lambda: f64) -> Mrm {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, lambda);
        b.label(1, "goal");
        Mrm::without_rewards(b.build().unwrap())
    }

    #[test]
    fn general_estimator_matches_the_restricted_one_on_upper_bounds() {
        let m = two_state(2.0);
        let phi = vec![true, true];
        let psi = vec![false, true];
        let opts = SimulationOptions::with_samples(40_000);
        let restricted = estimate_until(&m, &phi, &psi, 1.0, f64::INFINITY, 0, opts).unwrap();
        let general = estimate_until_general(
            &m,
            &phi,
            &psi,
            &Interval::upto(1.0),
            &Interval::unbounded(),
            0,
            opts,
        )
        .unwrap();
        // Same estimator class; agreement within combined standard errors.
        let tol = 4.0 * (restricted.std_error + general.std_error) + 1e-9;
        assert!(
            (restricted.mean - general.mean).abs() <= tol,
            "{} vs {}",
            restricted.mean,
            general.mean
        );
    }

    #[test]
    fn time_lower_bound_window() {
        // 0 →(λ=2) 1(goal, absorbing): the jump time T ~ Exp(2); the until
        // with I = [a, b] holds iff T ≤ b (goal is absorbing, so being
        // there at max(T, a) works — the witness τ can be any time ≥ T).
        // Pr = 1 − e^{−2b}.
        let m = two_state(2.0);
        let phi = vec![true, true];
        let psi = vec![false, true];
        let window = Interval::new(0.5, 1.0).unwrap();
        let est = estimate_until_general(
            &m,
            &phi,
            &psi,
            &window,
            &Interval::unbounded(),
            0,
            SimulationOptions::with_samples(60_000),
        )
        .unwrap();
        let exact = 1.0 - (-2.0f64 * 1.0).exp();
        assert!(
            est.is_consistent_with(exact, 4.0),
            "{} ± {} vs {exact}",
            est.mean,
            est.std_error
        );
    }

    #[test]
    fn reward_lower_bound_window() {
        // Same chain with ρ(goal) = 1: after reaching goal the reward grows
        // linearly, so J = [c, ∞) is eventually met whenever the jump
        // happens early enough for the witness to stay inside I = [0, b]:
        // need T + (waiting for reward c) ≤ b with reward earned only in
        // goal ⇒ witness exists iff T + c ≤ b. Pr = 1 − e^{−2(b−c)}.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 2.0);
        b.label(1, "goal");
        let ctmc = b.build().unwrap();
        let m = Mrm::new(
            ctmc,
            mrmc_mrm::StateRewards::new(vec![0.0, 1.0]).unwrap(),
            mrmc_mrm::ImpulseRewards::new(),
        )
        .unwrap();
        let phi = vec![true, true];
        let psi = vec![false, true];
        let (bound_t, bound_r) = (2.0, 0.5);
        let est = estimate_until_general(
            &m,
            &phi,
            &psi,
            &Interval::upto(bound_t),
            &Interval::new(bound_r, f64::INFINITY).unwrap(),
            0,
            SimulationOptions::with_samples(60_000),
        )
        .unwrap();
        let exact = 1.0 - (-2.0f64 * (bound_t - bound_r)).exp();
        assert!(
            est.is_consistent_with(exact, 4.0),
            "{} ± {} vs {exact}",
            est.mean,
            est.std_error
        );
    }

    #[test]
    fn unbounded_time_rejected() {
        let m = two_state(1.0);
        let phi = vec![true, true];
        let psi = vec![false, true];
        assert!(matches!(
            estimate_until_general(
                &m,
                &phi,
                &psi,
                &Interval::unbounded(),
                &Interval::unbounded(),
                0,
                SimulationOptions::with_samples(10),
            ),
            Err(NumericsError::UnsupportedBounds { .. })
        ));
    }
}
