//! Numerical engines for model checking Markov reward models with impulse
//! rewards.
//!
//! This crate implements Chapter 4 of *Model Checking Markov Reward Models
//! with Impulse Rewards* — the numerically hard part of the thesis: computing
//! the joint probability `Pr{Y(t) ≤ r, X(t) ⊨ Ψ}` that underlies
//! time-and-reward-bounded until formulas (Theorems 4.1–4.3).
//!
//! Two independent engines are provided, mirroring the thesis:
//!
//! * [`uniformization`] — depth-first path generation over the uniformized
//!   MRM (Algorithm 4.7) with path truncation by probability `w`, path-class
//!   aggregation on `(k, j)` reward-count vectors, conditional probabilities
//!   by the Omega algorithm of Diniz, de Souza e Silva & Gail
//!   (Algorithm 4.8, module [`omega`]), and the error bound of Eq. 4.6;
//! * [`discretization`] — the Tijms–Veldman discretization extended with
//!   impulse rewards (Algorithm 4.6).
//!
//! A third module, [`baseline`], implements the pre-existing state-of-the-art
//! the thesis compares against: time-bounded until *without* reward bounds
//! via Fox–Glynn uniformization (`[Bai03]`). Beyond the paper, the crate adds
//! a [`monte_carlo`] simulation engine (an independent validation path for
//! both numerical engines) and the mean performability measure `E[Y(t)]`
//! ([`expected`]).
//!
//! # Example: `Pr{Y(t) ≤ r, X(t) ⊨ Ψ}` on the WaveLAN model
//!
//! ```
//! use mrmc_numerics::uniformization::{until_probability, UniformOptions};
//!
//! # fn wavelan() -> mrmc_mrm::Mrm {
//! #     let mut b = mrmc_ctmc::CtmcBuilder::new(5);
//! #     b.transition(0, 1, 0.1);
//! #     b.transition(1, 0, 0.05).transition(1, 2, 5.0);
//! #     b.transition(2, 1, 12.0).transition(2, 3, 1.5).transition(2, 4, 0.75);
//! #     b.transition(3, 2, 10.0);
//! #     b.transition(4, 2, 15.0);
//! #     b.label(2, "idle");
//! #     b.label(3, "busy");
//! #     b.label(4, "busy");
//! #     let ctmc = b.build().unwrap();
//! #     let rho = mrmc_mrm::StateRewards::new(vec![0.0, 80.0, 1319.0, 1675.0, 1425.0]).unwrap();
//! #     let mut iota = mrmc_mrm::ImpulseRewards::new();
//! #     iota.set(2, 3, 0.42545).unwrap();
//! #     iota.set(2, 4, 0.36195).unwrap();
//! #     mrmc_mrm::Mrm::new(ctmc, rho, iota).unwrap()
//! # }
//! let mrm = wavelan();
//! let phi = mrm.labeling().states_with("idle");
//! let psi = mrm.labeling().states_with("busy");
//! // Λt ≈ 29 here, so potential-based pruning keeps the default
//! // truncation probability usable (see `UniformOptions`).
//! let result = until_probability(
//!     &mrm, &phi, &psi, 2.0, 2000.0, 2,
//!     UniformOptions::new().with_improved_pruning(),
//! )?;
//! // Example 3.6 computes this probability in closed form: ≈ 0.15789.
//! assert!((result.probability - 0.15789).abs() < 1e-3);
//! # Ok::<(), mrmc_numerics::NumericsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod baseline;
pub mod budget;
pub mod cost;
pub mod discretization;
mod error;
pub mod expected;
pub mod kahan;
pub mod monte_carlo;
pub mod omega;
pub mod parallel;
mod path_classes;
pub mod path_semantics;
pub mod reward_structure;
pub mod uniformization;

pub use budget::ErrorBudget;
pub use error::NumericsError;
pub use path_classes::{PathClassKey, PathClasses};

// Re-export the Poisson layer where the algorithms of this crate expect it.
pub use mrmc_ctmc::poisson;
