//! Multi-threaded path exploration for the uniformization engine, built on
//! `std::thread`/`std::sync` only.
//!
//! # Why this is safe to parallelize
//!
//! Algorithm 4.7 explores a tree of path prefixes; the subtree under any
//! prefix depends only on that prefix's state, depth, probability, and
//! `(k, j)` reward counts. Subtrees are therefore independent units of
//! work. The only subtlety is floating-point reproducibility: the serial
//! engine folds path probabilities into per-class totals and the Eq. 4.6
//! error bound in DFS order, and floating-point addition is not
//! associative, so naive "sum per worker, merge at the end" would give
//! results that vary with the thread count.
//!
//! # Deterministic event-replay reduction
//!
//! This module sidesteps that with a three-phase design whose output is
//! **bit-for-bit identical to the serial engine at any thread count**:
//!
//! 1. **Frontier (sequential).** A bounded DFS runs the ordinary visit
//!    logic down to a cutoff depth. Instead of recursing past the cutoff it
//!    records a `Task` — a snapshot of the pending subtree root (state,
//!    depth, path probability, Poisson-weighted probability, and the
//!    `(k, j)` counts). This snapshot is the *shared-prefix cache*: the
//!    prefix's probability and reward counts are computed once here and
//!    reused by whichever worker claims the subtree, instead of re-walking
//!    the prefix. Store/error events emitted by the frontier itself and the
//!    task markers are recorded in one ordered master list. Because a DFS
//!    subtree occupies a contiguous interval of the serial event sequence,
//!    this master list is exactly the serial event stream with each
//!    deferred subtree collapsed to a placeholder.
//! 2. **Workers (parallel).** `N` scoped threads claim tasks from an
//!    atomic counter (a work queue with built-in load balancing — the
//!    frontier is deepened until there are at least
//!    `threads × chunk_size` tasks). Each worker runs the identical visit
//!    logic on its subtree, recording its Store/error events *in order*
//!    into a private buffer. Node counts are aggregated as plain integers
//!    (order-insensitive).
//! 3. **Replay (sequential).** The master list is replayed in order; task
//!    placeholders are spliced with the owning worker's event buffer. The
//!    result is the exact serial event order, applied to the same
//!    Kahan-compensated accumulators ([`PathClasses`]) the serial engine
//!    uses — hence bitwise equality, which the tests assert with
//!    `to_bits()`.
//!
//! The second parallel surface is Eq. 4.5 itself: the per-class
//! conditional probabilities `Ω(r', k)` are pure functions of their inputs
//! (memoization only avoids recomputation), so `omega_terms` computes
//! them with per-worker [`OmegaEvaluator`]s and the caller folds the terms
//! in class order — again identical to the serial fold.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use mrmc_ctmc::poisson;
use mrmc_mrm::UniformizedMrm;

use crate::error::NumericsError;
use crate::omega::{OmegaEvaluator, OmegaTermCache};
use crate::path_classes::PathClasses;
use crate::reward_structure::RewardClasses;
use crate::uniformization::UniformOptions;

/// Deepest frontier cutoff tried when hunting for enough tasks; bounds the
/// cost of iterative deepening on degenerate (chain-like) models.
const MAX_CUTOFF: u64 = 16;

/// Everything the visit logic reads, shared immutably across workers.
struct ExploreCtx<'a> {
    uni: &'a UniformizedMrm,
    rc: &'a RewardClasses,
    phi: &'a [bool],
    psi: &'a [bool],
    lambda_t: f64,
    w: f64,
    max_depth: u64,
    /// `max_m ψ_m(Λt)` for potential-based pruning (`None` = literal rule).
    mode_pmf: Option<f64>,
}

/// The mutable `(k, j)` reward-count vectors threaded through the DFS.
struct Counts {
    k: Vec<u32>,
    j: Vec<u32>,
}

/// A deferred subtree: the cached shared prefix (probabilities and reward
/// counts) a worker resumes from.
struct Task {
    state: usize,
    n: u64,
    path_prob: f64,
    weighted: f64,
    k: Box<[u32]>,
    j: Box<[u32]>,
}

/// An ordered accumulation event; replaying these in serial order is what
/// makes the reduction exact.
enum Event {
    /// A Ψ-ending prefix: add `prob` to class `(k, j)`.
    Store {
        k: Box<[u32]>,
        j: Box<[u32]>,
        prob: f64,
    },
    /// A truncated prefix's Eq. 4.6 error contribution.
    Error(f64),
}

/// One entry of the frontier's master list: an own event or a placeholder
/// for a deferred subtree.
enum MasterItem {
    Event(Event),
    Task(usize),
}

/// Where the visit logic reports its findings. The three implementations
/// (direct-to-`PathClasses`, frontier recorder, worker recorder) share the
/// identical traversal, so the event streams they see are the same.
trait Sink {
    fn node(&mut self, depth: u64);
    fn store(&mut self, k: &[u32], j: &[u32], prob: f64);
    fn error(&mut self, contribution: f64);
    /// Offer a child subtree for deferral *before* recursion; returning
    /// `true` claims it (frontier), `false` lets the DFS recurse inline.
    fn offer(
        &mut self,
        state: usize,
        n: u64,
        path_prob: f64,
        weighted: f64,
        counts: &Counts,
    ) -> bool;
}

/// Serial sink: apply events straight to the accumulators. With this sink
/// the traversal is exactly the legacy recursive engine.
struct DirectSink<'a>(&'a mut PathClasses);

impl Sink for DirectSink<'_> {
    fn node(&mut self, depth: u64) {
        self.0.count_node(depth);
    }
    fn store(&mut self, k: &[u32], j: &[u32], prob: f64) {
        self.0.store(k, j, prob);
    }
    fn error(&mut self, contribution: f64) {
        self.0.add_error(contribution);
    }
    fn offer(&mut self, _: usize, _: u64, _: f64, _: f64, _: &Counts) -> bool {
        false
    }
}

/// Frontier sink: record own events and defer subtrees below the cutoff.
struct FrontierSink {
    cutoff: u64,
    master: Vec<MasterItem>,
    tasks: Vec<Task>,
    nodes: u64,
    deepest: u64,
}

impl Sink for FrontierSink {
    fn node(&mut self, depth: u64) {
        self.nodes += 1;
        self.deepest = self.deepest.max(depth);
    }
    fn store(&mut self, k: &[u32], j: &[u32], prob: f64) {
        self.master.push(MasterItem::Event(Event::Store {
            k: k.to_vec().into_boxed_slice(),
            j: j.to_vec().into_boxed_slice(),
            prob,
        }));
    }
    fn error(&mut self, contribution: f64) {
        self.master
            .push(MasterItem::Event(Event::Error(contribution)));
    }
    fn offer(
        &mut self,
        state: usize,
        n: u64,
        path_prob: f64,
        weighted: f64,
        counts: &Counts,
    ) -> bool {
        if n < self.cutoff {
            return false;
        }
        let idx = self.tasks.len();
        self.tasks.push(Task {
            state,
            n,
            path_prob,
            weighted,
            k: counts.k.clone().into_boxed_slice(),
            j: counts.j.clone().into_boxed_slice(),
        });
        self.master.push(MasterItem::Task(idx));
        true
    }
}

/// Worker sink: record this subtree's events in traversal order.
#[derive(Default)]
struct WorkerSink {
    events: Vec<Event>,
    nodes: u64,
    deepest: u64,
}

impl Sink for WorkerSink {
    fn node(&mut self, depth: u64) {
        self.nodes += 1;
        self.deepest = self.deepest.max(depth);
    }
    fn store(&mut self, k: &[u32], j: &[u32], prob: f64) {
        self.events.push(Event::Store {
            k: k.to_vec().into_boxed_slice(),
            j: j.to_vec().into_boxed_slice(),
            prob,
        });
    }
    fn error(&mut self, contribution: f64) {
        self.events.push(Event::Error(contribution));
    }
    fn offer(&mut self, _: usize, _: u64, _: f64, _: f64, _: &Counts) -> bool {
        false
    }
}

/// The visit logic of Algorithm 4.7, byte-for-byte the arithmetic of the
/// serial engine; only the destination of events is abstracted.
fn visit<S: Sink>(
    ctx: &ExploreCtx<'_>,
    counts: &mut Counts,
    sink: &mut S,
    s: usize,
    n: u64,
    path_prob: f64,
    weighted: f64,
) {
    sink.node(n);
    if ctx.psi[s] {
        sink.store(&counts.k, &counts.j, path_prob);
    }
    let next_factor = ctx.lambda_t / (n + 1) as f64;
    for (target, p, impulse) in ctx.uni.transitions(s) {
        // Line 1 of Algorithm 4.7: (¬Φ ∧ ¬Ψ)-states end exploration and
        // can never satisfy the formula — no error contribution either.
        if !ctx.phi[target] && !ctx.psi[target] {
            continue;
        }
        let child_path = path_prob * p;
        let child_weighted = weighted * next_factor * p;
        // Literal rule: prune on P(σ, t) < w. Potential rule: prune only
        // when no extension of σ can reach weight w any more.
        let prune = match ctx.mode_pmf {
            None => child_weighted < ctx.w,
            Some(mode) => {
                let best = if (n + 1) as f64 >= ctx.lambda_t {
                    child_weighted
                } else {
                    child_path * mode
                };
                best < ctx.w
            }
        };
        if prune || n + 1 > ctx.max_depth {
            // Eq. 4.6: discarding σ' and all suffixes loses at most
            // P(σ')·Pr{N ≥ n + 1} probability mass.
            sink.error(child_path * poisson::upper_tail(ctx.lambda_t, n + 1));
            continue;
        }
        let sc = ctx.rc.state_class(target);
        let ic = ctx.rc.impulse_class(impulse);
        counts.k[sc] += 1;
        counts.j[ic] += 1;
        if !sink.offer(target, n + 1, child_path, child_weighted, counts) {
            visit(ctx, counts, sink, target, n + 1, child_path, child_weighted);
        }
        counts.k[sc] -= 1;
        counts.j[ic] -= 1;
    }
}

/// Run Algorithm 4.7 from `start`, serially (`threads ≤ 1`) or with the
/// frontier/worker/replay pipeline. Identical output either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore(
    uni: &UniformizedMrm,
    classes_def: &RewardClasses,
    phi: &[bool],
    psi: &[bool],
    start: usize,
    lambda_t: f64,
    options: &UniformOptions,
) -> PathClasses {
    let ctx = ExploreCtx {
        uni,
        rc: classes_def,
        phi,
        psi,
        lambda_t,
        w: options.truncation,
        max_depth: options.max_depth,
        mode_pmf: options
            .improved_pruning
            .then(|| poisson::pmf(lambda_t, lambda_t.floor() as u64)),
    };

    let mut out = PathClasses::new();
    if !phi[start] && !psi[start] {
        return out;
    }
    let root_weight = (-lambda_t).exp();
    let root_pruned = match ctx.mode_pmf {
        None => root_weight < ctx.w,
        Some(mode) => mode < ctx.w,
    };
    if root_pruned {
        // Even the empty path is below the truncation probability: the
        // whole computation is truncated mass.
        out.add_error(1.0);
        return out;
    }

    let threads = options.parallel.effective_threads();
    let fresh_counts = || {
        let mut c = Counts {
            k: vec![0; classes_def.num_state_classes()],
            j: vec![0; classes_def.num_impulse_classes()],
        };
        c.k[classes_def.state_class(start)] = 1;
        c
    };

    if threads <= 1 {
        let mut counts = fresh_counts();
        let mut sink = DirectSink(&mut out);
        visit(&ctx, &mut counts, &mut sink, start, 0, 1.0, root_weight);
        return out;
    }

    // Phase 1: frontier. Deepen the cutoff until the task pool is large
    // enough to keep every worker busy through the atomic work queue.
    let target_tasks = threads * options.parallel.chunk_size.max(1);
    let mut frontier = FrontierSink {
        cutoff: 1,
        master: Vec::new(),
        tasks: Vec::new(),
        nodes: 0,
        deepest: 0,
    };
    for cutoff in 1..=MAX_CUTOFF {
        frontier = FrontierSink {
            cutoff,
            master: Vec::new(),
            tasks: Vec::new(),
            nodes: 0,
            deepest: 0,
        };
        let mut counts = fresh_counts();
        visit(&ctx, &mut counts, &mut frontier, start, 0, 1.0, root_weight);
        if frontier.tasks.len() >= target_tasks || frontier.tasks.is_empty() {
            break;
        }
    }
    out.add_node_stats(frontier.nodes, frontier.deepest);

    // Phase 2: workers drain the task queue.
    let results = run_workers(&ctx, &frontier.tasks, threads);

    // Phase 3: ordered replay — the exact serial event sequence. Per-task
    // telemetry is emitted here, by the coordinator, so the trace order is
    // deterministic even though the subtrees ran on arbitrary workers.
    for item in frontier.master {
        match item {
            MasterItem::Event(ev) => apply(&mut out, &ev),
            MasterItem::Task(i) => {
                let w = &results[i];
                mrmc_obs::record(|| mrmc_obs::Event::ParallelTask {
                    task: i as u64,
                    nodes: w.nodes,
                    deepest: w.deepest,
                });
                out.add_node_stats(w.nodes, w.deepest);
                for ev in &w.events {
                    apply(&mut out, ev);
                }
            }
        }
    }
    out
}

fn apply(out: &mut PathClasses, ev: &Event) {
    match ev {
        Event::Store { k, j, prob } => out.store(k, j, *prob),
        Event::Error(e) => out.add_error(*e),
    }
}

/// Scoped worker pool: an atomic index is the work queue, an mpsc channel
/// carries each finished subtree's event buffer back by task index.
fn run_workers(ctx: &ExploreCtx<'_>, tasks: &[Task], threads: usize) -> Vec<WorkerSink> {
    let mut slots: Vec<Option<WorkerSink>> = Vec::new();
    slots.resize_with(tasks.len(), || None);
    let next = AtomicUsize::new(0);
    thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, WorkerSink)>();
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(i) else { break };
                let mut counts = Counts {
                    k: task.k.to_vec(),
                    j: task.j.to_vec(),
                };
                let mut sink = WorkerSink::default();
                visit(
                    ctx,
                    &mut counts,
                    &mut sink,
                    task.state,
                    task.n,
                    task.path_prob,
                    task.weighted,
                );
                if tx.send((i, sink)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, sink) in rx {
            slots[i] = Some(sink);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker completed every claimed task"))
        .collect()
}

/// One Eq. 4.5 term request: threshold `r'`, Omega counts `k`, and the
/// weight `ψ_n(Λt)·P(σ)` the conditional probability is multiplied by.
pub(crate) struct TermRequest<'a> {
    /// Effective Omega threshold `r'` (Eq. 4.10); may be `+∞`.
    pub r_prime: f64,
    /// Residence counts per reward class.
    pub k: &'a [u32],
    /// `ψ_n(Λt) · P(σ)`.
    pub weight: f64,
}

/// Evaluator statistics of one Ω batch, for the `OmegaTable` event.
struct OmegaBatchStats {
    cache_entries: u64,
    max_recursion_depth: u64,
}

/// Evaluate `Ω(r, k)` for every `(r, k)` pair, in order.
///
/// With `threads ≤ 1` (or too few pairs to split) a single evaluator runs
/// sequentially; otherwise the list is split into contiguous ranges, one
/// per worker, each with a private [`OmegaEvaluator`] (the memo cache is
/// per-worker). Ω is a deterministic pure function of `(r, k)` —
/// memoization only avoids recomputation — so the value vector is
/// independent of the thread count.
fn evaluate_omega(
    pairs: &[(f64, &[u32])],
    coefficients: &[f64],
    threads: usize,
) -> Result<(Vec<f64>, OmegaBatchStats), NumericsError> {
    if threads <= 1 || pairs.len() < 2 * threads {
        let mut omega = OmegaEvaluator::new(coefficients.to_vec())?;
        let values: Vec<f64> = pairs.iter().map(|&(r, k)| omega.evaluate(r, k)).collect();
        let stats = OmegaBatchStats {
            cache_entries: omega.cache_len() as u64,
            max_recursion_depth: omega.max_recursion_depth(),
        };
        return Ok((values, stats));
    }

    // Validate the coefficient list once up front so workers cannot fail.
    OmegaEvaluator::new(coefficients.to_vec())?;
    let per = pairs.len().div_ceil(threads);
    let mut values = vec![0.0; pairs.len()];
    // Cache statistics merge commutatively (sum / max), so aggregating them
    // in channel-arrival order stays deterministic.
    let mut stats = OmegaBatchStats {
        cache_entries: 0,
        max_recursion_depth: 0,
    };
    thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, Vec<f64>, u64, u64)>();
        for chunk_start in (0..pairs.len()).step_by(per) {
            let tx = tx.clone();
            let coeffs = coefficients.to_vec();
            let chunk = &pairs[chunk_start..(chunk_start + per).min(pairs.len())];
            scope.spawn(move || {
                let mut omega = OmegaEvaluator::new(coeffs).expect("coefficients validated above");
                let out: Vec<f64> = chunk.iter().map(|&(r, k)| omega.evaluate(r, k)).collect();
                let _ = tx.send((
                    chunk_start,
                    out,
                    omega.cache_len() as u64,
                    omega.max_recursion_depth(),
                ));
            });
        }
        drop(tx);
        for (start, chunk_values, cache, depth) in rx {
            values[start..start + chunk_values.len()].copy_from_slice(&chunk_values);
            stats.cache_entries += cache;
            stats.max_recursion_depth = stats.max_recursion_depth.max(depth);
        }
    });
    Ok((values, stats))
}

/// Compute `weight · Ω(r', k)` for every request, in request order.
///
/// When a term cache is installed ([`crate::omega::with_omega_cache`]),
/// known `Ω` values are served from it and only the misses run the
/// recursion — the emitted `OmegaTable` event then reports the miss count
/// as `requests` (the table work actually performed), and a cumulative
/// `omega_cache_hits` counter is emitted. Ω is pure, so cached runs return
/// bit-identical terms to uncached ones.
pub(crate) fn omega_terms(
    requests: &[TermRequest<'_>],
    coefficients: Vec<f64>,
    threads: usize,
) -> Result<Vec<f64>, NumericsError> {
    let _span = mrmc_obs::span("omega");
    if let Some(cache) = crate::omega::installed_cache() {
        return omega_terms_cached(requests, &coefficients, threads, &cache);
    }
    let pairs: Vec<(f64, &[u32])> = requests.iter().map(|rq| (rq.r_prime, rq.k)).collect();
    let (values, stats) = evaluate_omega(&pairs, &coefficients, threads)?;
    mrmc_obs::record(|| mrmc_obs::Event::OmegaTable {
        coefficients: coefficients.len() as u64,
        requests: requests.len() as u64,
        cache_entries: stats.cache_entries,
        max_recursion_depth: stats.max_recursion_depth,
    });
    Ok(requests
        .iter()
        .zip(values)
        .map(|(rq, v)| rq.weight * v)
        .collect())
}

/// The cached variant of [`omega_terms`]: look every request up, evaluate
/// only the misses (with the same serial/parallel split), and store the
/// fresh values back.
fn omega_terms_cached(
    requests: &[TermRequest<'_>],
    coefficients: &[f64],
    threads: usize,
    cache: &OmegaTermCache,
) -> Result<Vec<f64>, NumericsError> {
    // Validate the coefficients even when every request hits the cache, so
    // the cached path rejects exactly what the uncached path rejects.
    OmegaEvaluator::new(coefficients.to_vec())?;
    let key = OmegaTermCache::coefficient_key(coefficients);
    let mut values: Vec<Option<f64>> = requests
        .iter()
        .map(|rq| cache.get(&key, rq.r_prime, rq.k))
        .collect();
    let misses: Vec<usize> = values
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.is_none().then_some(i))
        .collect();
    let pairs: Vec<(f64, &[u32])> = misses
        .iter()
        .map(|&i| (requests[i].r_prime, requests[i].k))
        .collect();
    let (computed, stats) = evaluate_omega(&pairs, coefficients, threads)?;
    for (&i, &v) in misses.iter().zip(&computed) {
        cache.insert(&key, requests[i].r_prime, requests[i].k, v);
        values[i] = Some(v);
    }
    mrmc_obs::record(|| mrmc_obs::Event::OmegaTable {
        coefficients: coefficients.len() as u64,
        requests: misses.len() as u64,
        cache_entries: stats.cache_entries,
        max_recursion_depth: stats.max_recursion_depth,
    });
    mrmc_obs::record(|| mrmc_obs::Event::Counter {
        name: mrmc_obs::counters::OMEGA_CACHE_HITS,
        value: cache.hits(),
    });
    Ok(requests
        .iter()
        .zip(values)
        .map(|(rq, v)| rq.weight * v.expect("every request resolved"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniformization::{
        generate_path_classes, until_probability, ParallelOptions, UniformOptions,
    };
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_mrm::{transform::make_absorbing, ImpulseRewards, Mrm, StateRewards};

    fn wavelan() -> Mrm {
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 0.1);
        b.transition(1, 0, 0.05).transition(1, 2, 5.0);
        b.transition(2, 1, 12.0)
            .transition(2, 3, 1.5)
            .transition(2, 4, 0.75);
        b.transition(3, 2, 10.0);
        b.transition(4, 2, 15.0);
        b.label(2, "idle");
        b.label(3, "busy");
        b.label(4, "busy");
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![0.0, 80.0, 1319.0, 1675.0, 1425.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(1, 2, 0.32975).unwrap();
        iota.set(2, 3, 0.42545).unwrap();
        iota.set(2, 4, 0.36195).unwrap();
        Mrm::new(ctmc, rho, iota).unwrap()
    }

    fn assert_classes_identical(a: &PathClasses, b: &PathClasses) {
        assert_eq!(a.num_classes(), b.num_classes());
        assert_eq!(a.stored_paths(), b.stored_paths());
        assert_eq!(a.truncated_paths(), b.truncated_paths());
        assert_eq!(a.explored_nodes(), b.explored_nodes());
        assert_eq!(a.max_depth(), b.max_depth());
        assert_eq!(a.error_bound().to_bits(), b.error_bound().to_bits());
        for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits(), "class {ka:?}");
        }
    }

    #[test]
    fn parallel_exploration_is_bitwise_identical_to_serial() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let absorb: Vec<bool> = phi.iter().zip(&psi).map(|(&p, &q)| !p || q).collect();
        let absorbed = make_absorbing(&m, &absorb).unwrap();
        let uni = UniformizedMrm::new(&absorbed, None).unwrap();
        let rc = RewardClasses::new(&uni);
        let lambda_t = uni.lambda() * 0.8;

        let serial_opts = UniformOptions::new().with_truncation(1e-10);
        let serial = generate_path_classes(&uni, &rc, &phi, &psi, 2, lambda_t, &serial_opts);
        assert!(serial.num_classes() > 0);

        for threads in [2, 4, 8] {
            let par_opts = serial_opts.with_threads(threads);
            let parallel = generate_path_classes(&uni, &rc, &phi, &psi, 2, lambda_t, &par_opts);
            assert_classes_identical(&serial, &parallel);
        }
    }

    #[test]
    fn chunk_size_does_not_change_the_result() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let absorb: Vec<bool> = phi.iter().zip(&psi).map(|(&p, &q)| !p || q).collect();
        let absorbed = make_absorbing(&m, &absorb).unwrap();
        let uni = UniformizedMrm::new(&absorbed, None).unwrap();
        let rc = RewardClasses::new(&uni);
        let lambda_t = uni.lambda() * 0.6;

        let base = UniformOptions::new().with_truncation(1e-9);
        let serial = generate_path_classes(&uni, &rc, &phi, &psi, 2, lambda_t, &base);
        for chunk_size in [1, 2, 32] {
            let opts = base.with_parallel(ParallelOptions {
                threads: 3,
                chunk_size,
            });
            let got = generate_path_classes(&uni, &rc, &phi, &psi, 2, lambda_t, &opts);
            assert_classes_identical(&serial, &got);
        }
    }

    #[test]
    fn parallel_until_probability_is_bitwise_identical() {
        let m = wavelan();
        let phi = m.labeling().states_with("idle");
        let psi = m.labeling().states_with("busy");
        let serial = until_probability(
            &m,
            &phi,
            &psi,
            1.0,
            2000.0,
            2,
            UniformOptions::new().with_truncation(1e-11),
        )
        .unwrap();
        for threads in [2, 4, 8] {
            let par = until_probability(
                &m,
                &phi,
                &psi,
                1.0,
                2000.0,
                2,
                UniformOptions::new()
                    .with_truncation(1e-11)
                    .with_threads(threads),
            )
            .unwrap();
            assert_eq!(
                serial.probability.to_bits(),
                par.probability.to_bits(),
                "threads = {threads}"
            );
            assert_eq!(serial.error_bound.to_bits(), par.error_bound.to_bits());
            assert_eq!(serial.num_classes, par.num_classes);
            assert_eq!(serial.explored_nodes, par.explored_nodes);
            assert_eq!(serial.stored_paths, par.stored_paths);
        }
    }

    #[test]
    fn degenerate_chain_still_works_in_parallel() {
        // A pure chain has branching factor 1: the frontier can never
        // gather many tasks, and the cutoff cap must end the deepening.
        let mut b = CtmcBuilder::new(4);
        b.transition(0, 1, 1.0)
            .transition(1, 2, 1.0)
            .transition(2, 3, 1.0);
        b.label(3, "goal");
        let m = Mrm::without_rewards(b.build().unwrap());
        let phi = vec![true; 4];
        let psi = m.labeling().states_with("goal");
        let serial =
            until_probability(&m, &phi, &psi, 1.0, 10.0, 0, UniformOptions::new()).unwrap();
        let par = until_probability(
            &m,
            &phi,
            &psi,
            1.0,
            10.0,
            0,
            UniformOptions::new().with_threads(4),
        )
        .unwrap();
        assert_eq!(serial.probability.to_bits(), par.probability.to_bits());
    }

    #[test]
    fn omega_terms_match_between_serial_and_parallel() {
        let coeffs = vec![4.0, 1.5, 0.0];
        let counts: Vec<Vec<u32>> = (0..40)
            .map(|i| vec![1 + (i % 3) as u32, (i % 4) as u32, 1 + (i % 2) as u32])
            .collect();
        let requests: Vec<TermRequest<'_>> = counts
            .iter()
            .enumerate()
            .map(|(i, k)| TermRequest {
                r_prime: 0.3 + 0.1 * i as f64,
                k,
                weight: 1.0 / (1 + i) as f64,
            })
            .collect();
        let serial = omega_terms(&requests, coeffs.clone(), 1).unwrap();
        for threads in [2, 4, 8] {
            let par = omega_terms(&requests, coeffs.clone(), threads).unwrap();
            assert_eq!(serial.len(), par.len());
            for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "term {i}, threads {threads}");
            }
        }
    }

    #[test]
    fn cached_omega_terms_are_bitwise_identical_and_reuse_tables() {
        use crate::omega::with_omega_cache;
        use std::sync::Arc;

        let coeffs = vec![4.0, 1.5, 0.0];
        let counts: Vec<Vec<u32>> = (0..40)
            .map(|i| vec![1 + (i % 3) as u32, (i % 4) as u32, 1 + (i % 2) as u32])
            .collect();
        let requests: Vec<TermRequest<'_>> = counts
            .iter()
            .enumerate()
            .map(|(i, k)| TermRequest {
                r_prime: 0.3 + 0.1 * i as f64,
                k,
                weight: 1.0 / (1 + i) as f64,
            })
            .collect();
        let uncached = omega_terms(&requests, coeffs.clone(), 1).unwrap();

        let cache = Arc::new(OmegaTermCache::new());
        let (cold, warm) = with_omega_cache(cache.clone(), || {
            let cold = omega_terms(&requests, coeffs.clone(), 1).unwrap();
            let warm = omega_terms(&requests, coeffs.clone(), 1).unwrap();
            (cold, warm)
        });
        for (i, (u, c)) in uncached.iter().zip(&cold).enumerate() {
            assert_eq!(u.to_bits(), c.to_bits(), "cold term {i}");
        }
        for (i, (u, w)) in uncached.iter().zip(&warm).enumerate() {
            assert_eq!(u.to_bits(), w.to_bits(), "warm term {i}");
        }
        // The second pass was served entirely from the cache.
        assert_eq!(cache.hits(), requests.len() as u64);
        assert_eq!(cache.len(), requests.len());

        // The parallel path consults the cache identically.
        let par = with_omega_cache(cache.clone(), || {
            omega_terms(&requests, coeffs.clone(), 4).unwrap()
        });
        for (i, (u, p)) in uncached.iter().zip(&par).enumerate() {
            assert_eq!(u.to_bits(), p.to_bits(), "parallel term {i}");
        }
        assert_eq!(cache.hits(), 2 * requests.len() as u64);
    }

    #[test]
    fn cached_runs_report_misses_not_total_requests() {
        use crate::omega::with_omega_cache;
        use mrmc_obs::{with_recorder, MetricsRecorder};
        use std::sync::Arc;

        let coeffs = vec![3.0, 1.0, 0.0];
        let counts: Vec<Vec<u32>> = (0..12).map(|i| vec![1, 1 + (i % 3) as u32, 1]).collect();
        let requests: Vec<TermRequest<'_>> = counts
            .iter()
            .enumerate()
            .map(|(i, k)| TermRequest {
                r_prime: 0.2 + 0.15 * i as f64,
                k,
                weight: 1.0,
            })
            .collect();

        let cache = Arc::new(crate::omega::OmegaTermCache::new());
        let first = Arc::new(MetricsRecorder::new());
        let second = Arc::new(MetricsRecorder::new());
        with_omega_cache(cache.clone(), || {
            with_recorder(first.clone(), || {
                omega_terms(&requests, coeffs.clone(), 1).unwrap();
            });
            with_recorder(second.clone(), || {
                omega_terms(&requests, coeffs.clone(), 1).unwrap();
            });
        });
        let cold = first.snapshot();
        let warm = second.snapshot();
        assert_eq!(cold.omega_requests, requests.len() as u64);
        assert_eq!(warm.omega_requests, 0, "warm run must be all cache hits");
        assert_eq!(
            warm.counters[mrmc_obs::counters::OMEGA_CACHE_HITS],
            requests.len() as u64
        );
    }

    #[test]
    fn parallel_options_defaults_and_auto_detect() {
        let p = ParallelOptions::new();
        assert_eq!(p.threads, 1);
        assert!(p.chunk_size >= 1);
        assert_eq!(p.effective_threads(), 1);
        // 0 = auto-detect; always at least one thread.
        let auto = ParallelOptions {
            threads: 0,
            chunk_size: 8,
        };
        assert!(auto.effective_threads() >= 1);
    }
}
