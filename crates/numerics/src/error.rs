//! Error type shared by the numerical engines.

use std::error::Error;
use std::fmt;

use mrmc_ctmc::ModelError;
use mrmc_mrm::MrmError;

/// An error raised by a numerical engine.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// A problem with the model being analysed.
    Model(MrmError),
    /// A parameter outside its admissible range.
    InvalidParameter {
        /// Name of the parameter (e.g. `"truncation"` or `"step"`).
        name: &'static str,
        /// The offending value.
        value: f64,
        /// What would have been admissible.
        requirement: &'static str,
    },
    /// The engines only support `I = [0, t]`, `J = [0, r]` bounds
    /// (Section 4.6; also listed as future work in Chapter 6).
    UnsupportedBounds {
        /// Which bound was out of scope.
        what: &'static str,
    },
    /// Discretization needs integer state rewards after scaling
    /// (Section 4.4.1).
    NonIntegerRewards {
        /// The reward that could not be scaled to an integer.
        reward: f64,
    },
    /// A characteristic vector has the wrong length.
    SizeMismatch {
        /// Expected length (number of states).
        expected: usize,
        /// Found length.
        found: usize,
    },
    /// The adaptive driver exhausted its work cap before the reported
    /// error budget reached the requested tolerance.
    ToleranceNotMet {
        /// The tolerance the caller asked for.
        requested: f64,
        /// The tightest total budget the driver achieved.
        achieved: f64,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::Model(e) => write!(f, "{e}"),
            NumericsError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "invalid {name} = {value}: {requirement}"),
            NumericsError::UnsupportedBounds { what } => write!(
                f,
                "unsupported {what}: the numerical engines handle [0, t] time and [0, r] reward bounds only"
            ),
            NumericsError::NonIntegerRewards { reward } => write!(
                f,
                "state reward {reward} cannot be scaled to an integer for discretization"
            ),
            NumericsError::SizeMismatch { expected, found } => {
                write!(f, "expected a vector of length {expected}, found {found}")
            }
            NumericsError::ToleranceNotMet {
                requested,
                achieved,
            } => write!(
                f,
                "tolerance not met: requested {requested:e}, achieved error bound {achieved:e}"
            ),
        }
    }
}

impl Error for NumericsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NumericsError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MrmError> for NumericsError {
    fn from(e: MrmError) -> Self {
        NumericsError::Model(e)
    }
}

impl From<ModelError> for NumericsError {
    fn from(e: ModelError) -> Self {
        NumericsError::Model(MrmError::Model(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(NumericsError::InvalidParameter {
            name: "truncation",
            value: 0.0,
            requirement: "must be in (0, 1)"
        }
        .to_string()
        .contains("truncation"));
        assert!(NumericsError::UnsupportedBounds {
            what: "time lower bound"
        }
        .to_string()
        .contains("[0, t]"));
        assert!(NumericsError::NonIntegerRewards { reward: 0.3 }
            .to_string()
            .contains("0.3"));
        assert!(NumericsError::SizeMismatch {
            expected: 4,
            found: 2
        }
        .to_string()
        .contains('4'));
        let e = NumericsError::ToleranceNotMet {
            requested: 1e-9,
            achieved: 3.2e-7,
        };
        let s = e.to_string();
        assert!(s.contains("1e-9") && s.contains("3.2e-7"), "{s}");
    }

    #[test]
    fn conversions_set_source() {
        let e: NumericsError = MrmError::RewardSizeMismatch {
            states: 1,
            rewarded: 2,
        }
        .into();
        assert!(std::error::Error::source(&e).is_some());
        let e: NumericsError = ModelError::EmptyModel.into();
        assert!(e.to_string().contains("no states"));
    }
}
