//! Cost-prediction lint passes (`C` codes).
//!
//! Reward-bounded until formulas (both `sup I` and `sup J` finite — the
//! thesis' P2 property class) are the only ones that start a genuinely
//! expensive engine, and both failure modes are predictable from the model
//! and the knobs alone via [`mrmc_numerics::cost`]:
//!
//! * the path-exploration engine visits a tree whose depth is the
//!   uniformization truncation depth and whose branching factor is the
//!   mean out-degree — `C101` warns when the product explodes;
//! * the discretization engine allocates a `states × ⌈r/d⌉` grid — `C102`
//!   warns when that exceeds a memory budget, and `C001` when the step
//!   violates the `d ≤ 1/max-exit-rate` stability requirement;
//! * `C103` is an informational note with the predicted numbers, so a
//!   user can sanity-check an expensive run before launching it.
//!
//! Everything here is Warning/Note grade (promoted by `--deny warnings`):
//! predictions are upper-bound flavored, and the stability check `C001`
//! depends on which states the until's make-absorbing step removes, which
//! is not known statically.

use mrmc_csrl::{PathFormula, StateFormula};
use mrmc_numerics::cost::{estimate_discretization, estimate_uniformization, max_stable_step};

use crate::diagnostic::{Diagnostic, Report, Severity};
use crate::{EngineHint, LintContext};

// The thresholds live in `mrmc_numerics::cost` (the single source of truth
// shared with the engines); re-exported here for lint consumers.
pub use mrmc_numerics::cost::{GRID_MEMORY_BYTES, PATH_EXPLOSION_NODES};

/// The worst-case (largest `t`, largest `r`) P2-class until bounds in the
/// formula, if any.
fn p2_bounds(formula: &StateFormula) -> Option<(f64, f64)> {
    fn walk(f: &StateFormula, acc: &mut Option<(f64, f64)>) {
        match f {
            StateFormula::True | StateFormula::False | StateFormula::Ap(_) => {}
            StateFormula::Not(inner) => walk(inner, acc),
            StateFormula::Or(a, b) | StateFormula::And(a, b) | StateFormula::Implies(a, b) => {
                walk(a, acc);
                walk(b, acc);
            }
            StateFormula::Steady { inner, .. } => walk(inner, acc),
            StateFormula::Prob { path, .. } => match path.as_ref() {
                PathFormula::Next { inner, .. } => walk(inner, acc),
                PathFormula::Until {
                    time,
                    reward,
                    lhs,
                    rhs,
                } => {
                    if time.lo() == 0.0
                        && reward.lo() == 0.0
                        && !time.is_upper_unbounded()
                        && !reward.is_upper_unbounded()
                    {
                        let (t, r) = (time.hi(), reward.hi());
                        *acc = Some(match *acc {
                            Some((at, ar)) => (at.max(t), ar.max(r)),
                            None => (t, r),
                        });
                    }
                    walk(lhs, acc);
                    walk(rhs, acc);
                }
            },
        }
    }
    let mut acc = None;
    walk(formula, &mut acc);
    acc
}

/// `C001`/`C101`/`C102`/`C103`: predict the configured engine's cost for
/// the formula's most expensive reward-bounded until.
pub fn prediction(ctx: &LintContext<'_>, report: &mut Report) {
    let Some(formula) = ctx.formula else { return };
    let Some((t, r)) = p2_bounds(formula) else {
        return; // no P2-class until: no expensive engine runs.
    };
    match ctx.engine {
        EngineHint::Uniformization { truncation } => {
            let c = estimate_uniformization(ctx.mrm, t, truncation);
            if c.estimated_paths > PATH_EXPLOSION_NODES {
                report.push(
                    Diagnostic::new(
                        "C101",
                        Severity::Warning,
                        format!(
                            "path explosion likely: ~{:.1e} path-tree nodes \
                             (branching {:.2}, truncation depth {} at \u{039b}t = {:.1})",
                            c.estimated_paths, c.mean_branching, c.truncation_depth, c.lambda_t
                        ),
                    )
                    .with_suggestion(
                        "raise the truncation probability (u=1e-6), shorten the time bound, \
                         or switch to the discretization (d=...) or simulation (s=...) engine",
                    ),
                );
            } else {
                report.push(Diagnostic::new(
                    "C103",
                    Severity::Note,
                    format!(
                        "uniformization forecast: \u{039b}t = {:.1}, truncation depth {}, \
                         ~{:.1e} path-tree nodes",
                        c.lambda_t, c.truncation_depth, c.estimated_paths
                    ),
                ));
            }
        }
        EngineHint::Discretization { step } => {
            let c = estimate_discretization(ctx.mrm, t, r, step);
            if !c.stable {
                report.push(
                    Diagnostic::new(
                        "C001",
                        Severity::Warning,
                        format!(
                            "discretization step {step} violates the stability requirement \
                             d \u{2264} 1/max-exit-rate; the engine will reject it unless the \
                             fastest states are made absorbing"
                        ),
                    )
                    .with_suggestion(format!("use d <= {:.3e}", max_stable_step(ctx.mrm))),
                );
            }
            if c.estimated_bytes > GRID_MEMORY_BYTES {
                report.push(
                    Diagnostic::new(
                        "C102",
                        Severity::Warning,
                        format!(
                            "discretization grid needs ~{:.1e} bytes ({:.0} reward cells \
                             \u{00d7} {} states)",
                            c.estimated_bytes,
                            c.reward_cells,
                            ctx.mrm.num_states()
                        ),
                    )
                    .with_suggestion(
                        "increase the step d, lower the reward bound, or switch engines",
                    ),
                );
            } else if c.stable {
                report.push(Diagnostic::new(
                    "C103",
                    Severity::Note,
                    format!(
                        "discretization forecast: {:.0} time steps \u{00d7} {:.0} reward \
                         cells, ~{:.1e} bytes",
                        c.time_steps, c.reward_cells, c.estimated_bytes
                    ),
                ));
            }
        }
        EngineHint::Simulation { samples } => {
            report.push(Diagnostic::new(
                "C103",
                Severity::Note,
                format!(
                    "simulation forecast: {samples} trajectories per state \u{00d7} {} states \
                     over horizon {t}",
                    ctx.mrm.num_states()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_mrm::Mrm;

    fn chain() -> Mrm {
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1.0)
            .transition(1, 0, 1.0)
            .transition(1, 2, 2.0)
            .transition(2, 1, 3.0);
        b.label(0, "a").label(2, "goal");
        Mrm::without_rewards(b.build().unwrap())
    }

    fn lint(mrm: &Mrm, text: &str, engine: EngineHint) -> Report {
        let f = mrmc_csrl::parse(text).unwrap();
        Analyzer::new().check_formula(mrm, &f, engine)
    }

    #[test]
    fn no_p2_until_no_cost_codes() {
        let m = chain();
        let r = lint(&m, "P(>= 0.5) [a U[0,10] goal]", EngineHint::default());
        assert!(!r.codes().iter().any(|c| c.starts_with('C')), "{r}");
    }

    #[test]
    fn small_run_gets_a_forecast_note() {
        let m = chain();
        let r = lint(&m, "P(>= 0.5) [a U[0,2][0,10] goal]", EngineHint::default());
        let d = r.diagnostics().iter().find(|d| d.code == "C103").unwrap();
        assert_eq!(d.severity, Severity::Note);
        assert!(d.message.contains("truncation depth"));
        assert!(!r.codes().contains(&"C101"));
    }

    #[test]
    fn long_horizon_warns_of_path_explosion() {
        let m = chain();
        let r = lint(
            &m,
            "P(>= 0.5) [a U[0,1000][0,1e9] goal]",
            EngineHint::Uniformization { truncation: 1e-8 },
        );
        let d = r.diagnostics().iter().find(|d| d.code == "C101").unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.suggestion.is_some());
    }

    #[test]
    fn unstable_step_warns_c001() {
        let m = chain(); // max exit 4.0 ⇒ needs d ≤ 0.25
        let r = lint(
            &m,
            "P(>= 0.5) [a U[0,2][0,10] goal]",
            EngineHint::Discretization { step: 0.5 },
        );
        let d = r.diagnostics().iter().find(|d| d.code == "C001").unwrap();
        assert!(d.suggestion.as_deref().unwrap().contains("d <="));
        // A stable step instead produces the forecast note.
        let r = lint(
            &m,
            "P(>= 0.5) [a U[0,2][0,10] goal]",
            EngineHint::Discretization { step: 0.01 },
        );
        assert!(r.codes().contains(&"C103"));
        assert!(!r.codes().contains(&"C001"));
    }

    #[test]
    fn huge_grid_warns_c102() {
        let m = chain();
        let r = lint(
            &m,
            "P(>= 0.5) [a U[0,2][0,1e9] goal]",
            EngineHint::Discretization { step: 0.0001 },
        );
        assert!(r.codes().contains(&"C102"), "{r}");
    }

    #[test]
    fn simulation_forecast_notes_sample_count() {
        let m = chain();
        let r = lint(
            &m,
            "P(>= 0.5) [a U[0,2][0,10] goal]",
            EngineHint::Simulation { samples: 5000 },
        );
        let d = r.diagnostics().iter().find(|d| d.code == "C103").unwrap();
        assert!(d.message.contains("5000"));
    }
}
