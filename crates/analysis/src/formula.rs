//! Formula-scope lint passes (`F` codes).
//!
//! Errors (`F0xx`) are conditions under which the Sat recursion is certain
//! to fail at engine time; catching them here lets the checker abort with
//! a dedicated exit code before any numerics start. Warnings and notes
//! (`F1xx`) flag formulas that are checkable but vacuous or needlessly
//! expensive.
//!
//! Empty or inverted `I`/`J` intervals cannot be represented at all —
//! [`mrmc_csrl::Interval`] rejects them at construction and the parser at
//! parse time — so there is no lint for them; they surface as `F003`
//! (syntax) in `mrmc lint`'s formula-parsing front end.

use mrmc_csrl::{CompareOp, Interval, PathFormula, StateFormula};

use crate::diagnostic::{Diagnostic, Report, Severity};
use crate::{EngineHint, LintContext};

/// Walk every state subformula, outermost first.
fn walk_state(f: &StateFormula, visit: &mut impl FnMut(&StateFormula)) {
    visit(f);
    match f {
        StateFormula::True | StateFormula::False | StateFormula::Ap(_) => {}
        StateFormula::Not(inner) => walk_state(inner, visit),
        StateFormula::Or(a, b) | StateFormula::And(a, b) | StateFormula::Implies(a, b) => {
            walk_state(a, visit);
            walk_state(b, visit);
        }
        StateFormula::Steady { inner, .. } => walk_state(inner, visit),
        StateFormula::Prob { path, .. } => match path.as_ref() {
            PathFormula::Next { inner, .. } => walk_state(inner, visit),
            PathFormula::Until { lhs, rhs, .. } => {
                walk_state(lhs, visit);
                walk_state(rhs, visit);
            }
        },
    }
}

/// `F001`: an atomic proposition that labels no state.
///
/// Matching the checker's runtime behavior, the condition is "labels no
/// state", not "undeclared": a typo would otherwise silently evaluate to
/// `ff` everywhere.
pub fn propositions(ctx: &LintContext<'_>, report: &mut Report) {
    let Some(formula) = ctx.formula else { return };
    let labeling = ctx.mrm.labeling();
    let used = labeling.all_propositions();
    for ap in formula.propositions() {
        if !used.contains(&ap) {
            let declared = labeling.declared().contains(&ap);
            let mut d = Diagnostic::new(
                "F001",
                Severity::Error,
                if declared {
                    format!("atomic proposition `{ap}` is declared but labels no state")
                } else {
                    format!("atomic proposition `{ap}` does not label any state")
                },
            );
            d = match closest(ap, &used) {
                Some(candidate) => d.with_suggestion(format!("did you mean `{candidate}`?")),
                None => d.with_suggestion(format!(
                    "propositions labeling states: {}",
                    if used.is_empty() {
                        "(none)".to_string()
                    } else {
                        used.join(", ")
                    }
                )),
            };
            report.push(d);
        }
    }
}

/// The nearest proposition by edit distance, if convincingly close.
fn closest<'a>(ap: &str, candidates: &[&'a str]) -> Option<&'a str> {
    candidates
        .iter()
        .map(|&c| (edit_distance(ap, c), c))
        .filter(|&(d, c)| d <= 2 && d < c.len().max(ap.len()))
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c)
}

/// Plain Levenshtein distance (small strings only).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// `F002`: until bounds no configured engine supports.
///
/// This mirrors the dispatch in `mrmc-core`'s until module exactly — the
/// lint must never reject a formula the checker would accept:
///
/// * lower bounds (`inf I > 0` or `inf J > 0`) are fine when `J` is
///   trivial (two-phase decomposition), or under the simulation engine
///   when `sup I < ∞`;
/// * `sup I = ∞` with `sup J < ∞` has no engine (Chapter 6);
/// * everything else is supported. `X^I_J` has a closed form for general
///   intervals and is never flagged.
pub fn bound_support(ctx: &LintContext<'_>, report: &mut Report) {
    let Some(formula) = ctx.formula else { return };
    let simulation = matches!(ctx.engine, EngineHint::Simulation { .. });
    walk_state(formula, &mut |f| {
        let StateFormula::Prob { path, .. } = f else {
            return;
        };
        let PathFormula::Until { time, reward, .. } = path.as_ref() else {
            return;
        };
        if time.lo() != 0.0 || reward.lo() != 0.0 {
            if reward.is_trivial() {
                return; // two-phase decomposition handles it.
            }
            if simulation && !time.is_upper_unbounded() {
                return; // trajectory semantics evaluate it exactly.
            }
            let (what, suggestion) = if reward.lo() != 0.0 {
                (
                    format!("reward lower bound {} in U{}{}", reward.lo(), time, reward),
                    "use the simulation engine (s=<samples>) with a finite time bound, \
                     or drop the reward lower bound",
                )
            } else {
                (
                    format!(
                        "time lower bound {} combined with reward bound {} in U{}{}",
                        time.lo(),
                        reward,
                        time,
                        reward
                    ),
                    "use the simulation engine (s=<samples>), or drop one of the bounds",
                )
            };
            report.push(
                Diagnostic::new(
                    "F002",
                    Severity::Error,
                    format!("no engine supports {what}"),
                )
                .with_suggestion(suggestion),
            );
            return;
        }
        if time.is_upper_unbounded() && !reward.is_upper_unbounded() {
            report.push(
                Diagnostic::new(
                    "F002",
                    Severity::Error,
                    format!(
                        "no engine supports unbounded time with bounded reward in U{time}{reward}"
                    ),
                )
                .with_suggestion("bound the time interval as well (Chapter 6 limitation)"),
            );
        }
    });
}

/// `F101`/`F102`: unsatisfiable and trivial probability thresholds.
///
/// Probabilities live in `[0, 1]`, so `P(> 1)`, `P(>= p)` with `p > 1`,
/// `P(< 0)` and `P(<= p)` with `p < 0` hold nowhere (`F101`), while
/// `P(>= 0)`, `P(<= 1)` and friends hold everywhere regardless of the
/// model (`F102`) — either way, running an engine is wasted work.
pub fn thresholds(ctx: &LintContext<'_>, report: &mut Report) {
    let Some(formula) = ctx.formula else { return };
    walk_state(formula, &mut |f| {
        let (op, bound, kind) = match f {
            StateFormula::Steady { op, bound, .. } => (*op, *bound, "S"),
            StateFormula::Prob { op, bound, .. } => (*op, *bound, "P"),
            _ => return,
        };
        let unsat = match op {
            CompareOp::Gt => bound >= 1.0,
            CompareOp::Ge => bound > 1.0,
            CompareOp::Lt => bound <= 0.0,
            CompareOp::Le => bound < 0.0,
        };
        let trivial = match op {
            CompareOp::Ge => bound <= 0.0,
            CompareOp::Gt => bound < 0.0,
            CompareOp::Le => bound >= 1.0,
            CompareOp::Lt => bound > 1.0,
        };
        if unsat {
            report.push(
                Diagnostic::new(
                    "F101",
                    Severity::Warning,
                    format!(
                        "threshold {kind}({} {bound}) is unsatisfiable: probabilities never \
                         exceed 1 or fall below 0",
                        op.symbol()
                    ),
                )
                .with_suggestion("the operator is constantly false; fix the bound"),
            );
        } else if trivial {
            report.push(
                Diagnostic::new(
                    "F102",
                    Severity::Warning,
                    format!(
                        "threshold {kind}({} {bound}) holds trivially in every state",
                        op.symbol()
                    ),
                )
                .with_suggestion("the operator is constantly true; fix the bound"),
            );
        }
    });
}

/// `F103`/`F104`/`F106`: vacuous or degenerate bounds.
///
/// * `F103` (warning): `J = [0, 0]` while the model earns reward — only
///   paths staying in zero-reward states with zero-impulse jumps qualify.
/// * `F104` (note): a non-trivial reward bound on a reward-free model —
///   accumulated reward is constantly zero, so the bound is either always
///   met (`0 ∈ J`) or never met.
/// * `F106` (note): a degenerate point time interval `I = [t, t]` with
///   `t > 0` — supported, but usually a typo for `[0, t]`.
pub fn vacuity(ctx: &LintContext<'_>, report: &mut Report) {
    let Some(formula) = ctx.formula else { return };
    let reward_free = ctx.mrm.is_reward_free();
    walk_state(formula, &mut |f| {
        let StateFormula::Prob { path, .. } = f else {
            return;
        };
        let (time, reward, op_name): (&Interval, &Interval, &str) = match path.as_ref() {
            PathFormula::Next { time, reward, .. } => (time, reward, "X"),
            PathFormula::Until { time, reward, .. } => (time, reward, "U"),
        };
        if reward.lo() == 0.0 && reward.hi() == 0.0 && !reward_free {
            report.push(
                Diagnostic::new(
                    "F103",
                    Severity::Warning,
                    format!(
                        "reward bound [0,0] on {op_name} in a model with rewards: only \
                         zero-reward prefixes can satisfy it"
                    ),
                )
                .with_suggestion("widen the reward interval or drop it"),
            );
        }
        if reward_free && !reward.is_trivial() {
            report.push(
                Diagnostic::new(
                    "F104",
                    Severity::Note,
                    format!(
                        "reward bound {reward} on {op_name} in a reward-free model: \
                         accumulated reward is constantly zero, the bound is {}",
                        if reward.contains(0.0) {
                            "always met"
                        } else {
                            "never met"
                        }
                    ),
                )
                .with_suggestion("drop the reward bound (it selects the cheaper P1-class engine)"),
            );
        }
        if time.lo() == time.hi() && time.lo() > 0.0 {
            report.push(Diagnostic::new(
                "F106",
                Severity::Note,
                format!("point time interval [{0},{0}] on {op_name}: measures the state exactly at time {0}", time.lo()),
            ));
        }
    });
}

/// `F105`: `S`/`P` operators nested inside another `S`/`P` operator.
///
/// When the inner operator's verdict is undecidable at the achieved
/// accuracy, the checker brackets it by monotone two-run widening — the
/// outer engine runs **twice**. Worth knowing before launching a large
/// model.
pub fn nesting(ctx: &LintContext<'_>, report: &mut Report) {
    let Some(formula) = ctx.formula else { return };

    fn count_nested(f: &StateFormula, inside_operator: bool, nested: &mut usize) {
        match f {
            StateFormula::True | StateFormula::False | StateFormula::Ap(_) => {}
            StateFormula::Not(inner) => count_nested(inner, inside_operator, nested),
            StateFormula::Or(a, b) | StateFormula::And(a, b) | StateFormula::Implies(a, b) => {
                count_nested(a, inside_operator, nested);
                count_nested(b, inside_operator, nested);
            }
            StateFormula::Steady { inner, .. } => {
                if inside_operator {
                    *nested += 1;
                }
                count_nested(inner, true, nested);
            }
            StateFormula::Prob { path, .. } => {
                if inside_operator {
                    *nested += 1;
                }
                match path.as_ref() {
                    PathFormula::Next { inner, .. } => count_nested(inner, true, nested),
                    PathFormula::Until { lhs, rhs, .. } => {
                        count_nested(lhs, true, nested);
                        count_nested(rhs, true, nested);
                    }
                }
            }
        }
    }

    let mut nested = 0;
    count_nested(formula, false, &mut nested);
    if nested > 0 {
        report.push(
            Diagnostic::new(
                "F105",
                Severity::Note,
                format!(
                    "{nested} probability/steady-state operator{} nested inside another: \
                     undecidable inner verdicts trigger two-run widening (the outer \
                     engine runs twice)",
                    if nested == 1 { " is" } else { "s are" }
                ),
            )
            .with_suggestion("tighten --tolerance if inner verdicts come back unknown"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_mrm::{ImpulseRewards, Mrm, StateRewards};

    fn model() -> Mrm {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(1, 0, 1.0);
        b.label(0, "up").label(1, "down");
        let ctmc = b.build().unwrap();
        Mrm::new(
            ctmc,
            StateRewards::new(vec![1.0, 0.0]).unwrap(),
            ImpulseRewards::new(),
        )
        .unwrap()
    }

    fn reward_free_model() -> Mrm {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(1, 0, 1.0);
        b.label(0, "up").label(1, "down");
        Mrm::without_rewards(b.build().unwrap())
    }

    fn lint(mrm: &Mrm, text: &str) -> Report {
        let f = mrmc_csrl::parse(text).unwrap();
        Analyzer::new().check_formula(mrm, &f, EngineHint::default())
    }

    fn lint_sim(mrm: &Mrm, text: &str) -> Report {
        let f = mrmc_csrl::parse(text).unwrap();
        Analyzer::new().check_formula(mrm, &f, EngineHint::Simulation { samples: 1000 })
    }

    #[test]
    fn unknown_ap_is_an_error_with_typo_help() {
        let m = model();
        let r = lint(&m, "P(>= 0.5) [up U dwon]");
        let d = r.diagnostics().iter().find(|d| d.code == "F001").unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(d.suggestion.as_deref().unwrap().contains("down"));
    }

    #[test]
    fn declared_but_unused_ap_is_still_an_error() {
        let m = {
            let mut b = CtmcBuilder::new(1);
            b.transition(0, 0, 1.0);
            b.label(0, "up");
            let mut ctmc = b.build().unwrap();
            ctmc.labeling_mut().declare("ghost");
            Mrm::without_rewards(ctmc)
        };
        let r = lint(&m, "ghost");
        let d = r.diagnostics().iter().find(|d| d.code == "F001").unwrap();
        assert!(d.message.contains("declared but labels no state"));
    }

    #[test]
    fn supported_bounds_pass_cleanly() {
        let m = model();
        for f in [
            "P(>= 0.5) [up U down]",
            "P(>= 0.5) [up U[0,2] down]",
            "P(>= 0.5) [up U[0,2][0,10] down]",
            "P(>= 0.5) [up U[1,2] down]",   // two-phase decomposition
            "P(>= 0.5) [X[1,2][3,4] down]", // Next: general intervals OK
            "S(> 0.1) (up)",
        ] {
            let r = lint(&m, f);
            assert!(!r.has_errors(), "{f}: {r}");
        }
    }

    #[test]
    fn unsupported_bounds_error_matches_engine_matrix() {
        let m = model();
        // Time lower bound with reward bound: no exact engine...
        let r = lint(&m, "P(>= 0.5) [up U[1,2][0,10] down]");
        assert!(r.codes().contains(&"F002"));
        // ...but the simulation engine handles it.
        let r = lint_sim(&m, "P(>= 0.5) [up U[1,2][0,10] down]");
        assert!(!r.has_errors(), "{r}");
        // Reward lower bound: simulation only.
        let r = lint(&m, "P(>= 0.5) [up U[0,2][1,10] down]");
        assert!(r.codes().contains(&"F002"));
        assert!(!lint_sim(&m, "P(>= 0.5) [up U[0,2][1,10] down]").has_errors());
        // Unbounded time with bounded reward: no engine at all.
        let r = lint(&m, "P(>= 0.5) [up U[0,~][0,10] down]");
        assert!(r.codes().contains(&"F002"));
        assert!(lint_sim(&m, "P(>= 0.5) [up U[0,~][0,10] down]")
            .codes()
            .contains(&"F002"));
    }

    #[test]
    fn unsatisfiable_and_trivial_thresholds() {
        let m = model();
        assert!(lint(&m, "P(> 1) [up U down]").codes().contains(&"F101"));
        assert!(lint(&m, "S(< 0) (up)").codes().contains(&"F101"));
        assert!(lint(&m, "P(>= 0) [up U down]").codes().contains(&"F102"));
        assert!(lint(&m, "P(<= 1) [up U down]").codes().contains(&"F102"));
        // Sensible thresholds are quiet.
        let r = lint(&m, "P(>= 0.5) [up U down]");
        assert!(!r.codes().contains(&"F101"));
        assert!(!r.codes().contains(&"F102"));
    }

    #[test]
    fn vacuous_reward_bounds() {
        let m = model();
        assert!(lint(&m, "P(>= 0.5) [up U[0,2][0,0] down]")
            .codes()
            .contains(&"F103"));
        // Reward-free model: the same J=[0,0] is merely F104, not F103.
        let free = reward_free_model();
        let r = lint(&free, "P(>= 0.5) [up U[0,2][0,5] down]");
        assert!(r.codes().contains(&"F104"));
        assert!(!r.codes().contains(&"F103"));
        // No reward bound, no noise.
        assert!(!lint(&m, "P(>= 0.5) [up U[0,2] down]")
            .codes()
            .contains(&"F103"));
    }

    #[test]
    fn point_time_interval_notes() {
        let m = model();
        assert!(lint(&m, "P(>= 0.5) [up U[2,2] down]")
            .codes()
            .contains(&"F106"));
        assert!(!lint(&m, "P(>= 0.5) [up U[0,2] down]")
            .codes()
            .contains(&"F106"));
    }

    #[test]
    fn nesting_notes_count_inner_operators() {
        let m = model();
        let r = lint(&m, "P(> 0.9) [X (P(> 0.15) [X down])]");
        let d = r.diagnostics().iter().find(|d| d.code == "F105").unwrap();
        assert_eq!(d.severity, Severity::Note);
        assert!(d.message.contains("1 probability"));
        // Flat formulas are quiet.
        assert!(!lint(&m, "P(> 0.9) [up U down]").codes().contains(&"F105"));
    }

    #[test]
    fn edit_distance_sanity() {
        assert_eq!(edit_distance("busy", "busy"), 0);
        assert_eq!(edit_distance("busy", "bussy"), 1);
        assert_eq!(edit_distance("dwon", "down"), 2);
        assert_eq!(closest("dwon", &["down", "up"]), Some("down"));
        assert_eq!(closest("xyz", &["down", "up"]), None);
    }
}
