//! Model-scope lint passes (`M1xx` codes).
//!
//! The `M0xx` error codes are produced by
//! [`diagnose_load_error`](crate::diagnose_load_error) — a model that
//! loaded at all cannot violate the MRM definition, so everything here is
//! Warning/Note grade: loadable but suspicious structure.

use mrmc_ctmc::bscc::SccDecomposition;

use crate::diagnostic::{Diagnostic, Report, Severity};
use crate::LintContext;

/// How many state references a diagnostic lists before truncating.
const MAX_STATE_REFS: usize = 8;

/// Exit-rate spread beyond which a chain counts as stiff (the
/// uniformization rate is driven by the fastest state while the horizon is
/// governed by the slowest, so Λ·t — and with it every engine's work —
/// scales with this ratio).
const STIFFNESS_RATIO: f64 = 1e6;

/// Clip a state list to [`MAX_STATE_REFS`] representatives (1-indexed).
fn state_refs(states: impl Iterator<Item = usize>) -> Vec<usize> {
    states.take(MAX_STATE_REFS).map(|s| s + 1).collect()
}

/// `M101`/`M102`: states unreachable from the initial state (warning) and
/// a vanishing initial state — one no transition re-enters (note).
///
/// The model files have no initial-state marker; following the original
/// tool, state 1 is taken as initial. Unreachable states cost every engine
/// memory and per-state work without contributing to any verdict for the
/// initial state.
pub fn reachability(ctx: &LintContext<'_>, report: &mut Report) {
    let ctmc = ctx.mrm.ctmc();
    let n = ctmc.num_states();
    let rates = ctmc.rates();

    let mut reached = vec![false; n];
    let mut stack = vec![0usize];
    reached[0] = true;
    while let Some(s) = stack.pop() {
        for (t, rate) in rates.row(s) {
            if rate > 0.0 && !reached[t] {
                reached[t] = true;
                stack.push(t);
            }
        }
    }
    let unreachable: Vec<usize> = (0..n).filter(|&s| !reached[s]).collect();
    if !unreachable.is_empty() {
        if ctx.verbose {
            // Flat per-state form, as reported before condensation existed.
            let count = unreachable.len();
            report.push(
                Diagnostic::new(
                    "M101",
                    Severity::Warning,
                    format!(
                        "{count} state{} unreachable from the initial state (state 1)",
                        if count == 1 { " is" } else { "s are" }
                    ),
                )
                .with_states(state_refs(unreachable.into_iter()))
                .with_suggestion(
                    "remove the unreachable states or add transitions reaching them; \
                     every engine pays per-state work for them",
                ),
            );
        } else {
            // One diagnostic per unreachable SCC: a whole strongly
            // connected component is unreachable iff any of its members
            // is (reachability is component-invariant), so the SCC is the
            // natural unit of repair — a single transition into the
            // component reconnects all of it.
            let scc = SccDecomposition::new(rates);
            let mut members: Vec<Vec<usize>> = vec![Vec::new(); scc.num_components()];
            for &s in &unreachable {
                members[scc.component_of(s)].push(s);
            }
            // Components in ascending order of their smallest member, so
            // the report order is stable and follows the state numbering.
            let mut groups: Vec<&Vec<usize>> = members.iter().filter(|m| !m.is_empty()).collect();
            groups.sort_by_key(|m| m[0]);
            for group in groups {
                let count = group.len();
                report.push(
                    Diagnostic::new(
                        "M101",
                        Severity::Warning,
                        format!(
                            "unreachable SCC of {count} state{} (no path from the \
                             initial state, state 1)",
                            if count == 1 { "" } else { "s" }
                        ),
                    )
                    .with_states(state_refs(group.iter().copied()))
                    .with_suggestion(
                        "remove the component or add a transition reaching it; \
                         every engine pays per-state work for it",
                    ),
                );
            }
        }
    }

    let initial_has_incoming = rates.iter().any(|(_, to, rate)| to == 0 && rate > 0.0);
    if !initial_has_incoming && !ctmc.is_absorbing(0) {
        report.push(
            Diagnostic::new(
                "M102",
                Severity::Note,
                "the initial state (state 1) has no incoming transitions: it vanishes \
                 after the first jump, so steady-state measures ignore it",
            )
            .with_states(vec![1]),
        );
    }
}

/// `M103`: impulse rewards attached to zero-rate transitions. The impulse
/// can never be earned — almost certainly a generator bug or a stale
/// `.rewi` file.
pub fn impulse_structure(ctx: &LintContext<'_>, report: &mut Report) {
    let rates = ctx.mrm.ctmc().rates();
    let dead: Vec<(usize, usize)> = ctx
        .mrm
        .impulse_rewards()
        .iter()
        .filter(|&(from, to, value)| value > 0.0 && rates.get(from, to) == 0.0)
        .map(|(from, to, _)| (from, to))
        .collect();
    if !dead.is_empty() {
        let refs: Vec<String> = dead
            .iter()
            .take(MAX_STATE_REFS)
            .map(|(f, t)| format!("{} -> {}", f + 1, t + 1))
            .collect();
        report.push(
            Diagnostic::new(
                "M103",
                Severity::Warning,
                format!(
                    "{} impulse reward{} on zero-rate transition{} ({}): never earned",
                    dead.len(),
                    if dead.len() == 1 { "" } else { "s" },
                    if dead.len() == 1 { "" } else { "s" },
                    refs.join(", "),
                ),
            )
            .with_suggestion("remove the entries from the .rewi file or add the transitions"),
        );
    }
}

/// `M104`/`M107`: absorbing-BSCC structure.
///
/// * `M107` (note): absorbing states — until formulas stop accumulating
///   there, which is load-bearing for reward-bounded properties.
/// * `M104` (warning): a *zero-reward* BSCC in a model that otherwise has
///   rewards. Once entered, accumulated reward freezes forever, so
///   reward-bounded until formulas degenerate there (see "Markov Reward
///   Processes with Impulse Rewards and Absorbing States").
pub fn bscc_rewards(ctx: &LintContext<'_>, report: &mut Report) {
    let mrm = ctx.mrm;
    let ctmc = mrm.ctmc();
    let n = ctmc.num_states();

    let absorbing: Vec<usize> = (0..n).filter(|&s| ctmc.is_absorbing(s)).collect();
    if !absorbing.is_empty() {
        let count = absorbing.len();
        report.push(
            Diagnostic::new(
                "M107",
                Severity::Note,
                format!(
                    "{count} absorbing state{}: reward accumulation freezes there",
                    if count == 1 { "" } else { "s" }
                ),
            )
            .with_states(state_refs(absorbing.into_iter())),
        );
    }

    if mrm.is_reward_free() {
        // Zero-reward BSCCs are unremarkable in a reward-free model.
        return;
    }
    let scc = SccDecomposition::new(ctmc.rates());
    let mut flagged: Vec<usize> = Vec::new();
    for (_, members) in scc.bsccs() {
        let no_state_reward = members.iter().all(|&s| mrm.state_reward(s) == 0.0);
        let no_internal_impulse = members.iter().all(|&s| {
            ctmc.rates()
                .row(s)
                .all(|(t, rate)| rate == 0.0 || mrm.impulse_reward(s, t) == 0.0)
        });
        if no_state_reward && no_internal_impulse {
            flagged.extend(members.iter().copied());
        }
    }
    if !flagged.is_empty() {
        flagged.sort_unstable();
        let count = flagged.len();
        report.push(
            Diagnostic::new(
                "M104",
                Severity::Warning,
                format!(
                    "zero-reward bottom component{} ({count} state{}): accumulated reward \
                     freezes on entry, reward-bounded formulas degenerate there",
                    if count == 1 { "" } else { "s" },
                    if count == 1 { "" } else { "s" },
                ),
            )
            .with_states(state_refs(flagged.into_iter()))
            .with_suggestion(
                "if intentional, prefer time-bounded (P1-class) formulas over \
                 reward-bounded ones for states in these components",
            ),
        );
    }
}

/// `M105`: stiffness — the ratio of the largest to the smallest non-zero
/// exit rate exceeds `STIFFNESS_RATIO` (10⁶). Both engines' work scales with
/// `Λ·t`, which the fastest state inflates while the slow states dictate
/// the interesting time scale.
pub fn stiffness(ctx: &LintContext<'_>, report: &mut Report) {
    let exits = ctx.mrm.ctmc().exit_rates();
    let mut min = f64::INFINITY;
    let mut max = 0.0_f64;
    for &e in exits {
        if e > 0.0 {
            min = min.min(e);
            max = max.max(e);
        }
    }
    if min.is_finite() && max > min * STIFFNESS_RATIO {
        report.push(
            Diagnostic::new(
                "M105",
                Severity::Warning,
                format!(
                    "stiff chain: exit rates span {min:.3e} to {max:.3e} \
                     (ratio {:.1e} > {STIFFNESS_RATIO:.0e})",
                    max / min
                ),
            )
            .with_suggestion(
                "expect large uniformization depths; consider the discretization \
                 engine, a shorter horizon, or rescaling rates",
            ),
        );
    }
}

/// `M106`: atomic propositions declared in the `.lab` file's
/// `#DECLARATION` block but never assigned to a state. A formula using one
/// fails with `F001`, so a stale declaration usually hides a typo.
pub fn label_usage(ctx: &LintContext<'_>, report: &mut Report) {
    let labeling = ctx.mrm.labeling();
    let used = labeling.all_propositions();
    let unused: Vec<&str> = labeling
        .declared()
        .into_iter()
        .filter(|ap| !used.contains(ap))
        .collect();
    if !unused.is_empty() {
        report.push(
            Diagnostic::new(
                "M106",
                Severity::Warning,
                format!(
                    "{} declared proposition{} label{} no state: {}",
                    unused.len(),
                    if unused.len() == 1 { "" } else { "s" },
                    if unused.len() == 1 { "s" } else { "" },
                    unused.join(", "),
                ),
            )
            .with_suggestion("assign the propositions to states or drop the declarations"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Analyzer, EngineHint};
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_mrm::{ImpulseRewards, Mrm, StateRewards};

    fn ctx_report(mrm: &Mrm) -> Report {
        Analyzer::new().check_model(mrm)
    }

    #[test]
    fn clean_irreducible_model_is_quiet() {
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1.0)
            .transition(1, 2, 1.0)
            .transition(2, 0, 1.0);
        b.label(0, "a").label(1, "b").label(2, "c");
        let m = Mrm::without_rewards(b.build().unwrap());
        let r = ctx_report(&m);
        assert!(r.is_empty(), "{r}");
    }

    #[test]
    fn unreachable_states_warn() {
        // 0 → 1 absorbing; 2 → 1 exists but nothing reaches 2.
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1.0).transition(2, 1, 1.0);
        let m = Mrm::without_rewards(b.build().unwrap());
        let r = ctx_report(&m);
        assert!(r.codes().contains(&"M101"));
        let d = r.diagnostics().iter().find(|d| d.code == "M101").unwrap();
        assert_eq!(d.states, vec![3]);
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn vanishing_initial_state_notes() {
        // 1 → 2 ⇄ 3: nothing re-enters the initial state.
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1.0)
            .transition(1, 2, 1.0)
            .transition(2, 1, 1.0);
        let m = Mrm::without_rewards(b.build().unwrap());
        let r = ctx_report(&m);
        let d = r.diagnostics().iter().find(|d| d.code == "M102").unwrap();
        assert_eq!(d.states, vec![1]);
        assert_eq!(d.severity, Severity::Note);
        // An irreducible chain re-enters state 1: quiet.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(1, 0, 1.0);
        let m = Mrm::without_rewards(b.build().unwrap());
        assert!(!ctx_report(&m).codes().contains(&"M102"));
    }

    #[test]
    fn impulse_on_missing_transition_warns() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(1, 0, 1.0);
        let ctmc = b.build().unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(0, 1, 1.0).unwrap();
        // No 1 → 1 self transition either; impulse on a pair with no rate.
        iota.set(1, 1, 2.0).unwrap();
        let m = Mrm::new(ctmc, StateRewards::new(vec![0.0, 0.0]).unwrap(), iota).unwrap();
        let r = ctx_report(&m);
        let d = r.diagnostics().iter().find(|d| d.code == "M103").unwrap();
        assert!(d.message.contains("2 -> 2"), "{}", d.message);
    }

    #[test]
    fn zero_reward_bscc_warns_only_with_rewards_elsewhere() {
        // 0 (ρ=1) → 1 absorbing with ρ=0: zero-reward BSCC {1}.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0);
        let ctmc = b.build().unwrap();
        let m = Mrm::new(
            ctmc,
            StateRewards::new(vec![1.0, 0.0]).unwrap(),
            ImpulseRewards::new(),
        )
        .unwrap();
        let r = ctx_report(&m);
        assert!(r.codes().contains(&"M104"), "{r}");
        assert!(r.codes().contains(&"M107"));

        // Same chain, reward-free: no M104 (but M107 stays).
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0);
        let m = Mrm::without_rewards(b.build().unwrap());
        let r = ctx_report(&m);
        assert!(!r.codes().contains(&"M104"));
        assert!(r.codes().contains(&"M107"));
    }

    #[test]
    fn rewarded_bscc_is_fine() {
        // Absorbing state with a state reward: accumulation continues.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0);
        let ctmc = b.build().unwrap();
        let m = Mrm::new(
            ctmc,
            StateRewards::new(vec![1.0, 2.0]).unwrap(),
            ImpulseRewards::new(),
        )
        .unwrap();
        let r = ctx_report(&m);
        assert!(!r.codes().contains(&"M104"), "{r}");
    }

    #[test]
    fn stiffness_detected() {
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1e-4)
            .transition(1, 2, 1e7)
            .transition(2, 0, 1.0);
        let m = Mrm::without_rewards(b.build().unwrap());
        let r = ctx_report(&m);
        let d = r.diagnostics().iter().find(|d| d.code == "M105").unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.suggestion.is_some());
    }

    #[test]
    fn unused_declaration_warns() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(1, 0, 1.0);
        b.label(0, "up");
        let mut m = Mrm::without_rewards(b.build().unwrap());
        let (mut ctmc, rho, iota) = m.into_parts();
        ctmc.labeling_mut().declare("ghost");
        m = Mrm::new(ctmc, rho, iota).unwrap();
        let r = ctx_report(&m);
        let d = r.diagnostics().iter().find(|d| d.code == "M106").unwrap();
        assert!(d.message.contains("ghost"));
    }

    #[test]
    fn model_passes_ignore_the_formula_slot() {
        // check_model must not require a formula.
        let mut b = CtmcBuilder::new(1);
        b.transition(0, 0, 1.0);
        let m = Mrm::without_rewards(b.build().unwrap());
        let _ = Analyzer::new().check_all(&m, &[], EngineHint::default());
    }
}
