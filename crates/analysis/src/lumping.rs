//! Lumpability analysis: formula-adaptive, certificate-backed state-space
//! reduction (`R` codes).
//!
//! For a model `M` and a CSRL formula `Φ`, this module computes the
//! coarsest partition of the state space this analysis can *prove* to
//! preserve the semantics of `Φ` — an ordinary (strong) lumping quotient —
//! and packages the proof as a [`LumpingCertificate`] that an independent
//! `O(m)` verifier re-checks before any engine is allowed to trust it.
//!
//! # Formula-adaptive observation
//!
//! What must be preserved depends on what `Φ` can observe
//! ([`Observation::of`]):
//!
//! * a pure boolean formula over atomic propositions observes only the
//!   labeling — the initial partition groups states by their *relevant*
//!   propositions (those occurring in `Φ`) and no further refinement is
//!   needed;
//! * an `S`/`P` operator observes the transition law — blocks are refined
//!   until all members agree, bit-for-bit, on their aggregate rate into
//!   every other block;
//! * a nontrivial accumulated-reward bound `J` additionally observes the
//!   reward structure — members must agree on the state-reward rate and on
//!   the impulse earned towards every other block (and intra-block
//!   impulses must be zero, since a jump inside a block is invisible in
//!   the quotient but would still accumulate reward).
//!
//! # Exactness
//!
//! All comparisons are **bitwise** on the `f64` representation
//! ([`f64::to_bits`]), and aggregate rates are summed in the row order of
//! the sparse matrix, exactly as [`mrmc_mrm::transform::quotient`] and the
//! certificate verifier sum them. The quotient therefore reproduces the
//! full model's arithmetic *exactly* — no new rounding is introduced, so
//! checking the quotient and lifting the result is bit-reproducible.
//!
//! # Diagnostics
//!
//! The [`pass`] (registered by `mrmc lint --lumping`, *not* part of the
//! default set) reports:
//!
//! * `R001` (error) — a certificate failed re-verification (a bug trap:
//!   analysis and verifier disagree);
//! * `R101` (note) — the model is lumpable for this formula, with the
//!   original and reduced state counts;
//! * `R102` (note) — no nontrivial quotient exists for this formula;
//! * `R103` (note) — state rewards block further lumping, with an example
//!   pair of states separated only by their reward rates;
//! * `R104` (note) — impulse rewards block further lumping, with an
//!   example pair.

use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

use mrmc_csrl::{PathFormula, StateFormula};
use mrmc_mrm::transform::quotient;
use mrmc_mrm::{Mrm, Partition};

use crate::{Diagnostic, LintContext, Pass, Report, Scope, Severity};

/// Which aspects of a model a formula can observe — and a lumping must
/// therefore preserve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// The formula contains an `S` or `P` operator, so the transition law
    /// (and hence aggregate inter-block rates) is observable.
    pub rates: bool,
    /// Some path operator carries a nontrivial accumulated-reward bound
    /// `J ≠ [0, ∞)`, so state and impulse rewards are observable.
    pub rewards: bool,
}

impl Observation {
    /// What `formula` observes, by structural walk.
    pub fn of(formula: &StateFormula) -> Self {
        let mut obs = Observation {
            rates: false,
            rewards: false,
        };
        walk_state(formula, &mut obs);
        obs
    }
}

fn walk_state(f: &StateFormula, obs: &mut Observation) {
    match f {
        StateFormula::True | StateFormula::False | StateFormula::Ap(_) => {}
        StateFormula::Not(g) => walk_state(g, obs),
        StateFormula::Or(a, b) | StateFormula::And(a, b) | StateFormula::Implies(a, b) => {
            walk_state(a, obs);
            walk_state(b, obs);
        }
        StateFormula::Steady { inner, .. } => {
            obs.rates = true;
            walk_state(inner, obs);
        }
        StateFormula::Prob { path, .. } => {
            obs.rates = true;
            walk_path(path, obs);
        }
    }
}

fn walk_path(p: &PathFormula, obs: &mut Observation) {
    match p {
        PathFormula::Next { reward, inner, .. } => {
            if !reward.is_trivial() {
                obs.rewards = true;
            }
            walk_state(inner, obs);
        }
        PathFormula::Until {
            reward, lhs, rhs, ..
        } => {
            if !reward.is_trivial() {
                obs.rewards = true;
            }
            walk_state(lhs, obs);
            walk_state(rhs, obs);
        }
    }
}

/// The result of [`analyze`]: the proven partition, its certificate (when
/// it actually reduces the model), and attribution for what blocked
/// further lumping.
#[derive(Debug, Clone)]
pub struct LumpingAnalysis {
    /// What the formula observes.
    pub observation: Observation,
    /// The atomic propositions occurring in the formula, sorted.
    pub relevant_aps: Vec<String>,
    /// The coarsest partition the analysis proved safe.
    pub partition: Partition,
    /// The checkable certificate; `None` when the partition is the
    /// identity (nothing to reduce, nothing to certify).
    pub certificate: Option<LumpingCertificate>,
    /// An example pair of states kept apart *only* by their state-reward
    /// rates (0-indexed), when reward observation split a rate-lumpable
    /// pair.
    pub reward_blocked: Option<(usize, usize)>,
    /// An example pair of states kept apart *only* by impulse rewards
    /// (0-indexed).
    pub impulse_blocked: Option<(usize, usize)>,
}

/// Compute the coarsest provable `Φ`-preserving lumping of `mrm`.
///
/// The algorithm is partition refinement: start from the coarsest
/// partition compatible with the formula's atomic propositions (plus the
/// state-reward rate when rewards are observed), then repeatedly split
/// blocks whose members disagree on their signature — the bitwise
/// aggregate rate into every other block and, when rewards are observed,
/// the set of impulse values earned towards every other block. At the
/// fixpoint, remaining impulse-uniformity violations (a state earning two
/// different impulses towards one block, or a nonzero impulse inside a
/// block) trigger a split of the *receiving* block and the refinement
/// restarts; every such split strictly increases the block count, so the
/// loop terminates.
pub fn analyze(mrm: &Mrm, formula: &StateFormula) -> LumpingAnalysis {
    let observation = Observation::of(formula);
    let mut relevant_aps: Vec<String> = formula
        .propositions()
        .into_iter()
        .map(str::to_owned)
        .collect();
    relevant_aps.sort_unstable();
    relevant_aps.dedup();

    let partition = refine(
        mrm,
        &relevant_aps,
        observation.rates,
        observation.rewards,
        observation.rewards,
    );

    let (reward_blocked, impulse_blocked) = if observation.rewards {
        let p_rate = refine(mrm, &relevant_aps, true, false, false);
        let p_state = refine(mrm, &relevant_aps, true, true, false);
        (
            first_split_pair(&p_rate, &p_state),
            first_split_pair(&p_state, &partition),
        )
    } else {
        (None, None)
    };

    let certificate = if partition.is_identity() {
        None
    } else {
        build_certificate(mrm, &partition, observation, relevant_aps.clone())
    };

    LumpingAnalysis {
        observation,
        relevant_aps,
        partition,
        certificate,
        reward_blocked,
        impulse_blocked,
    }
}

/// The coarsest partition matching the requested observation level.
fn refine(
    mrm: &Mrm,
    relevant_aps: &[String],
    use_rates: bool,
    use_state_rewards: bool,
    use_impulses: bool,
) -> Partition {
    let n = mrm.num_states();
    let mut keys: HashMap<(Vec<bool>, u64), usize> = HashMap::new();
    let assignment: Vec<usize> = (0..n)
        .map(|s| {
            let aps: Vec<bool> = relevant_aps
                .iter()
                .map(|ap| mrm.labeling().has(s, ap))
                .collect();
            let rho = if use_state_rewards {
                mrm.state_reward(s).to_bits()
            } else {
                0
            };
            let next = keys.len();
            *keys.entry((aps, rho)).or_insert(next)
        })
        .collect();
    let mut partition = Partition::from_assignment(&assignment);
    if !use_rates {
        return partition;
    }

    let mut rounds = 0u64;
    let partition = 'outer: loop {
        loop {
            rounds += 1;
            let refined = split_by_signature(mrm, &partition, use_impulses);
            if refined.num_blocks() == partition.num_blocks() {
                break;
            }
            partition = refined;
        }
        if !use_impulses {
            break 'outer partition;
        }
        let Some((source, block)) = find_impulse_violation(mrm, &partition) else {
            break 'outer partition;
        };
        partition = split_block_by_incoming_impulse(mrm, &partition, source, block);
    };
    mrmc_obs::record(|| mrmc_obs::Event::LumpingRefinement {
        rounds,
        states: n as u64,
        blocks: partition.num_blocks() as u64,
    });
    partition
}

/// One refinement round: group states by their current block plus their
/// per-target-block signature.
fn split_by_signature(mrm: &Mrm, partition: &Partition, use_impulses: bool) -> Partition {
    #[derive(Hash, PartialEq, Eq)]
    struct Signature {
        block: usize,
        /// `(target block, aggregate rate bits)`, sorted by target block;
        /// the sum is accumulated in row order so it is bit-reproducible.
        rates: Vec<(usize, u64)>,
        /// `(target block, sorted deduplicated impulse bits)`, including
        /// the implicit zero of impulse-free transitions.
        impulses: Vec<(usize, Vec<u64>)>,
    }

    let n = mrm.num_states();
    let k = partition.num_blocks();
    let mut sums = vec![0.0_f64; k];
    let mut touched: Vec<usize> = Vec::new();
    let mut keys: HashMap<Signature, usize> = HashMap::new();
    let assignment: Vec<usize> = (0..n)
        .map(|s| {
            let b = partition.block_of(s);
            // BTreeMap: the signature below consumes this map in
            // iteration order, so the order must be the key order, not
            // hash order.
            let mut impulse_map: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
            for (t, r) in mrm.ctmc().rates().row(s) {
                let c = partition.block_of(t);
                if c == b {
                    continue;
                }
                if sums[c] == 0.0 {
                    touched.push(c);
                }
                sums[c] += r;
                if use_impulses {
                    impulse_map
                        .entry(c)
                        .or_default()
                        .push(mrm.impulse_reward(s, t).to_bits());
                }
            }
            touched.sort_unstable();
            let rates: Vec<(usize, u64)> =
                touched.iter().map(|&c| (c, sums[c].to_bits())).collect();
            for &c in &touched {
                sums[c] = 0.0;
            }
            touched.clear();
            // BTreeMap iteration is already key-ascending, so the
            // signature's impulse list needs no extra outer sort.
            let impulses: Vec<(usize, Vec<u64>)> = impulse_map
                .into_iter()
                .map(|(c, mut vs)| {
                    vs.sort_unstable();
                    vs.dedup();
                    (c, vs)
                })
                .collect();
            let next = keys.len();
            *keys
                .entry(Signature {
                    block: b,
                    rates,
                    impulses,
                })
                .or_insert(next)
        })
        .collect();
    Partition::from_assignment(&assignment)
}

/// Find a `(source state, block to split)` pair witnessing an impulse
/// uniformity violation: either `source` earns two different impulses
/// towards the block, or it earns a nonzero impulse *inside* it.
fn find_impulse_violation(mrm: &Mrm, partition: &Partition) -> Option<(usize, usize)> {
    for s in 0..mrm.num_states() {
        let b = partition.block_of(s);
        let mut per_block: HashMap<usize, u64> = HashMap::new();
        for (t, _) in mrm.ctmc().rates().row(s) {
            let c = partition.block_of(t);
            let v = mrm.impulse_reward(s, t).to_bits();
            if c == b {
                if v != 0 {
                    return Some((s, b));
                }
            } else if let Some(&prev) = per_block.get(&c) {
                if prev != v {
                    return Some((s, c));
                }
            } else {
                per_block.insert(c, v);
            }
        }
    }
    None
}

/// Split `block` by the impulse its members receive from `source`
/// (a state without a `source` transition is its own group). Any valid
/// lumping must separate members receiving different impulses from the
/// same state, so this never splits a pair the coarsest valid partition
/// could keep together — and it always splits the witnessing pair, so the
/// outer loop makes progress.
fn split_block_by_incoming_impulse(
    mrm: &Mrm,
    partition: &Partition,
    source: usize,
    block: usize,
) -> Partition {
    let mut from_source: HashMap<usize, u64> = HashMap::new();
    for (t, _) in mrm.ctmc().rates().row(source) {
        if partition.block_of(t) == block {
            from_source.insert(t, mrm.impulse_reward(source, t).to_bits());
        }
    }
    let k = partition.num_blocks();
    let mut keys: HashMap<Option<u64>, usize> = HashMap::new();
    let mut assignment = partition.assignment().to_vec();
    for (t, slot) in assignment.iter_mut().enumerate() {
        if *slot == block {
            let next = keys.len();
            *slot = k + *keys.entry(from_source.get(&t).copied()).or_insert(next);
        }
    }
    Partition::from_assignment(&assignment)
}

/// The first (lowest-index) pair of states sharing a `coarse` block but
/// split apart in `fine`; `fine` must refine `coarse`.
fn first_split_pair(coarse: &Partition, fine: &Partition) -> Option<(usize, usize)> {
    let mut first_seen: Vec<Option<(usize, usize)>> = vec![None; coarse.num_blocks()];
    for s in 0..coarse.num_states() {
        match first_seen[coarse.block_of(s)] {
            None => first_seen[coarse.block_of(s)] = Some((s, fine.block_of(s))),
            Some((s0, fb0)) => {
                if fine.block_of(s) != fb0 {
                    return Some((s0, s));
                }
            }
        }
    }
    None
}

fn build_certificate(
    mrm: &Mrm,
    partition: &Partition,
    observation: Observation,
    relevant_aps: Vec<String>,
) -> Option<LumpingCertificate> {
    let reduced = if observation.rewards {
        quotient(mrm, partition).ok()?
    } else {
        // The formula cannot observe rewards, so the quotient is built
        // reward-free: cheaper to check, and the verifier can insist on it.
        quotient(&Mrm::without_rewards(mrm.ctmc().clone()), partition).ok()?
    };
    Some(LumpingCertificate {
        partition: partition.clone(),
        quotient: reduced,
        relevant_aps,
        observes_rates: observation.rates,
        observes_rewards: observation.rewards,
    })
}

/// A checkable lumping certificate: the partition, the quotient model it
/// claims to induce, and what the certified formula class observes.
///
/// The certificate is plain data. Nothing downstream trusts the analysis
/// that produced it — [`LumpingCertificate::verify`] re-validates every
/// claim against the original model in `O(m)` with bitwise comparisons,
/// and `mrmc-core` refuses to check on a quotient whose certificate does
/// not verify.
#[derive(Debug, Clone)]
pub struct LumpingCertificate {
    /// The claimed lumping.
    pub partition: Partition,
    /// The claimed quotient model (reward-free when rewards are not
    /// observed).
    pub quotient: Mrm,
    /// The atomic propositions whose per-state truth must survive the
    /// quotient, sorted.
    pub relevant_aps: Vec<String>,
    /// Whether aggregate inter-block rates are part of the claim.
    pub observes_rates: bool,
    /// Whether state and impulse rewards are part of the claim.
    pub observes_rewards: bool,
}

impl LumpingCertificate {
    /// Re-validate the certificate against `mrm`.
    ///
    /// Checks, in order: the partition covers the state space and the
    /// quotient has one state per block; every state agrees with its block
    /// on every relevant proposition; when rates are observed, every
    /// state's aggregate rate into every other block equals the quotient
    /// row **bitwise** (sums accumulated in row order, exactly as the
    /// quotient was built); when rewards are observed, every state matches
    /// its block's state-reward rate bitwise, every inter-block transition
    /// carries exactly the block-pair impulse, and intra-block impulses
    /// are zero; when rewards are *not* observed, the quotient must be
    /// reward-free.
    ///
    /// Runs in `O(n·|AP| + m)`.
    ///
    /// # Errors
    ///
    /// The first [`CertificateError`] encountered, identifying the
    /// offending state or transition.
    pub fn verify(&self, mrm: &Mrm) -> Result<(), CertificateError> {
        let n = mrm.num_states();
        if self.partition.num_states() != n {
            return Err(CertificateError::PartitionSize {
                states: n,
                partitioned: self.partition.num_states(),
            });
        }
        let k = self.partition.num_blocks();
        if self.quotient.num_states() != k {
            return Err(CertificateError::QuotientSize {
                blocks: k,
                quotient_states: self.quotient.num_states(),
            });
        }
        if !self.observes_rewards && !self.quotient.is_reward_free() {
            return Err(CertificateError::UnexpectedRewards);
        }

        for s in 0..n {
            let b = self.partition.block_of(s);
            for ap in &self.relevant_aps {
                if mrm.labeling().has(s, ap) != self.quotient.labeling().has(b, ap) {
                    return Err(CertificateError::LabelMismatch {
                        state: s,
                        ap: ap.clone(),
                    });
                }
            }
        }

        if self.observes_rates {
            let mut sums = vec![0.0_f64; k];
            let mut touched: Vec<usize> = Vec::new();
            for s in 0..n {
                let b = self.partition.block_of(s);
                for (t, r) in mrm.ctmc().rates().row(s) {
                    let c = self.partition.block_of(t);
                    if c == b {
                        continue;
                    }
                    if sums[c] == 0.0 {
                        touched.push(c);
                    }
                    sums[c] += r;
                }
                let qrates = self.quotient.ctmc().rates();
                let mut ok = qrates.row_nnz(b) == touched.len();
                for &c in &touched {
                    if qrates.get(b, c).to_bits() != sums[c].to_bits() {
                        ok = false;
                    }
                    sums[c] = 0.0;
                }
                touched.clear();
                if !ok {
                    return Err(CertificateError::RateMismatch { state: s, block: b });
                }
            }
        }

        if self.observes_rewards {
            for s in 0..n {
                let b = self.partition.block_of(s);
                if mrm.state_reward(s).to_bits() != self.quotient.state_reward(b).to_bits() {
                    return Err(CertificateError::StateRewardMismatch { state: s });
                }
                for (t, _) in mrm.ctmc().rates().row(s) {
                    let c = self.partition.block_of(t);
                    let v = mrm.impulse_reward(s, t);
                    if c == b {
                        if v != 0.0 {
                            return Err(CertificateError::IntraBlockImpulse { from: s, to: t });
                        }
                    } else if v.to_bits() != self.quotient.impulse_reward(b, c).to_bits() {
                        return Err(CertificateError::ImpulseMismatch { from: s, to: t });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Why a [`LumpingCertificate`] failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// The partition covers a different number of states than the model.
    PartitionSize {
        /// States in the model.
        states: usize,
        /// States covered by the partition.
        partitioned: usize,
    },
    /// The quotient has a different number of states than the partition
    /// has blocks.
    QuotientSize {
        /// Blocks in the partition.
        blocks: usize,
        /// States in the claimed quotient.
        quotient_states: usize,
    },
    /// The certificate claims rewards are unobservable but the quotient
    /// carries rewards.
    UnexpectedRewards,
    /// A state disagrees with its block on a relevant proposition.
    LabelMismatch {
        /// The offending state.
        state: usize,
        /// The proposition in question.
        ap: String,
    },
    /// A state's aggregate rates into other blocks do not match the
    /// quotient row of its block bitwise.
    RateMismatch {
        /// The offending state.
        state: usize,
        /// Its block.
        block: usize,
    },
    /// A state's reward rate differs from its block's.
    StateRewardMismatch {
        /// The offending state.
        state: usize,
    },
    /// A transition's impulse differs from the block-pair impulse.
    ImpulseMismatch {
        /// Source state.
        from: usize,
        /// Target state.
        to: usize,
    },
    /// A nonzero impulse inside a block.
    IntraBlockImpulse {
        /// Source state.
        from: usize,
        /// Target state.
        to: usize,
    },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::PartitionSize {
                states,
                partitioned,
            } => write!(
                f,
                "partition covers {partitioned} states but the model has {states}"
            ),
            CertificateError::QuotientSize {
                blocks,
                quotient_states,
            } => write!(
                f,
                "quotient has {quotient_states} states for a {blocks}-block partition"
            ),
            CertificateError::UnexpectedRewards => {
                write!(f, "reward-blind certificate carries a rewarded quotient")
            }
            CertificateError::LabelMismatch { state, ap } => write!(
                f,
                "state {state} disagrees with its block on proposition \"{ap}\""
            ),
            CertificateError::RateMismatch { state, block } => write!(
                f,
                "aggregate rates of state {state} do not match quotient row of block {block}"
            ),
            CertificateError::StateRewardMismatch { state } => {
                write!(f, "state reward of state {state} differs from its block's")
            }
            CertificateError::ImpulseMismatch { from, to } => write!(
                f,
                "impulse on transition {from} -> {to} differs from its block pair's"
            ),
            CertificateError::IntraBlockImpulse { from, to } => write!(
                f,
                "nonzero impulse on intra-block transition {from} -> {to}"
            ),
        }
    }
}

impl Error for CertificateError {}

/// The lumpability lint pass. **Not** part of
/// [`Analyzer::default_passes`](crate::Analyzer::default_passes) — register
/// [`PASS`] explicitly (the CLI does under `mrmc lint --lumping`).
pub fn pass(ctx: &LintContext<'_>, report: &mut Report) {
    let Some(formula) = ctx.formula else { return };
    let analysis = analyze(ctx.mrm, formula);
    let n = ctx.mrm.num_states();
    let k = analysis.partition.num_blocks();
    match &analysis.certificate {
        Some(cert) => {
            if let Err(e) = cert.verify(ctx.mrm) {
                report.push(Diagnostic::new(
                    "R001",
                    Severity::Error,
                    format!("lumping certificate failed verification: {e}"),
                ));
                return;
            }
            report.push(
                Diagnostic::new(
                    "R101",
                    Severity::Note,
                    format!("model is lumpable: {n} -> {k} states for this formula"),
                )
                .with_suggestion(
                    "the checker applies this verified reduction automatically; \
                     pass --no-reduction to disable it",
                ),
            );
        }
        None => {
            report.push(Diagnostic::new(
                "R102",
                Severity::Note,
                format!(
                    "no nontrivial quotient: the coarsest provable partition for this formula \
                     keeps all {n} states"
                ),
            ));
        }
    }
    if let Some((a, b)) = analysis.reward_blocked {
        report.push(
            Diagnostic::new(
                "R103",
                Severity::Note,
                "state rewards block further lumping between otherwise-lumpable states",
            )
            .with_states(vec![a + 1, b + 1]),
        );
    }
    if let Some((a, b)) = analysis.impulse_blocked {
        report.push(
            Diagnostic::new(
                "R104",
                Severity::Note,
                "impulse rewards block further lumping between otherwise-lumpable states",
            )
            .with_states(vec![a + 1, b + 1]),
        );
    }
}

/// The pass descriptor for [`Analyzer::register`](crate::Analyzer::register).
pub const PASS: Pass = Pass {
    name: "lumpability",
    scope: Scope::Formula,
    run: pass,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use mrmc_ctmc::CtmcBuilder;
    use mrmc_models::{tmr, TmrConfig};
    use mrmc_mrm::{ImpulseRewards, StateRewards};

    fn parse(s: &str) -> StateFormula {
        mrmc_csrl::parse(s).unwrap()
    }

    /// 0 → {1, 2} → 3 → 0 with the middle states lumpable for anything.
    fn diamond(rewards: [f64; 4], imp1: f64, imp2: f64) -> Mrm {
        let mut b = CtmcBuilder::new(4);
        b.transition(0, 1, 1.0).transition(0, 2, 1.0);
        b.transition(1, 3, 2.0);
        b.transition(2, 3, 2.0);
        b.transition(3, 0, 0.5);
        b.label(1, "mid").label(2, "mid");
        b.label(3, "goal");
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(rewards.to_vec()).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(1, 3, imp1).unwrap();
        iota.set(2, 3, imp2).unwrap();
        Mrm::new(ctmc, rho, iota).unwrap()
    }

    #[test]
    fn observation_tracks_operators_and_reward_bounds() {
        assert_eq!(
            Observation::of(&parse("goal || !mid")),
            Observation {
                rates: false,
                rewards: false
            }
        );
        assert_eq!(
            Observation::of(&parse("P(>= 0.5) [TT U[0,1] goal]")),
            Observation {
                rates: true,
                rewards: false
            }
        );
        assert_eq!(
            Observation::of(&parse("P(>= 0.5) [TT U[0,1][0,2] goal]")),
            Observation {
                rates: true,
                rewards: true
            }
        );
        assert_eq!(
            Observation::of(&parse("S(< 0.1) (goal)")),
            Observation {
                rates: true,
                rewards: false
            }
        );
    }

    #[test]
    fn pure_ap_formula_lumps_by_labels_alone() {
        // TMR's rate structure does not lump, but a boolean formula cannot
        // see it: the partition is the proposition partition.
        let m = tmr(&TmrConfig::classic());
        let a = analyze(&m, &parse("Sup"));
        assert_eq!(a.partition.num_blocks(), 2);
        let cert = a.certificate.expect("reduction exists");
        assert!(cert.quotient.is_reward_free());
        cert.verify(&m).unwrap();
    }

    #[test]
    fn rate_observing_formula_refines_by_rates() {
        let m = tmr(&TmrConfig::classic());
        let a = analyze(&m, &parse("P(>= 0.5) [TT U[0,1] failed]"));
        // The classic TMR rate structure admits no nontrivial lumping.
        assert!(a.partition.is_identity());
        assert!(a.certificate.is_none());
    }

    #[test]
    fn lumpable_rate_structure_reduces_under_probabilistic_formula() {
        let m = diamond([0.0, 5.0, 5.0, 1.0], 0.5, 0.5);
        let a = analyze(&m, &parse("P(>= 0.5) [TT U[0,1] goal]"));
        assert_eq!(a.partition.num_blocks(), 3);
        let cert = a.certificate.expect("mid states merge");
        assert!(cert.quotient.is_reward_free());
        cert.verify(&m).unwrap();
    }

    #[test]
    fn reward_bound_keeps_rewards_and_still_lumps_when_uniform() {
        let m = diamond([0.0, 5.0, 5.0, 1.0], 0.5, 0.5);
        let a = analyze(&m, &parse("P(>= 0.5) [TT U[0,1][0,2] goal]"));
        assert_eq!(a.partition.num_blocks(), 3);
        let cert = a.certificate.expect("mid states merge");
        assert!(!cert.quotient.is_reward_free());
        assert_eq!(cert.quotient.state_reward(cert.partition.block_of(1)), 5.0);
        cert.verify(&m).unwrap();
        assert_eq!(a.reward_blocked, None);
        assert_eq!(a.impulse_blocked, None);
    }

    #[test]
    fn state_rewards_block_lumping_with_example_pair() {
        let m = diamond([0.0, 5.0, 6.0, 1.0], 0.5, 0.5);
        let a = analyze(&m, &parse("P(>= 0.5) [TT U[0,1][0,2] goal]"));
        assert!(a.partition.is_identity());
        assert_eq!(a.reward_blocked, Some((1, 2)));
        assert_eq!(a.impulse_blocked, None);
        // A reward-blind formula still lumps the same model.
        let b = analyze(&m, &parse("P(>= 0.5) [TT U[0,1] goal]"));
        assert_eq!(b.partition.num_blocks(), 3);
    }

    #[test]
    fn impulse_rewards_block_lumping_with_example_pair() {
        let m = diamond([0.0, 5.0, 5.0, 1.0], 0.5, 0.7);
        let a = analyze(&m, &parse("P(>= 0.5) [TT U[0,1][0,2] goal]"));
        assert!(a.partition.is_identity());
        assert_eq!(a.reward_blocked, None);
        assert_eq!(a.impulse_blocked, Some((1, 2)));
    }

    #[test]
    fn non_uniform_impulses_from_one_state_split_the_target_block() {
        // 0 reaches both mid states with different impulses: any valid
        // reward-observing lumping must keep 1 and 2 apart.
        let mut b = CtmcBuilder::new(4);
        b.transition(0, 1, 1.0).transition(0, 2, 1.0);
        b.transition(1, 3, 2.0);
        b.transition(2, 3, 2.0);
        b.transition(3, 0, 0.5);
        b.label(1, "mid").label(2, "mid");
        b.label(3, "goal");
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![0.0, 5.0, 5.0, 1.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(0, 1, 1.0).unwrap();
        iota.set(0, 2, 2.0).unwrap();
        let m = Mrm::new(ctmc, rho, iota).unwrap();
        let a = analyze(&m, &parse("P(>= 0.5) [TT U[0,1][0,2] goal]"));
        assert_ne!(a.partition.block_of(1), a.partition.block_of(2));
        if let Some(cert) = &a.certificate {
            cert.verify(&m).unwrap();
        }
    }

    #[test]
    fn intra_block_impulse_forces_a_split() {
        // 1 and 2 would merge, but 1 → 2 carries an impulse that a quotient
        // could not account for.
        let mut b = CtmcBuilder::new(4);
        b.transition(0, 1, 1.0).transition(0, 2, 1.0);
        b.transition(1, 3, 2.0).transition(1, 2, 1.0);
        b.transition(2, 3, 2.0).transition(2, 1, 1.0);
        b.transition(3, 0, 0.5);
        b.label(1, "mid").label(2, "mid");
        b.label(3, "goal");
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![0.0, 5.0, 5.0, 1.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(1, 2, 3.0).unwrap();
        let m = Mrm::new(ctmc, rho, iota).unwrap();

        // Reward-blind: 1 and 2 lump (the impulse is invisible).
        let blind = analyze(&m, &parse("P(>= 0.5) [TT U[0,1] goal]"));
        assert_eq!(blind.partition.block_of(1), blind.partition.block_of(2));
        blind.certificate.unwrap().verify(&m).unwrap();

        // Reward-observing: they must stay apart.
        let full = analyze(&m, &parse("P(>= 0.5) [TT U[0,1][0,2] goal]"));
        assert_ne!(full.partition.block_of(1), full.partition.block_of(2));
        if let Some(cert) = &full.certificate {
            cert.verify(&m).unwrap();
        }
    }

    #[test]
    fn corrupted_certificates_are_rejected() {
        let m = diamond([0.0, 5.0, 5.0, 1.0], 0.5, 0.5);
        let a = analyze(&m, &parse("P(>= 0.5) [TT U[0,1][0,2] goal]"));
        let cert = a.certificate.unwrap();
        cert.verify(&m).unwrap();

        // Wrong partition size.
        let mut bad = cert.clone();
        bad.partition = Partition::identity(3);
        assert!(matches!(
            bad.verify(&m),
            Err(CertificateError::PartitionSize { .. })
        ));

        // Quotient with tampered rates.
        let mut bad = cert.clone();
        let mut qb = CtmcBuilder::new(3);
        qb.transition(0, 1, 2.5); // was 2.0
        qb.transition(1, 2, 2.0);
        qb.transition(2, 0, 0.5);
        qb.label(1, "mid").label(2, "goal");
        bad.quotient = Mrm::new(
            qb.build().unwrap(),
            StateRewards::new(vec![0.0, 5.0, 1.0]).unwrap(),
            {
                let mut i = ImpulseRewards::new();
                i.set(1, 2, 0.5).unwrap();
                i
            },
        )
        .unwrap();
        assert!(matches!(
            bad.verify(&m),
            Err(CertificateError::RateMismatch { .. })
        ));

        // Quotient with a mislabeled block.
        let mut bad = cert.clone();
        let mut qb = CtmcBuilder::new(3);
        qb.transition(0, 1, 2.0);
        qb.transition(1, 2, 2.0);
        qb.transition(2, 0, 0.5);
        qb.label(0, "goal").label(1, "mid");
        bad.quotient = Mrm::new(
            qb.build().unwrap(),
            StateRewards::new(vec![0.0, 5.0, 1.0]).unwrap(),
            {
                let mut i = ImpulseRewards::new();
                i.set(1, 2, 0.5).unwrap();
                i
            },
        )
        .unwrap();
        assert!(matches!(
            bad.verify(&m),
            Err(CertificateError::LabelMismatch { .. })
        ));

        // Partition merging states with different rewards.
        let mut bad = cert;
        bad.partition = Partition::from_assignment(&[0, 0, 1, 2]);
        assert!(bad.verify(&m).is_err());
    }

    #[test]
    fn reward_blind_certificate_must_be_reward_free() {
        let m = diamond([0.0, 5.0, 5.0, 1.0], 0.5, 0.5);
        let a = analyze(&m, &parse("goal"));
        let mut cert = a.certificate.unwrap();
        cert.verify(&m).unwrap();
        cert.quotient = quotient(&m, &cert.partition).unwrap();
        assert!(matches!(
            cert.verify(&m),
            Err(CertificateError::UnexpectedRewards)
        ));
    }

    #[test]
    fn pass_reports_lumpable_models_and_blockers() {
        let mut analyzer = Analyzer::empty();
        analyzer.register(PASS);

        let m = tmr(&TmrConfig::classic());
        let report = analyzer.check_formula(&m, &parse("Sup"), Default::default());
        assert_eq!(report.codes(), vec!["R101"]);
        assert!(report.render_human().contains("5 -> 2 states"));

        let report = analyzer.check_formula(
            &m,
            &parse("P(>= 0.5) [TT U[0,1] failed]"),
            Default::default(),
        );
        assert_eq!(report.codes(), vec!["R102"]);

        let blocked = diamond([0.0, 5.0, 6.0, 1.0], 0.5, 0.7);
        let report = analyzer.check_formula(
            &blocked,
            &parse("P(>= 0.5) [TT U[0,1][0,2] goal]"),
            Default::default(),
        );
        assert_eq!(report.codes(), vec!["R102", "R103"]);
        // The example pair is reported 1-indexed.
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == "R103")
            .unwrap();
        assert_eq!(d.states, vec![2, 3]);
    }

    #[test]
    fn certificate_errors_display() {
        for e in [
            CertificateError::PartitionSize {
                states: 4,
                partitioned: 3,
            },
            CertificateError::QuotientSize {
                blocks: 2,
                quotient_states: 3,
            },
            CertificateError::UnexpectedRewards,
            CertificateError::LabelMismatch {
                state: 1,
                ap: "up".into(),
            },
            CertificateError::RateMismatch { state: 1, block: 0 },
            CertificateError::StateRewardMismatch { state: 2 },
            CertificateError::ImpulseMismatch { from: 0, to: 1 },
            CertificateError::IntraBlockImpulse { from: 0, to: 1 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
