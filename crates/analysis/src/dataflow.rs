//! Qualitative dataflow analysis: certified Prob0/Prob1 precomputation
//! and graph condensation (`X` codes).
//!
//! Every verdict the numerical engines produce is earned with floating
//! point, even when pure graph structure already decides it: a state from
//! which no `Φ`-path reaches a `Ψ`-state satisfies `P(Φ U Ψ) = 0`
//! *exactly*, and a state from which the chain almost surely reaches `Ψ`
//! through `Φ` satisfies it with probability *exactly* 1. This module
//! computes those two sets **statically, before any numerics**, and
//! packages them as a [`QualitativeCertificate`] that an independent
//! `O(n + m)` verifier re-checks before any engine is allowed to prune
//! with it — the same trust discipline as the lumping certificates.
//!
//! # The fixpoints
//!
//! For a finite CTMC the qualitative sets of `Φ U Ψ` depend only on the
//! digraph of strictly positive rates:
//!
//! * **certain-zero** (`Prob0`): the complement of the backward cone of
//!   `Ψ` through `Φ`-states. Computed by one backward BFS from `Ψ`,
//!   expanding to predecessors satisfying `Φ ∧ ¬Ψ`. Sound for **every**
//!   bound shape `U^I_J` — a witness path for any time/reward bound is in
//!   particular a graph path through `Φ` to `Ψ`.
//! * **certain-one** (`Prob1`): for the *unbounded* operator only, the
//!   complement of the backward cone of the certain-zero set through
//!   `Φ ∧ ¬Ψ`-states — in a finite Markov chain a trajectory almost
//!   surely leaves the transient `Φ ∧ ¬Ψ` region, so `P(s) < 1` iff `s`
//!   can reach a certain-zero state without passing through `Ψ`. Bounded
//!   operators get the conservative `Ψ` itself (time can run out in any
//!   transient region, so no strictly larger set is certain).
//!
//! # The certificate
//!
//! [`QualitativeCertificate::verify`] re-establishes soundness from
//! scratch, using only the model's rate graph and the stored `Φ`/`Ψ`
//! vectors — it shares no code with the fixpoint computation above:
//!
//! * **zero-closure** — no certain-zero state satisfies `Ψ`, and every
//!   positive-rate successor of a certain-zero `Φ`-state is certain-zero
//!   again. Any `Φ`-path from the set to `Ψ` would have to leave it, so
//!   membership really implies probability 0.
//! * **one-closure** — every certain-one non-`Ψ` state satisfies `Φ` and
//!   all its successors are certain-one: trajectories cannot escape the
//!   set before reaching `Ψ`.
//! * **one-liveness** — a backward BFS from `Ψ ∩ one` *inside* the
//!   certain-one set covers it completely: `Ψ` stays reachable from
//!   everywhere in the set, so (finite chain, closed region) it is hit
//!   almost surely.
//!
//! # Diagnostics
//!
//! The passes (registered by `mrmc lint --dataflow`, *not* part of the
//! default set) report:
//!
//! * `X001` (error) — a qualitative certificate failed re-verification
//!   (a bug trap: analysis and verifier disagree);
//! * `X002` (note) — the model's condensation: SCC and BSCC counts;
//! * `X003` (note) — per until-subformula qualitative set sizes, with the
//!   certificate hash;
//! * `X004` (note) — states the slicer would prune from the numerical
//!   solve (certain-zero `Φ`-states and certain-one non-`Ψ` states).

use std::error::Error;
use std::fmt;

use mrmc_csrl::{PathFormula, StateFormula};
use mrmc_ctmc::bscc::SccDecomposition;
use mrmc_mrm::Mrm;

use crate::{Diagnostic, LintContext, Pass, Report, Scope, Severity};

/// The qualitative result of one until-subformula: the certain-0 and
/// certain-1 state sets, with everything the independent verifier needs
/// to re-establish their soundness against a model.
///
/// Plain data by design — serializable, hashable, and checkable without
/// trusting the analysis that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualitativeCertificate {
    /// The `Φ` (invariant) satisfaction vector the sets were computed for.
    pub phi: Vec<bool>,
    /// The `Ψ` (goal) satisfaction vector the sets were computed for.
    pub psi: Vec<bool>,
    /// `zero[s]` — `P(s, Φ U Ψ) = 0` exactly, for every bound shape.
    pub zero: Vec<bool>,
    /// `one[s]` — `P(s, Φ U Ψ) = 1` exactly. For bounded operators this
    /// is conservatively `Ψ` itself.
    pub one: Vec<bool>,
    /// Whether `one` used the full unbounded fixpoint (`true`) or the
    /// conservative bounded approximation `one = Ψ` (`false`).
    pub unbounded: bool,
}

/// Why a [`QualitativeCertificate`] failed re-verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QualitativeError {
    /// A stored vector's length does not match the model's state count.
    LengthMismatch {
        /// Which vector (`"phi"`, `"psi"`, `"zero"`, `"one"`).
        vector: &'static str,
        /// The model's state count.
        expected: usize,
        /// The stored vector's length.
        found: usize,
    },
    /// A certain-zero state satisfies `Ψ` (its probability is ≥ its
    /// probability of being a goal state — trivially nonzero).
    ZeroContainsGoal {
        /// The offending state (0-indexed).
        state: usize,
    },
    /// A certain-zero `Φ`-state has a positive-rate successor outside the
    /// set — a potential escape route towards `Ψ`.
    ZeroNotClosed {
        /// The certain-zero state (0-indexed).
        state: usize,
        /// Its successor outside the set (0-indexed).
        successor: usize,
    },
    /// A state is flagged both certain-zero and certain-one.
    Contradiction {
        /// The offending state (0-indexed).
        state: usize,
    },
    /// A certain-one non-`Ψ` state does not satisfy `Φ` — its until
    /// probability is 0, not 1.
    OneWithoutInvariant {
        /// The offending state (0-indexed).
        state: usize,
    },
    /// A certain-one non-`Ψ` state has a positive-rate successor outside
    /// the set — trajectories can escape before reaching `Ψ`.
    OneNotClosed {
        /// The certain-one state (0-indexed).
        state: usize,
        /// Its successor outside the set (0-indexed).
        successor: usize,
    },
    /// A certain-one state cannot reach `Ψ` inside the set, so the chain
    /// does not hit `Ψ` almost surely from it.
    OneCannotReachGoal {
        /// The offending state (0-indexed).
        state: usize,
    },
    /// A bounded-operator certificate claims certain-one states beyond
    /// `Ψ` — only the unbounded fixpoint may do that.
    BoundedOneBeyondGoal {
        /// The offending state (0-indexed).
        state: usize,
    },
}

impl fmt::Display for QualitativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QualitativeError::LengthMismatch {
                vector,
                expected,
                found,
            } => write!(
                f,
                "certificate vector '{vector}' has length {found}, model has {expected} states"
            ),
            QualitativeError::ZeroContainsGoal { state } => write!(
                f,
                "certain-zero state {} satisfies the goal formula",
                state + 1
            ),
            QualitativeError::ZeroNotClosed { state, successor } => write!(
                f,
                "certain-zero state {} has successor {} outside the certain-zero set",
                state + 1,
                successor + 1
            ),
            QualitativeError::Contradiction { state } => write!(
                f,
                "state {} is flagged both certain-zero and certain-one",
                state + 1
            ),
            QualitativeError::OneWithoutInvariant { state } => write!(
                f,
                "certain-one state {} satisfies neither the invariant nor the goal",
                state + 1
            ),
            QualitativeError::OneNotClosed { state, successor } => write!(
                f,
                "certain-one state {} has successor {} outside the certain-one set",
                state + 1,
                successor + 1
            ),
            QualitativeError::OneCannotReachGoal { state } => write!(
                f,
                "certain-one state {} cannot reach the goal inside the certain-one set",
                state + 1
            ),
            QualitativeError::BoundedOneBeyondGoal { state } => write!(
                f,
                "bounded-operator certificate claims certain-one state {} beyond the goal set",
                state + 1
            ),
        }
    }
}

impl Error for QualitativeError {}

impl QualitativeCertificate {
    /// Independently re-verify this certificate against `mrm`: establish
    /// the zero-closure, one-closure and one-liveness invariants from
    /// scratch in `O(n + m)` (see the module docs for why they imply
    /// soundness). Shares no code with [`qualitative_until`].
    ///
    /// # Errors
    ///
    /// The first violated invariant, in the fixed check order
    /// lengths → zero-closure → contradiction → one-closure →
    /// one-liveness.
    pub fn verify(&self, mrm: &Mrm) -> Result<(), QualitativeError> {
        let n = mrm.num_states();
        for (vector, v) in [
            ("phi", &self.phi),
            ("psi", &self.psi),
            ("zero", &self.zero),
            ("one", &self.one),
        ] {
            if v.len() != n {
                return Err(QualitativeError::LengthMismatch {
                    vector,
                    expected: n,
                    found: v.len(),
                });
            }
        }
        let rates = mrm.ctmc().rates();

        // Zero-closure: no goal states inside, and Φ-members cannot leave.
        for s in 0..n {
            if !self.zero[s] {
                continue;
            }
            if self.psi[s] {
                return Err(QualitativeError::ZeroContainsGoal { state: s });
            }
            if self.phi[s] {
                for (t, rate) in rates.row(s) {
                    if rate > 0.0 && !self.zero[t] {
                        return Err(QualitativeError::ZeroNotClosed {
                            state: s,
                            successor: t,
                        });
                    }
                }
            }
        }

        if let Some(s) = (0..n).find(|&s| self.zero[s] && self.one[s]) {
            return Err(QualitativeError::Contradiction { state: s });
        }

        // One-closure: non-goal members satisfy Φ and cannot leave.
        for s in 0..n {
            if !self.one[s] || self.psi[s] {
                continue;
            }
            if !self.unbounded {
                return Err(QualitativeError::BoundedOneBeyondGoal { state: s });
            }
            if !self.phi[s] {
                return Err(QualitativeError::OneWithoutInvariant { state: s });
            }
            for (t, rate) in rates.row(s) {
                if rate > 0.0 && !self.one[t] {
                    return Err(QualitativeError::OneNotClosed {
                        state: s,
                        successor: t,
                    });
                }
            }
        }

        // One-liveness: Ψ stays reachable from every member, inside the
        // set. Backward BFS from Ψ ∩ one over the transposed graph.
        let transpose = rates.transpose();
        let mut covered: Vec<bool> = (0..n).map(|s| self.one[s] && self.psi[s]).collect();
        let mut stack: Vec<usize> = (0..n).filter(|&s| covered[s]).collect();
        while let Some(t) = stack.pop() {
            for (s, rate) in transpose.row(t) {
                if rate > 0.0 && self.one[s] && !covered[s] {
                    covered[s] = true;
                    stack.push(s);
                }
            }
        }
        if let Some(s) = (0..n).find(|&s| self.one[s] && !covered[s]) {
            return Err(QualitativeError::OneCannotReachGoal { state: s });
        }
        Ok(())
    }

    /// How many states are certain-zero.
    pub fn zero_count(&self) -> usize {
        self.zero.iter().filter(|&&b| b).count()
    }

    /// How many states are certain-one.
    pub fn one_count(&self) -> usize {
        self.one.iter().filter(|&&b| b).count()
    }

    /// How many states the slicer prunes from the numerical solve beyond
    /// what the engines already skip: certain-zero `Φ`-states (the
    /// engines only skip `¬Φ ∧ ¬Ψ` states on their own) and certain-one
    /// non-`Ψ` states (pre-assigned verdict 1 without solving).
    ///
    /// Zero here is the bitwise-identity guarantee: when nothing is
    /// pruned, a sliced run takes exactly the unsliced control path.
    pub fn slice_states_removed(&self) -> usize {
        (0..self.phi.len())
            .filter(|&s| (self.zero[s] && self.phi[s]) || (self.one[s] && !self.psi[s]))
            .count()
    }

    /// A stable FNV-1a content hash of the certificate (vectors and bound
    /// flag), reported in diagnostics and `--json` output so runs can be
    /// correlated with the exact qualitative result they pruned with.
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut byte = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        };
        for v in [&self.phi, &self.psi, &self.zero, &self.one] {
            for &bit in v {
                byte(u8::from(bit));
            }
            byte(0xff);
        }
        byte(u8::from(self.unbounded));
        h
    }
}

/// Compute the qualitative sets of `Φ U Ψ` over `mrm`'s rate graph.
///
/// `unbounded` selects the full `Prob1` fixpoint; bounded operators must
/// pass `false` and get the conservative `one = Ψ` (see module docs).
///
/// # Panics
///
/// If `phi` or `psi` length differs from the model's state count.
pub fn qualitative_until(
    mrm: &Mrm,
    phi: &[bool],
    psi: &[bool],
    unbounded: bool,
) -> QualitativeCertificate {
    let n = mrm.num_states();
    assert_eq!(phi.len(), n, "phi length must match the state count");
    assert_eq!(psi.len(), n, "psi length must match the state count");
    let transpose = mrm.ctmc().rates().transpose();

    // Prob0: backward cone of Ψ through Φ-states; zero = complement.
    let mut can_reach = psi.to_vec();
    let mut stack: Vec<usize> = (0..n).filter(|&s| can_reach[s]).collect();
    while let Some(t) = stack.pop() {
        for (s, rate) in transpose.row(t) {
            if rate > 0.0 && phi[s] && !psi[s] && !can_reach[s] {
                can_reach[s] = true;
                stack.push(s);
            }
        }
    }
    let zero: Vec<bool> = can_reach.iter().map(|&r| !r).collect();

    // Prob1 (unbounded only): states that cannot reach the certain-zero
    // set through Φ ∧ ¬Ψ-states — in a finite chain the transient region
    // is a.s. left, so avoiding `zero` means hitting Ψ with probability 1.
    let one: Vec<bool> = if unbounded {
        let mut reaches_zero = zero.clone();
        let mut stack: Vec<usize> = (0..n).filter(|&s| reaches_zero[s]).collect();
        while let Some(t) = stack.pop() {
            for (s, rate) in transpose.row(t) {
                if rate > 0.0 && phi[s] && !psi[s] && !reaches_zero[s] {
                    reaches_zero[s] = true;
                    stack.push(s);
                }
            }
        }
        reaches_zero.iter().map(|&r| !r).collect()
    } else {
        psi.to_vec()
    };

    QualitativeCertificate {
        phi: phi.to_vec(),
        psi: psi.to_vec(),
        zero,
        one,
        unbounded,
    }
}

/// Evaluate a *boolean* state formula (propositional connectives over
/// atomic propositions) to a satisfaction vector. `None` as soon as a
/// nested `S`/`P` operator appears — those need an engine, and the lint
/// passes here never run one.
pub fn eval_boolean(mrm: &Mrm, formula: &StateFormula) -> Option<Vec<bool>> {
    let n = mrm.num_states();
    match formula {
        StateFormula::True => Some(vec![true; n]),
        StateFormula::False => Some(vec![false; n]),
        StateFormula::Ap(name) => Some(mrm.labeling().states_with(name)),
        StateFormula::Not(g) => {
            let mut v = eval_boolean(mrm, g)?;
            for b in &mut v {
                *b = !*b;
            }
            Some(v)
        }
        StateFormula::And(a, b) => {
            let va = eval_boolean(mrm, a)?;
            let vb = eval_boolean(mrm, b)?;
            Some(va.iter().zip(&vb).map(|(&x, &y)| x && y).collect())
        }
        StateFormula::Or(a, b) => {
            let va = eval_boolean(mrm, a)?;
            let vb = eval_boolean(mrm, b)?;
            Some(va.iter().zip(&vb).map(|(&x, &y)| x || y).collect())
        }
        StateFormula::Implies(a, b) => {
            let va = eval_boolean(mrm, a)?;
            let vb = eval_boolean(mrm, b)?;
            Some(va.iter().zip(&vb).map(|(&x, &y)| !x || y).collect())
        }
        StateFormula::Steady { .. } | StateFormula::Prob { .. } => None,
    }
}

/// Collect every until-subformula of `formula`, outermost first, with a
/// rendered description and whether its time/reward bounds are trivial
/// (making the unbounded `Prob1` fixpoint applicable).
fn collect_untils<'a>(formula: &'a StateFormula, out: &mut Vec<UntilSite<'a>>) {
    match formula {
        StateFormula::True | StateFormula::False | StateFormula::Ap(_) => {}
        StateFormula::Not(g) => collect_untils(g, out),
        StateFormula::And(a, b) | StateFormula::Or(a, b) | StateFormula::Implies(a, b) => {
            collect_untils(a, out);
            collect_untils(b, out);
        }
        StateFormula::Steady { inner, .. } => collect_untils(inner, out),
        StateFormula::Prob { path, .. } => match &**path {
            PathFormula::Next { inner, .. } => collect_untils(inner, out),
            PathFormula::Until {
                time,
                reward,
                lhs,
                rhs,
            } => {
                out.push(UntilSite {
                    lhs,
                    rhs,
                    unbounded: time.is_trivial() && reward.is_trivial(),
                });
                collect_untils(lhs, out);
                collect_untils(rhs, out);
            }
        },
    }
}

struct UntilSite<'a> {
    lhs: &'a StateFormula,
    rhs: &'a StateFormula,
    unbounded: bool,
}

/// `X002`: the model's condensation — SCC/BSCC counts over the rate
/// graph. Model scope, so it fires once per model.
pub fn condensation_pass(ctx: &LintContext<'_>, report: &mut Report) {
    let scc = SccDecomposition::new(ctx.mrm.ctmc().rates());
    let bottoms = scc.bsccs().count();
    report.push(Diagnostic::new(
        "X002",
        Severity::Note,
        format!(
            "condensation: {} SCC{} ({} bottom) over {} states",
            scc.num_components(),
            if scc.num_components() == 1 { "" } else { "s" },
            bottoms,
            ctx.mrm.num_states()
        ),
    ));
}

/// `X001`/`X003`/`X004`: per until-subformula qualitative analysis.
/// Formula scope; operands that need an engine (nested `S`/`P`) are
/// skipped — the checker computes their real satisfaction vectors at
/// engine time and runs the same analysis there.
pub fn qualitative_pass(ctx: &LintContext<'_>, report: &mut Report) {
    let Some(formula) = ctx.formula else {
        return;
    };
    let mut sites = Vec::new();
    collect_untils(formula, &mut sites);
    for site in sites {
        let (Some(phi), Some(psi)) = (
            eval_boolean(ctx.mrm, site.lhs),
            eval_boolean(ctx.mrm, site.rhs),
        ) else {
            continue;
        };
        let cert = qualitative_until(ctx.mrm, &phi, &psi, site.unbounded);
        if let Err(err) = cert.verify(ctx.mrm) {
            report.push(Diagnostic::new(
                "X001",
                Severity::Error,
                format!("qualitative certificate failed re-verification: {err}"),
            ));
            continue;
        }
        report.push(Diagnostic::new(
            "X003",
            Severity::Note,
            format!(
                "qualitative sets for '{} U {}': {} certain-zero, {} certain-one of {} states \
                 ({}; certificate {:016x} verified)",
                site.lhs,
                site.rhs,
                cert.zero_count(),
                cert.one_count(),
                ctx.mrm.num_states(),
                if site.unbounded {
                    "unbounded fixpoint"
                } else {
                    "bounded: certain-one conservatively equals the goal set"
                },
                cert.content_hash(),
            ),
        ));
        let removed = cert.slice_states_removed();
        if removed > 0 {
            report.push(
                Diagnostic::new(
                    "X004",
                    Severity::Note,
                    format!(
                        "slicing prunes {removed} state{} from the numerical solve \
                         (verdict decided by graph structure alone)",
                        if removed == 1 { "" } else { "s" }
                    ),
                )
                .with_suggestion(
                    "this is the default; pass --no-slicing to force the full numerical solve",
                ),
            );
        }
    }
}

/// The model-scope condensation pass, for `mrmc lint --dataflow`.
pub const CONDENSATION_PASS: Pass = Pass {
    name: "dataflow-condensation",
    scope: Scope::Model,
    run: condensation_pass,
};

/// The formula-scope qualitative pass, for `mrmc lint --dataflow`.
pub const PASS: Pass = Pass {
    name: "dataflow-qualitative",
    scope: Scope::Formula,
    run: qualitative_pass,
};

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_csrl::parse;
    use mrmc_ctmc::CtmcBuilder;

    /// 0:a → 1:a → 2:goal, 3:trap → 3 (absorbing, no goal), 1 → 3.
    fn chain_with_trap() -> Mrm {
        let mut b = CtmcBuilder::new(4);
        b.transition(0, 1, 1.0)
            .transition(1, 2, 1.0)
            .transition(1, 3, 1.0);
        b.label(0, "a").label(1, "a").label(2, "goal").label(3, "a");
        Mrm::without_rewards(b.build().unwrap())
    }

    /// 0:a → 1:goal (certain), 2:b absorbing.
    fn certain_chain() -> Mrm {
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 2.0);
        b.label(0, "a").label(1, "goal").label(2, "b");
        Mrm::without_rewards(b.build().unwrap())
    }

    fn sets(mrm: &Mrm, phi: &str, psi: &str, unbounded: bool) -> QualitativeCertificate {
        let phi = eval_boolean(mrm, &parse(phi).unwrap()).unwrap();
        let psi = eval_boolean(mrm, &parse(psi).unwrap()).unwrap();
        qualitative_until(mrm, &phi, &psi, unbounded)
    }

    #[test]
    fn prob0_is_the_backward_cone_complement() {
        let m = chain_with_trap();
        let c = sets(&m, "a", "goal", true);
        // State 3 is an a-labelled trap: no path to goal.
        assert_eq!(c.zero, vec![false, false, false, true]);
        c.verify(&m).unwrap();
    }

    #[test]
    fn prob1_finds_certain_states_beyond_the_goal() {
        let m = certain_chain();
        let c = sets(&m, "a", "goal", true);
        // State 0 reaches goal with probability one; state 2 never.
        assert_eq!(c.zero, vec![false, false, true]);
        assert_eq!(c.one, vec![true, true, false]);
        assert_eq!(c.slice_states_removed(), 1);
        c.verify(&m).unwrap();
    }

    #[test]
    fn bounded_certificates_keep_one_at_the_goal() {
        let m = certain_chain();
        let c = sets(&m, "a", "goal", false);
        assert_eq!(c.one, vec![false, true, false]);
        c.verify(&m).unwrap();
        // Prob0 is bound-shape independent, so zero is unchanged.
        assert_eq!(c.zero, sets(&m, "a", "goal", true).zero);
    }

    #[test]
    fn branching_keeps_uncertain_states_out_of_one() {
        let m = chain_with_trap();
        let c = sets(&m, "a", "goal", true);
        // 1 branches to the trap, so neither 0 nor 1 is certain.
        assert_eq!(c.one, vec![false, false, true, false]);
        c.verify(&m).unwrap();
    }

    #[test]
    fn eval_boolean_handles_connectives_and_rejects_operators() {
        let m = certain_chain();
        let f = parse("a || goal").unwrap();
        assert_eq!(eval_boolean(&m, &f).unwrap(), vec![true, true, false]);
        let f = parse("!(a => goal)").unwrap();
        assert_eq!(eval_boolean(&m, &f).unwrap(), vec![true, false, false]);
        let f = parse("P(>= 0.5) [a U goal]").unwrap();
        assert!(eval_boolean(&m, &f).is_none());
    }

    #[test]
    fn content_hash_is_input_sensitive() {
        let m = certain_chain();
        let a = sets(&m, "a", "goal", true);
        let b = sets(&m, "a", "goal", false);
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash(), sets(&m, "a", "goal", true).content_hash());
    }

    #[test]
    fn mutated_certificates_are_rejected() {
        let m = chain_with_trap();
        let good = sets(&m, "a", "goal", true);
        good.verify(&m).unwrap();

        // 1: a goal state claimed certain-zero.
        let mut c = good.clone();
        c.zero[2] = true;
        assert!(matches!(
            c.verify(&m),
            Err(QualitativeError::ZeroContainsGoal { state: 2 })
        ));

        // 2: a Φ-state with an escape route claimed certain-zero.
        let mut c = good.clone();
        c.zero[1] = true;
        assert!(matches!(
            c.verify(&m),
            Err(QualitativeError::ZeroNotClosed { state: 1, .. })
        ));

        // 3: certain-zero and certain-one at once.
        let mut c = good.clone();
        c.one[3] = true;
        assert!(matches!(
            c.verify(&m),
            Err(QualitativeError::Contradiction { state: 3 })
        ));

        // 4: a non-invariant state claimed certain-one.
        let mut c = good.clone();
        c.phi[0] = false;
        c.one[0] = true;
        c.zero[0] = false;
        assert!(matches!(
            c.verify(&m),
            Err(QualitativeError::OneWithoutInvariant { state: 0 })
        ));

        // 5: a branching state claimed certain-one (successor outside).
        let mut c = good.clone();
        c.one[1] = true;
        assert!(matches!(
            c.verify(&m),
            Err(QualitativeError::OneNotClosed { state: 1, .. })
        ));

        // 6: a goal-free absorbing trap claimed certain-one (closure
        // holds vacuously, liveness catches it).
        let mut c = good.clone();
        c.zero[3] = false;
        c.one[3] = true;
        assert!(matches!(
            c.verify(&m),
            Err(QualitativeError::OneCannotReachGoal { state: 3 })
        ));

        // 7: a bounded certificate smuggling in unbounded certain-ones.
        let m2 = certain_chain();
        let mut c = sets(&m2, "a", "goal", false);
        c.one[0] = true;
        assert!(matches!(
            c.verify(&m2),
            Err(QualitativeError::BoundedOneBeyondGoal { state: 0 })
        ));

        // 8: truncated vector.
        let mut c = good.clone();
        c.one.pop();
        assert!(matches!(
            c.verify(&m),
            Err(QualitativeError::LengthMismatch {
                vector: "one",
                expected: 4,
                found: 3,
            })
        ));
    }

    #[test]
    fn passes_emit_x_codes() {
        use crate::{Analyzer, EngineHint};
        let m = chain_with_trap();
        let mut a = Analyzer::empty();
        a.register(CONDENSATION_PASS).register(PASS);
        let f = parse("P(>= 0.5) [a U goal]").unwrap();
        let model = a.check_model(&m);
        assert_eq!(model.codes(), vec!["X002"]);
        let formula = a.check_formula(&m, &f, EngineHint::default());
        let codes = formula.codes();
        assert!(codes.contains(&"X003"), "{formula}");
        assert!(codes.contains(&"X004"), "{formula}");
        assert!(!formula.has_errors());
    }
}
