//! Static semantic analysis over Markov reward models and CSRL formulas.
//!
//! The numerical engines of the checker (Sat recursion, make-absorbing
//! until, the uniformization and discretization engines) silently assume
//! well-formed inputs: stochastic generator rows, non-negative rewards,
//! reachable states, non-degenerate `I`/`J` intervals. When those
//! assumptions fail the engines misbehave or waste enormous compute. This
//! crate catches the *structural* trouble **statically, before any engine
//! runs**, complementing the error-budget subsystem that reports
//! *numerical* trouble after the fact.
//!
//! # Pipeline
//!
//! A compiler-style diagnostics pipeline: independent lint *passes* inspect
//! a [`LintContext`] (the model, optionally a formula, and the engine that
//! would run) and push typed [`Diagnostic`]s into a [`Report`]. Passes are
//! registered on an [`Analyzer`]; [`Analyzer::default_passes`] carries the
//! built-in set and custom passes can be appended with
//! [`Analyzer::register`].
//!
//! * **Model passes** (`M` codes) look at the MRM alone: unreachable
//!   states, impulses on zero-rate transitions, zero-reward BSCCs,
//!   stiffness, unused label declarations.
//! * **Formula passes** (`F` codes) look at a formula against the model:
//!   unknown atomic propositions, bound shapes no engine supports,
//!   unsatisfiable or trivial probability thresholds, vacuous reward
//!   bounds, nesting that triggers two-run widening.
//! * **Cost passes** (`C` codes) predict engine cost from
//!   [`mrmc_numerics::cost`]: path-explosion and grid-memory estimates,
//!   surfaced as warnings with suggested knob changes.
//!
//! Severities follow the compiler convention: `Error` findings abort
//! checking (the checker's mandatory pre-flight refuses to start an
//! engine), `Warning`s proceed unless denied, `Note`s are informational.
//!
//! ```
//! use mrmc_analysis::{Analyzer, Severity};
//! # let mut b = mrmc_ctmc::CtmcBuilder::new(2);
//! # b.transition(0, 1, 1.0).transition(1, 0, 1.0);
//! # b.label(0, "up").label(1, "down");
//! # let mrm = mrmc_mrm::Mrm::without_rewards(b.build().unwrap());
//! let formula = mrmc_csrl::parse("P(>= 0.5) [up U misspelled]").unwrap();
//! let report = Analyzer::new().check_formula(&mrm, &formula, Default::default());
//! assert!(report.has_errors());
//! assert_eq!(report.codes(), vec!["F001"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod dataflow;
pub mod diagnostic;
pub mod formula;
pub mod lumping;
pub mod model;

pub use dataflow::{qualitative_until, QualitativeCertificate, QualitativeError};
pub use diagnostic::{Diagnostic, Report, Severity};
pub use lumping::{CertificateError, LumpingAnalysis, LumpingCertificate, Observation};

use mrmc_csrl::StateFormula;
use mrmc_mrm::io::LoadError;
use mrmc_mrm::Mrm;

/// Which inputs a pass needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Inspects the model alone; runs once per model.
    Model,
    /// Inspects a formula against the model; runs once per formula.
    Formula,
}

/// The engine the checker would run for reward-bounded until formulas,
/// with the knobs the cost passes predict from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineHint {
    /// The path-exploration engine with truncation probability `w`.
    Uniformization {
        /// Path truncation probability.
        truncation: f64,
    },
    /// The discretization engine with step `d`.
    Discretization {
        /// Grid step size.
        step: f64,
    },
    /// The Monte-Carlo engine with `samples` trajectories per state.
    Simulation {
        /// Trajectories per state.
        samples: u64,
    },
}

impl Default for EngineHint {
    /// The checker's default engine: uniformization at the thesis tool's
    /// default truncation probability `w = 1e-8`.
    fn default() -> Self {
        EngineHint::Uniformization { truncation: 1e-8 }
    }
}

/// Everything a pass may look at.
#[derive(Debug, Clone, Copy)]
pub struct LintContext<'a> {
    /// The model under analysis.
    pub mrm: &'a Mrm,
    /// The formula under analysis; `None` while running model-scope passes.
    pub formula: Option<&'a StateFormula>,
    /// The engine the checker would use for reward-bounded until formulas.
    pub engine: EngineHint,
    /// Verbose mode (`mrmc lint --verbose`): passes that aggregate by
    /// default (e.g. per-SCC unreachable-state grouping) fall back to
    /// their flat per-state form.
    pub verbose: bool,
}

/// The signature of a lint pass: inspect the context, push findings.
pub type PassFn = fn(&LintContext<'_>, &mut Report);

/// A registered lint pass.
#[derive(Debug, Clone, Copy)]
pub struct Pass {
    /// Short kebab-case name, shown in `--verbose` pass listings and docs.
    pub name: &'static str,
    /// Which inputs the pass needs.
    pub scope: Scope,
    /// The implementation.
    pub run: PassFn,
}

/// An ordered collection of lint passes.
///
/// [`Analyzer::new`] starts from the built-in set; [`Analyzer::empty`]
/// starts blank for embedders that want full control. Passes run in
/// registration order, so diagnostics are deterministic.
#[derive(Debug, Clone)]
pub struct Analyzer {
    passes: Vec<Pass>,
    verbose: bool,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl Analyzer {
    /// All built-in passes, in stable order.
    pub fn new() -> Self {
        Analyzer {
            passes: Self::default_passes().to_vec(),
            verbose: false,
        }
    }

    /// No passes; register your own.
    pub fn empty() -> Self {
        Analyzer {
            passes: Vec::new(),
            verbose: false,
        }
    }

    /// Enable verbose mode: aggregating passes (per-SCC unreachable-state
    /// grouping) report their flat per-state form instead.
    pub fn set_verbose(&mut self, verbose: bool) -> &mut Self {
        self.verbose = verbose;
        self
    }

    /// The built-in pass set.
    pub fn default_passes() -> &'static [Pass] {
        &[
            Pass {
                name: "model-reachability",
                scope: Scope::Model,
                run: model::reachability,
            },
            Pass {
                name: "model-impulse-structure",
                scope: Scope::Model,
                run: model::impulse_structure,
            },
            Pass {
                name: "model-bscc-rewards",
                scope: Scope::Model,
                run: model::bscc_rewards,
            },
            Pass {
                name: "model-stiffness",
                scope: Scope::Model,
                run: model::stiffness,
            },
            Pass {
                name: "model-label-usage",
                scope: Scope::Model,
                run: model::label_usage,
            },
            Pass {
                name: "formula-propositions",
                scope: Scope::Formula,
                run: formula::propositions,
            },
            Pass {
                name: "formula-bound-support",
                scope: Scope::Formula,
                run: formula::bound_support,
            },
            Pass {
                name: "formula-thresholds",
                scope: Scope::Formula,
                run: formula::thresholds,
            },
            Pass {
                name: "formula-vacuity",
                scope: Scope::Formula,
                run: formula::vacuity,
            },
            Pass {
                name: "formula-nesting",
                scope: Scope::Formula,
                run: formula::nesting,
            },
            Pass {
                name: "cost-prediction",
                scope: Scope::Formula,
                run: cost::prediction,
            },
        ]
    }

    /// Append a custom pass; it runs after all previously registered ones.
    pub fn register(&mut self, pass: Pass) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// The registered passes, in execution order.
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// Run every model-scope pass.
    pub fn check_model(&self, mrm: &Mrm) -> Report {
        let ctx = LintContext {
            mrm,
            formula: None,
            engine: EngineHint::default(),
            verbose: self.verbose,
        };
        let mut report = Report::new();
        for pass in self.passes.iter().filter(|p| p.scope == Scope::Model) {
            (pass.run)(&ctx, &mut report);
        }
        report
    }

    /// Run every formula-scope pass against `formula`.
    pub fn check_formula(&self, mrm: &Mrm, formula: &StateFormula, engine: EngineHint) -> Report {
        let ctx = LintContext {
            mrm,
            formula: Some(formula),
            engine,
            verbose: self.verbose,
        };
        let mut report = Report::new();
        for pass in self.passes.iter().filter(|p| p.scope == Scope::Formula) {
            (pass.run)(&ctx, &mut report);
        }
        report
    }

    /// Run everything: model passes once, formula passes per formula.
    pub fn check_all(&self, mrm: &Mrm, formulas: &[StateFormula], engine: EngineHint) -> Report {
        let mut report = self.check_model(mrm);
        for f in formulas {
            report.extend(self.check_formula(mrm, f, engine));
        }
        report
    }
}

/// The checker's mandatory pre-flight: the built-in formula-scope passes.
///
/// `mrmc-core` calls this before starting any engine and aborts on
/// Error-level findings. The pass set is exactly
/// [`Analyzer::default_passes`] restricted to [`Scope::Formula`], so a
/// formula that survives pre-flight cannot fail with an unknown
/// proposition or unsupported bound shape at engine time.
pub fn preflight(mrm: &Mrm, formula: &StateFormula, engine: EngineHint) -> Report {
    Analyzer::new().check_formula(mrm, formula, engine)
}

/// Map a model [`LoadError`] to the diagnostic vocabulary, so `mrmc lint`
/// reports unloadable models with stable codes instead of a bare error
/// string:
///
/// * `M001` — unreadable file or malformed header/format;
/// * `M002` — duplicate transition entry (`.tra`/`.rewi`);
/// * `M003` — duplicate label, declaration, or reward entry;
/// * `M004` — the files parse but violate the MRM definition
///   (negative rates/rewards, self-loop impulses, size mismatches).
///
/// Format errors carry the 1-based line of the offending record
/// ([`Diagnostic::line`]), so editors and scripts can jump straight to it.
pub fn diagnose_load_error(err: &LoadError) -> Diagnostic {
    use mrmc_mrm::io::FormatErrorKind;
    let (code, line) = match err {
        LoadError::Format { source, .. } => {
            let code = match source.kind {
                FormatErrorKind::DuplicateTransition { .. } => "M002",
                FormatErrorKind::DuplicateReward { .. }
                | FormatErrorKind::DuplicateLabel { .. }
                | FormatErrorKind::DuplicateDeclaration { .. } => "M003",
                _ => "M001",
            };
            // Line 0 is the parser's "end of file" sentinel, not a record.
            (code, (source.line > 0).then_some(source.line))
        }
        LoadError::Io { .. } => ("M001", None),
        LoadError::Model(_) => ("M004", None),
    };
    let d = Diagnostic::new(code, Severity::Error, err.to_string());
    match line {
        Some(l) => d.with_line(l),
        None => d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_ctmc::CtmcBuilder;

    fn two_state() -> Mrm {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(1, 0, 1.0);
        b.label(0, "up").label(1, "down");
        Mrm::without_rewards(b.build().unwrap())
    }

    #[test]
    fn default_passes_cover_both_scopes() {
        let a = Analyzer::new();
        assert!(a.passes().iter().any(|p| p.scope == Scope::Model));
        assert!(a.passes().iter().any(|p| p.scope == Scope::Formula));
        // Names are unique (they key the docs table).
        let mut names: Vec<_> = a.passes().iter().map(|p| p.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn clean_model_and_formula_produce_no_errors() {
        let mrm = two_state();
        let f = mrmc_csrl::parse("P(>= 0.5) [up U down]").unwrap();
        let report = Analyzer::new().check_all(&mrm, &[f], EngineHint::default());
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn custom_passes_run_after_builtins() {
        fn always_note(_: &LintContext<'_>, report: &mut Report) {
            report.push(Diagnostic::new("X999", Severity::Note, "custom"));
        }
        let mut a = Analyzer::empty();
        a.register(Pass {
            name: "custom",
            scope: Scope::Model,
            run: always_note,
        });
        let report = a.check_model(&two_state());
        assert_eq!(report.codes(), vec!["X999"]);
    }

    #[test]
    fn load_errors_map_to_stable_codes() {
        use mrmc_mrm::io::ModelFiles;
        let broken = ModelFiles {
            tra: "STATES 2\nTRANSITIONS 2\n1 2 1.0\n1 2 1.0\n".into(),
            lab: String::new(),
            rewr: String::new(),
            rewi: String::new(),
        };
        let d = diagnose_load_error(&broken.assemble().unwrap_err());
        assert_eq!(d.code, "M002");
        assert_eq!(d.severity, Severity::Error);
        // The duplicate `1 2` record sits on line 4 of the .tra file.
        assert_eq!(d.line, Some(4));

        let bad_header = ModelFiles {
            tra: "garbage".into(),
            lab: String::new(),
            rewr: String::new(),
            rewi: String::new(),
        };
        let d = diagnose_load_error(&bad_header.assemble().unwrap_err());
        assert_eq!(d.code, "M001");

        let dup_label = ModelFiles {
            tra: "STATES 1\nTRANSITIONS 0\n".into(),
            lab: "#DECLARATION\nup\n#END\n1 up,up\n".into(),
            rewr: String::new(),
            rewi: String::new(),
        };
        let d = diagnose_load_error(&dup_label.assemble().unwrap_err());
        assert_eq!(d.code, "M003");
        // The `1 up,up` record sits on line 4 of the .lab file.
        assert_eq!(d.line, Some(4));

        let negative_rate = ModelFiles {
            tra: "STATES 2\nTRANSITIONS 1\n1 2 -1.0\n".into(),
            lab: String::new(),
            rewr: String::new(),
            rewi: String::new(),
        };
        let d = diagnose_load_error(&negative_rate.assemble().unwrap_err());
        assert_eq!(d.code, "M004");
        // Model-level violations have no single source line.
        assert_eq!(d.line, None);

        let dup_reward = ModelFiles {
            tra: "STATES 2\nTRANSITIONS 2\n1 2 1.0\n2 1 1.0\n".into(),
            lab: String::new(),
            rewr: "1 2.0\n1 3.0\n".into(),
            rewi: String::new(),
        };
        let d = diagnose_load_error(&dup_reward.assemble().unwrap_err());
        assert_eq!(d.code, "M003");
        // The repeated `1 ...` reward record sits on line 2 of the .rewr
        // file.
        assert_eq!(d.line, Some(2));
    }
}
