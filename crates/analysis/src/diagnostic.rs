//! The diagnostic vocabulary: codes, severities, and the report they are
//! collected into.
//!
//! Codes are **stable**: scripts may match on them, so a code is never
//! renumbered or reused. The namespaces are
//!
//! * `M0xx` — model structure errors (unloadable or semantically invalid);
//! * `M1xx` — model structure warnings/notes (loadable but suspicious);
//! * `F0xx` — formula errors (cannot be checked against this model);
//! * `F1xx` — formula warnings/notes (checkable but vacuous or wasteful);
//! * `C0xx` — cost errors (a run is certain to fail);
//! * `C1xx` — cost warnings/notes (a run may explode or thrash).

use std::fmt;

/// How bad a diagnostic is.
///
/// The ordering is `Note < Warning < Error`, so `report.max_severity()`
/// compares naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never blocks anything.
    Note,
    /// Suspicious: the run proceeds unless warnings are denied.
    Warning,
    /// Broken: checking would be meaningless or crash; always blocks.
    Error,
}

impl Severity {
    /// Lower-case human label (`"error"`, `"warning"`, `"note"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single finding of a lint pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"M103"`. Never renumbered.
    pub code: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// 1-indexed states the finding refers to (as written in the model
    /// files), truncated to a few representatives for large sets; empty
    /// for formula- or model-global findings.
    pub states: Vec<usize>,
    /// 1-based line of the offending record in the source file the
    /// finding points at (load diagnostics only); `None` when the finding
    /// has no single source location.
    pub line: Option<usize>,
    /// What is wrong, in one sentence.
    pub message: String,
    /// What to do about it, when a concrete suggestion exists.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// A diagnostic without state references or suggestion.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            states: Vec::new(),
            line: None,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attach 1-indexed state references.
    #[must_use]
    pub fn with_states(mut self, states: Vec<usize>) -> Self {
        self.states = states;
        self
    }

    /// Attach a 1-based source-file line number.
    #[must_use]
    pub fn with_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// Attach a suggestion.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.states.is_empty() {
            let refs: Vec<String> = self.states.iter().map(ToString::to_string).collect();
            write!(
                f,
                " (state{} {})",
                plural(self.states.len()),
                refs.join(", ")
            )?;
        }
        if let Some(l) = self.line {
            write!(f, " (line {l})")?;
        }
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Everything the lint passes found, in pass order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append every diagnostic of `other`.
    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// The findings, in the order the passes produced them.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` when nothing was found.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Count of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` when any Error-level diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Promote every Warning to an Error (the `--deny warnings` knob).
    pub fn deny_warnings(&mut self) {
        for d in &mut self.diagnostics {
            if d.severity == Severity::Warning {
                d.severity = Severity::Error;
            }
        }
    }

    /// The sorted, de-duplicated codes present — what the golden corpus
    /// asserts against.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// Only the Error-level findings (for compact abort messages).
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Render for terminals: one block per diagnostic plus a summary line.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            writeln!(out, "{d}").expect("write to String");
        }
        let (e, w, n) = (
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
        );
        writeln!(
            out,
            "lint: {e} error{}, {w} warning{}, {n} note{}",
            plural(e),
            plural(w),
            plural(n)
        )
        .expect("write to String");
        out
    }

    /// Render as a JSON object mirroring the CLI `--json` schema:
    /// `{"diagnostics": [...], "errors": E, "warnings": W, "notes": N}`.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"states\":[{}],\"message\":\"{}\"",
                d.code,
                d.severity,
                d.states
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
                json_escape(&d.message),
            )
            .expect("write to String");
            match d.line {
                Some(l) => write!(out, ",\"line\":{l}").expect("write to String"),
                None => out.push_str(",\"line\":null"),
            }
            if let Some(s) = &d.suggestion {
                write!(out, ",\"suggestion\":\"{}\"", json_escape(s)).expect("write to String");
            }
            out.push('}');
        }
        write!(
            out,
            "],\"errors\":{},\"warnings\":{},\"notes\":{}}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
        )
        .expect("write to String");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render_human().trim_end())
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_note_warning_error() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn display_carries_code_states_and_help() {
        let d = Diagnostic::new("M103", Severity::Warning, "impulse on zero-rate transition")
            .with_states(vec![2, 5])
            .with_suggestion("remove the impulse entry");
        let s = d.to_string();
        assert!(s.contains("warning[M103]"));
        assert!(s.contains("states 2, 5"));
        assert!(s.contains("help: remove the impulse entry"));
    }

    #[test]
    fn line_numbers_render_in_both_formats() {
        let d = Diagnostic::new("M002", Severity::Error, "duplicate transition entry 1 -> 2")
            .with_line(5);
        assert_eq!(d.line, Some(5));
        assert!(d.to_string().contains("(line 5)"));
        let mut r = Report::new();
        r.push(d);
        assert!(r.render_json().contains("\"line\":5"));
        // Explicit null when no location is known, so the key is always
        // present and scripts never branch on its existence.
        let r2 = {
            let mut r = Report::new();
            r.push(Diagnostic::new("M001", Severity::Error, "x"));
            r
        };
        assert!(r2.render_json().contains("\"line\":null"));
    }

    #[test]
    fn report_counts_and_codes() {
        let mut r = Report::new();
        r.push(Diagnostic::new("F001", Severity::Error, "x"));
        r.push(Diagnostic::new("M106", Severity::Warning, "y"));
        r.push(Diagnostic::new("M106", Severity::Warning, "z"));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Warning), 2);
        assert_eq!(r.codes(), vec!["F001", "M106"]);
        assert_eq!(r.errors().count(), 1);
    }

    #[test]
    fn deny_warnings_promotes() {
        let mut r = Report::new();
        r.push(Diagnostic::new("M106", Severity::Warning, "y"));
        r.push(Diagnostic::new("M107", Severity::Note, "z"));
        assert!(!r.has_errors());
        r.deny_warnings();
        assert!(r.has_errors());
        // Notes are never promoted.
        assert_eq!(r.count(Severity::Note), 1);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new("F001", Severity::Error, "unknown \"ap\"")
                .with_states(vec![1])
                .with_suggestion("declare it"),
        );
        let j = r.render_json();
        assert!(j.starts_with("{\"diagnostics\":["));
        assert!(j.contains("\"code\":\"F001\""));
        assert!(j.contains("\\\"ap\\\""));
        assert!(j.contains("\"states\":[1]"));
        assert!(j.contains("\"errors\":1"));
        assert!(j.ends_with("\"notes\":0}"));
    }

    #[test]
    fn human_rendering_has_summary() {
        let mut r = Report::new();
        r.push(Diagnostic::new("M101", Severity::Warning, "unreachable"));
        let h = r.render_human();
        assert!(h.contains("warning[M101]"));
        assert!(h.contains("lint: 0 errors, 1 warning, 0 notes"));
    }
}
