//! Doc-sync guards: every diagnostic code the analysis crate can
//! construct, and every telemetry event kind the `mrmc-obs` crate can
//! emit, must be documented in `docs/USAGE.md`. Both are stable public
//! interfaces — shipping an undocumented one is a bug, so these tests
//! fail the build until the tables are updated.

use std::collections::BTreeSet;
use std::path::Path;

/// Collect every `"M001"`-style string literal from the crate's sources.
fn codes_in_sources() -> BTreeSet<String> {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut codes = BTreeSet::new();
    let mut stack = vec![src];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("source directory exists") {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("source file reads");
            for (i, _) in text.match_indices('"') {
                let tail = &text[i + 1..];
                let Some(end) = tail.find('"') else { continue };
                let lit = &tail[..end];
                if lit.len() == 4
                    && matches!(lit.as_bytes()[0], b'M' | b'F' | b'C' | b'R')
                    && lit[1..].bytes().all(|b| b.is_ascii_digit())
                {
                    codes.insert(lit.to_string());
                }
            }
        }
    }
    codes
}

#[test]
fn every_constructible_code_is_documented_in_usage_md() {
    let codes = codes_in_sources();
    assert!(codes.len() >= 25, "code scan broke — found only {codes:?}");

    let usage = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/USAGE.md");
    let usage = std::fs::read_to_string(usage).expect("docs/USAGE.md exists");

    let undocumented: Vec<&String> = codes
        .iter()
        .filter(|c| !usage.contains(&format!("`{c}`")))
        .collect();
    assert!(
        undocumented.is_empty(),
        "diagnostic codes missing from the docs/USAGE.md table: {undocumented:?}"
    );
}

#[test]
fn every_telemetry_event_kind_is_documented_in_usage_md() {
    let usage = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/USAGE.md");
    let usage = std::fs::read_to_string(usage).expect("docs/USAGE.md exists");

    let undocumented: Vec<&&str> = mrmc_obs::EVENT_KINDS
        .iter()
        .filter(|kind| !usage.contains(&format!("`{kind}`")))
        .collect();
    assert!(
        undocumented.is_empty(),
        "telemetry event kinds missing from the docs/USAGE.md table: {undocumented:?}"
    );
}
