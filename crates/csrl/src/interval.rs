//! Closed intervals of non-negative reals for time and reward bounds.

use std::error::Error;
use std::fmt;

/// An error raised while constructing an [`Interval`].
#[derive(Debug, Clone, PartialEq)]
pub enum IntervalError {
    /// The lower bound is negative, NaN, or infinite.
    BadLowerBound {
        /// The offending value.
        value: f64,
    },
    /// The upper bound is NaN or below the lower bound.
    BadUpperBound {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::BadLowerBound { value } => {
                write!(
                    f,
                    "invalid lower bound {value}: must be finite and non-negative"
                )
            }
            IntervalError::BadUpperBound { value } => {
                write!(f, "invalid upper bound {value}: must be >= the lower bound")
            }
        }
    }
}

impl Error for IntervalError {}

/// A closed interval `[lo, hi] ⊆ ℝ≥0`, with `hi = ∞` permitted.
///
/// CSRL uses such intervals both as timing constraints `I` and as
/// accumulated-reward bounds `J`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`IntervalError`] when `lo` is not finite/non-negative or
    /// `hi < lo`/NaN.
    pub fn new(lo: f64, hi: f64) -> Result<Self, IntervalError> {
        if !(lo.is_finite() && lo >= 0.0) {
            return Err(IntervalError::BadLowerBound { value: lo });
        }
        if hi.is_nan() || hi < lo {
            return Err(IntervalError::BadUpperBound { value: hi });
        }
        Ok(Interval { lo, hi })
    }

    /// `[0, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `hi` is negative or NaN.
    pub fn upto(hi: f64) -> Self {
        Interval::new(0.0, hi).expect("upper bound must be non-negative")
    }

    /// `[0, ∞)` — the trivial constraint.
    pub fn unbounded() -> Self {
        Interval {
            lo: 0.0,
            hi: f64::INFINITY,
        }
    }

    /// The degenerate point interval `[x, x]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative or non-finite.
    pub fn point(x: f64) -> Self {
        Interval::new(x, x).expect("point must be finite and non-negative")
    }

    /// Lower endpoint `inf I`.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint `sup I` (possibly `∞`).
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// `x ∈ [lo, hi]`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// `true` for `[0, ∞)`.
    pub fn is_trivial(&self) -> bool {
        self.lo == 0.0 && self.hi == f64::INFINITY
    }

    /// `true` when the lower endpoint is zero.
    pub fn starts_at_zero(&self) -> bool {
        self.lo == 0.0
    }

    /// `true` when the upper endpoint is `∞`.
    pub fn is_upper_unbounded(&self) -> bool {
        self.hi == f64::INFINITY
    }

    /// The shift `I ⊖ y = {x − y | x ∈ I ∧ x ≥ y}` used in the until
    /// fixed-point characterization (Eq. 3.6); `None` when the result is
    /// empty (`y > sup I`).
    ///
    /// # Panics
    ///
    /// Panics if `y` is negative or non-finite.
    pub fn shift_down(&self, y: f64) -> Option<Interval> {
        assert!(
            y.is_finite() && y >= 0.0,
            "shift must be finite and non-negative"
        );
        if y > self.hi {
            return None;
        }
        Some(Interval {
            lo: (self.lo - y).max(0.0),
            hi: self.hi - y,
        })
    }

    /// Intersection, `None` when empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::unbounded()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},", self.lo)?;
        if self.hi == f64::INFINITY {
            write!(f, "~]")
        } else {
            write!(f, "{}]", self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_sparse::rng::Xoshiro256StarStar;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(1.0, 3.0).unwrap();
        assert_eq!(i.lo(), 1.0);
        assert_eq!(i.hi(), 3.0);
        assert!(i.contains(1.0));
        assert!(i.contains(3.0));
        assert!(!i.contains(0.999));
        assert!(!i.is_trivial());
        assert!(!i.starts_at_zero());
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert!(matches!(
            Interval::new(-1.0, 2.0),
            Err(IntervalError::BadLowerBound { .. })
        ));
        assert!(matches!(
            Interval::new(f64::INFINITY, f64::INFINITY),
            Err(IntervalError::BadLowerBound { .. })
        ));
        assert!(matches!(
            Interval::new(2.0, 1.0),
            Err(IntervalError::BadUpperBound { .. })
        ));
        assert!(matches!(
            Interval::new(0.0, f64::NAN),
            Err(IntervalError::BadUpperBound { .. })
        ));
    }

    #[test]
    fn unbounded_and_point() {
        let u = Interval::unbounded();
        assert!(u.is_trivial());
        assert!(u.contains(1e300));
        assert!(u.is_upper_unbounded());
        assert_eq!(Interval::default(), u);

        let p = Interval::point(2.0);
        assert!(p.contains(2.0));
        assert!(!p.contains(2.0 + 1e-9));
    }

    #[test]
    fn shift_down_matches_definition() {
        let i = Interval::new(2.0, 5.0).unwrap();
        assert_eq!(i.shift_down(1.0), Some(Interval::new(1.0, 4.0).unwrap()));
        assert_eq!(i.shift_down(3.0), Some(Interval::new(0.0, 2.0).unwrap()));
        assert_eq!(i.shift_down(5.0), Some(Interval::new(0.0, 0.0).unwrap()));
        assert_eq!(i.shift_down(5.1), None);
        // Unbounded intervals shift into unbounded intervals.
        let u = Interval::unbounded();
        assert_eq!(u.shift_down(100.0), Some(Interval::unbounded()));
    }

    #[test]
    fn intersect_basics() {
        let a = Interval::new(0.0, 3.0).unwrap();
        let b = Interval::new(2.0, 5.0).unwrap();
        assert_eq!(a.intersect(&b), Some(Interval::new(2.0, 3.0).unwrap()));
        let c = Interval::new(4.0, 5.0).unwrap();
        assert_eq!(a.intersect(&c), None);
        assert_eq!(a.intersect(&Interval::unbounded()), Some(a));
    }

    #[test]
    fn display_uses_tilde_for_infinity() {
        assert_eq!(Interval::new(0.0, 2.5).unwrap().to_string(), "[0,2.5]");
        assert_eq!(Interval::unbounded().to_string(), "[0,~]");
    }

    #[test]
    fn contains_respects_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x171);
        for _ in 0..256 {
            let lo = rng.range_f64(0.0, 100.0);
            let len = rng.range_f64(0.0, 100.0);
            let x = rng.range_f64(-10.0, 250.0);
            let i = Interval::new(lo, lo + len).unwrap();
            assert_eq!(i.contains(x), x >= lo && x <= lo + len);
        }
    }

    #[test]
    fn shift_down_never_negative() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x172);
        for _ in 0..256 {
            let lo = rng.range_f64(0.0, 50.0);
            let len = rng.range_f64(0.0, 50.0);
            let y = rng.range_f64(0.0, 120.0);
            let i = Interval::new(lo, lo + len).unwrap();
            if let Some(s) = i.shift_down(y) {
                assert!(s.lo() >= 0.0);
                assert!(s.hi() >= s.lo());
            } else {
                assert!(y > i.hi());
            }
        }
    }
}
