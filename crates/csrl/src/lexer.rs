//! Tokenizer for the CSRL concrete syntax.

use std::error::Error;
use std::fmt;

/// A lexical error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset into the input.
    pub offset: usize,
    /// The offending character or token fragment.
    pub fragment: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected `{}` at offset {}",
            self.fragment, self.offset
        )
    }
}

impl Error for LexError {}

/// Kinds of CSRL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier: an atomic proposition or one of the contextual
    /// keywords `TT`, `FF`, `S`, `P`, `X`, `U`.
    Ident(String),
    /// A non-negative numeric literal.
    Number(f64),
    /// `~` — infinity.
    Infinity,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `=>`
    Implies,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
}

/// A token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset into the input where it starts.
    pub offset: usize,
}

/// Tokenize a formula string.
///
/// # Errors
///
/// [`LexError`] for unexpected characters or malformed numbers.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                });
                i += 1;
            }
            '[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    offset: i,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            '~' => {
                tokens.push(Token {
                    kind: TokenKind::Infinity,
                    offset: i,
                });
                i += 1;
            }
            '!' => {
                tokens.push(Token {
                    kind: TokenKind::Not,
                    offset: i,
                });
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token {
                        kind: TokenKind::AndAnd,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        fragment: "&".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token {
                        kind: TokenKind::OrOr,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        fragment: "|".into(),
                    });
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Implies,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        fragment: "=".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, '0'..='9' | '.' | 'e' | 'E' | '-' | '+')
                {
                    // Accept '-'/'+' only directly after an exponent marker.
                    if matches!(bytes[i] as char, '-' | '+')
                        && !matches!(bytes[i - 1] as char, 'e' | 'E')
                    {
                        break;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                let value: f64 = text.parse().map_err(|_| LexError {
                    offset: start,
                    fragment: text.to_string(),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(LexError {
                    offset: i,
                    fragment: other.to_string(),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_the_manual_example() {
        // P(>= 0.3) [a U [0,3][0,23] b]
        let ks = kinds("P(>= 0.3) [a U [0,3][0,23] b]");
        assert_eq!(ks[0], TokenKind::Ident("P".into()));
        assert_eq!(ks[1], TokenKind::LParen);
        assert_eq!(ks[2], TokenKind::Ge);
        assert_eq!(ks[3], TokenKind::Number(0.3));
        assert!(ks.contains(&TokenKind::Ident("U".into())));
        assert!(ks.contains(&TokenKind::Number(23.0)));
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a && b || !c => d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::AndAnd,
                TokenKind::Ident("b".into()),
                TokenKind::OrOr,
                TokenKind::Not,
                TokenKind::Ident("c".into()),
                TokenKind::Implies,
                TokenKind::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >="),
            vec![TokenKind::Lt, TokenKind::Le, TokenKind::Gt, TokenKind::Ge]
        );
    }

    #[test]
    fn numbers_with_exponents() {
        assert_eq!(kinds("1e-3"), vec![TokenKind::Number(1e-3)]);
        assert_eq!(kinds("2.5E+2"), vec![TokenKind::Number(250.0)]);
        assert_eq!(kinds("0.5"), vec![TokenKind::Number(0.5)]);
        assert_eq!(kinds("600"), vec![TokenKind::Number(600.0)]);
    }

    #[test]
    fn infinity_token() {
        assert_eq!(
            kinds("[0,~]"),
            vec![
                TokenKind::LBracket,
                TokenKind::Number(0.0),
                TokenKind::Comma,
                TokenKind::Infinity,
                TokenKind::RBracket
            ]
        );
    }

    #[test]
    fn identifiers_with_underscores() {
        assert_eq!(
            kinds("Call_Idle"),
            vec![TokenKind::Ident("Call_Idle".into())]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let e = tokenize("a & b").unwrap_err();
        assert_eq!(e.offset, 2);
        assert_eq!(e.fragment, "&");
        let e = tokenize("a | b").unwrap_err();
        assert_eq!(e.fragment, "|");
        let e = tokenize("a = b").unwrap_err();
        assert_eq!(e.fragment, "=");
        let e = tokenize("a # b").unwrap_err();
        assert_eq!(e.fragment, "#");
        let e = tokenize("1.2.3").unwrap_err();
        assert_eq!(e.fragment, "1.2.3");
    }

    #[test]
    fn point_intervals_and_scientific_numbers_tokenize() {
        // `[0,0]` with no interior whitespace — the bracket, number, comma
        // sequence must not fuse.
        assert_eq!(
            kinds("[0,0]"),
            vec![
                TokenKind::LBracket,
                TokenKind::Number(0.0),
                TokenKind::Comma,
                TokenKind::Number(0.0),
                TokenKind::RBracket,
            ]
        );
        // Tolerance-style magnitudes appear in bounds too.
        assert_eq!(
            kinds("[0,1e-3]"),
            vec![
                TokenKind::LBracket,
                TokenKind::Number(0.0),
                TokenKind::Comma,
                TokenKind::Number(1e-3),
                TokenKind::RBracket,
            ]
        );
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \t\n").unwrap().is_empty());
    }
}
